"""Command-line interface: regenerate any figure or experiment from a terminal.

Examples
--------
Reproduce Figure 3 with two trials per cell::

    python -m repro figure3 --trials 2

Measure the k-machine scaling on a 1024-vertex PPM graph::

    python -m repro kmachine --n 1024 --machines 2 4 8 16
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .experiments import (
    batched_detection_scaling,
    compare_baselines,
    parallel_detection_scaling,
    congest_scaling,
    figure1_stats,
    figure2_grid,
    figure3_grid,
    figure4a_grid,
    figure4b_grid,
    kmachine_scaling,
    render_experiment,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Efficient Distributed Community Detection "
            "in the Stochastic Block Model' (ICDCS 2019)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed (default 0)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure1 = subparsers.add_parser("figure1", help="structure of the Figure 1 PPM instance")
    figure1.add_argument("--n", type=int, default=1000)
    figure1.add_argument("--blocks", type=int, default=5)

    figure2 = subparsers.add_parser("figure2", help="CDRW accuracy on G(n, p)")
    figure2.add_argument("--trials", type=int, default=3)
    figure2.add_argument("--sizes", type=int, nargs="+", default=None)

    figure3 = subparsers.add_parser("figure3", help="CDRW accuracy on 2-block PPM graphs")
    figure3.add_argument("--trials", type=int, default=3)
    figure3.add_argument("--n", type=int, default=2048)

    figure4a = subparsers.add_parser("figure4a", help="accuracy vs r, fixed community size")
    figure4a.add_argument("--trials", type=int, default=3)

    figure4b = subparsers.add_parser("figure4b", help="accuracy vs r, fixed total size")
    figure4b.add_argument("--trials", type=int, default=3)

    congest = subparsers.add_parser("congest", help="CONGEST round/message scaling")
    congest.add_argument("--sizes", type=int, nargs="+", default=None)

    kmachine = subparsers.add_parser("kmachine", help="k-machine round scaling")
    kmachine.add_argument("--n", type=int, default=1024)
    kmachine.add_argument("--machines", type=int, nargs="+", default=None)

    baselines = subparsers.add_parser("baselines", help="CDRW vs baseline methods")
    baselines.add_argument("--n", type=int, default=1024)
    baselines.add_argument("--blocks", type=int, default=2)

    batched = subparsers.add_parser(
        "batched", help="multi-seed detection throughput: scalar loop vs batched walks"
    )
    batched.add_argument("--n", type=int, default=1024)
    batched.add_argument("--blocks", type=int, default=4)
    batched.add_argument("--num-seeds", type=int, default=16)
    batched.add_argument("--batch-sizes", type=int, nargs="+", default=[1, 4, 16])
    batched.add_argument(
        "--workers",
        type=int,
        default=None,
        help="threads for the batched kernels (default: REPRO_WORKERS or serial; 0 = all cores)",
    )

    parallel = subparsers.add_parser(
        "parallel",
        help="parallel multi-seed detection: scalar per-seed loop vs one shared batched walk",
    )
    parallel.add_argument("--n", type=int, default=1024)
    parallel.add_argument("--blocks", type=int, default=4)
    parallel.add_argument("--seed-counts", type=int, nargs="+", default=[1, 2, 4])
    parallel.add_argument(
        "--workers",
        type=int,
        default=None,
        help="threads for the batched kernels (default: REPRO_WORKERS or serial; 0 = all cores)",
    )

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro`` command; returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.command == "figure1":
        table = figure1_stats(n=arguments.n, num_blocks=arguments.blocks, seed=arguments.seed)
    elif arguments.command == "figure2":
        kwargs = {"trials": arguments.trials, "seed": arguments.seed}
        if arguments.sizes:
            kwargs["sizes"] = tuple(arguments.sizes)
        table = figure2_grid(**kwargs)
    elif arguments.command == "figure3":
        table = figure3_grid(n=arguments.n, trials=arguments.trials, seed=arguments.seed)
    elif arguments.command == "figure4a":
        table = figure4a_grid(trials=arguments.trials, seed=arguments.seed)
    elif arguments.command == "figure4b":
        table = figure4b_grid(trials=arguments.trials, seed=arguments.seed)
    elif arguments.command == "congest":
        kwargs = {"seed": arguments.seed}
        if arguments.sizes:
            kwargs["sizes"] = tuple(arguments.sizes)
        table = congest_scaling(**kwargs)
    elif arguments.command == "kmachine":
        kwargs = {"n": arguments.n, "seed": arguments.seed}
        if arguments.machines:
            kwargs["machine_counts"] = tuple(arguments.machines)
        table = kmachine_scaling(**kwargs)
    elif arguments.command == "baselines":
        table = compare_baselines(
            n=arguments.n, num_blocks=arguments.blocks, seed=arguments.seed
        )
    elif arguments.command == "batched":
        table = batched_detection_scaling(
            n=arguments.n,
            num_blocks=arguments.blocks,
            num_seeds=arguments.num_seeds,
            batch_sizes=tuple(arguments.batch_sizes),
            seed=arguments.seed,
            workers=arguments.workers,
        )
    elif arguments.command == "parallel":
        table = parallel_detection_scaling(
            n=arguments.n,
            num_blocks=arguments.blocks,
            seed_counts=tuple(arguments.seed_counts),
            seed=arguments.seed,
            workers=arguments.workers,
        )
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {arguments.command!r}")
        return 2

    print(render_experiment(table))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
