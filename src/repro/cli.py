"""Command-line interface: regenerate any figure or experiment from a terminal.

Examples
--------
Run community detection through the unified facade on a generated PPM graph::

    repro detect --backend batched --n 1024 --blocks 2
    repro detect --list-backends
    repro detect --backend congest --n 256 --max-seeds 1 --json

Reproduce Figure 3 with two trials per cell::

    python -m repro figure3 --trials 2

Measure the k-machine scaling on a 1024-vertex PPM graph::

    python -m repro kmachine --n 1024 --machines 2 4 8 16

Check the tree against the engine's coding invariants::

    repro lint src tests
    repro lint --list-rules
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Sequence

from .api import RunConfig, available_backends, detect, get_backend
from .exceptions import BackendError
from .experiments import (
    batched_detection_scaling,
    compare_baselines,
    parallel_detection_scaling,
    process_detection_scaling,
    congest_scaling,
    figure1_stats,
    figure2_grid,
    figure3_grid,
    figure4a_grid,
    figure4b_grid,
    kmachine_scaling,
    render_experiment,
    service_throughput,
    session_throughput,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Efficient Distributed Community Detection "
            "in the Stochastic Block Model' (ICDCS 2019)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed (default 0)")
    # --seed is also accepted *after* the subcommand (`repro detect --seed 5`):
    # every subparser inherits this parent.  Its default is SUPPRESS so that a
    # subcommand-side omission keeps whatever the top-level parse set —
    # argparse parses a subcommand into a fresh namespace and copies it over
    # the main one, so a plain default here would clobber `repro --seed 5
    # detect` back to 0.
    seed_parent = argparse.ArgumentParser(add_help=False)
    seed_parent.add_argument(
        "--seed",
        type=int,
        default=argparse.SUPPRESS,
        help="experiment seed (default 0; may be given before or after the subcommand)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    detect_parser = subparsers.add_parser(
        "detect",
        help="run community detection on a generated PPM through the repro.api facade",
        parents=[seed_parent],
    )
    detect_parser.add_argument(
        "--backend",
        default="batched",
        help="registered backend name (see --list-backends; default: batched)",
    )
    detect_parser.add_argument(
        "--list-backends",
        action="store_true",
        help="print the registered backends and exit",
    )
    detect_parser.add_argument("--n", type=int, default=1024, help="PPM vertices")
    detect_parser.add_argument("--blocks", type=int, default=2, help="PPM blocks r")
    detect_parser.add_argument(
        "--graph-file",
        default=None,
        metavar="PATH",
        help="detect on a graph file instead of a generated PPM: .csr binary "
        "(memmapped), .json (ground-truth partition used for f_score), plain "
        "or SNAP-style edge list (# comments, arbitrary ids, .gz accepted)",
    )
    detect_parser.add_argument(
        "--storage",
        choices=["dense", "shm", "memmap"],
        default=None,
        help="storage backend for --graph-file CSR files (default: memmap)",
    )
    detect_parser.add_argument("--batch-size", type=int, default=8)
    detect_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="workers of the execution tier: threads (--executor thread) or "
        "worker processes (--executor process); default: REPRO_WORKERS or "
        "serial; 0 = all cores",
    )
    detect_parser.add_argument(
        "--executor",
        choices=["thread", "process"],
        default=None,
        help="execution tier of the batched/parallel backends (default: "
        "REPRO_EXECUTOR or thread; process = shared-memory worker pool)",
    )
    detect_parser.add_argument(
        "--dtype",
        choices=["float64", "float32"],
        default="float64",
        help="mixing-set scan precision of the batched backend",
    )
    detect_parser.add_argument(
        "--num-communities",
        type=int,
        default=None,
        help="community-count estimate r (parallel / spectral / walktrap backends; "
        "defaults to --blocks)",
    )
    detect_parser.add_argument(
        "--machines", type=int, default=4, help="machine count of the kmachine backend"
    )
    detect_parser.add_argument(
        "--max-seeds", type=int, default=None, help="cap on the number of seeds processed"
    )
    detect_parser.add_argument(
        "--session-repeat",
        type=int,
        default=None,
        metavar="N",
        help="run the detection N times through one resident DetectionSession "
        "(batched/parallel backends): the graph broadcast, worker pool and "
        "cached operators are reused across calls, results identical per call",
    )
    detect_parser.add_argument(
        "--json",
        action="store_true",
        help="print the full RunReport as JSON instead of the summary",
    )

    figure1 = subparsers.add_parser(
        "figure1", help="structure of the Figure 1 PPM instance", parents=[seed_parent]
    )
    figure1.add_argument("--n", type=int, default=1000)
    figure1.add_argument("--blocks", type=int, default=5)

    figure2 = subparsers.add_parser(
        "figure2", help="CDRW accuracy on G(n, p)", parents=[seed_parent]
    )
    figure2.add_argument("--trials", type=int, default=3)
    figure2.add_argument("--sizes", type=int, nargs="+", default=None)

    figure3 = subparsers.add_parser(
        "figure3", help="CDRW accuracy on 2-block PPM graphs", parents=[seed_parent]
    )
    figure3.add_argument("--trials", type=int, default=3)
    figure3.add_argument("--n", type=int, default=2048)

    figure4a = subparsers.add_parser(
        "figure4a", help="accuracy vs r, fixed community size", parents=[seed_parent]
    )
    figure4a.add_argument("--trials", type=int, default=3)

    figure4b = subparsers.add_parser(
        "figure4b", help="accuracy vs r, fixed total size", parents=[seed_parent]
    )
    figure4b.add_argument("--trials", type=int, default=3)

    congest = subparsers.add_parser(
        "congest", help="CONGEST round/message scaling", parents=[seed_parent]
    )
    congest.add_argument("--sizes", type=int, nargs="+", default=None)

    kmachine = subparsers.add_parser(
        "kmachine", help="k-machine round scaling", parents=[seed_parent]
    )
    kmachine.add_argument("--n", type=int, default=1024)
    kmachine.add_argument("--machines", type=int, nargs="+", default=None)

    baselines = subparsers.add_parser(
        "baselines", help="CDRW vs baseline methods", parents=[seed_parent]
    )
    baselines.add_argument("--n", type=int, default=1024)
    baselines.add_argument("--blocks", type=int, default=2)

    batched = subparsers.add_parser(
        "batched",
        help="multi-seed detection throughput: scalar loop vs batched walks",
        parents=[seed_parent],
    )
    batched.add_argument("--n", type=int, default=1024)
    batched.add_argument("--blocks", type=int, default=4)
    batched.add_argument("--num-seeds", type=int, default=16)
    batched.add_argument("--batch-sizes", type=int, nargs="+", default=[1, 4, 16])
    batched.add_argument(
        "--workers",
        type=int,
        default=None,
        help="workers of the execution tier (default: REPRO_WORKERS or serial; 0 = all cores)",
    )
    batched.add_argument(
        "--executor",
        choices=["thread", "process"],
        default=None,
        help="execution tier (default: REPRO_EXECUTOR or thread)",
    )

    parallel = subparsers.add_parser(
        "parallel",
        help="parallel multi-seed detection: scalar per-seed loop vs one shared batched walk",
        parents=[seed_parent],
    )
    parallel.add_argument("--n", type=int, default=1024)
    parallel.add_argument("--blocks", type=int, default=4)
    parallel.add_argument("--seed-counts", type=int, nargs="+", default=[1, 2, 4])
    parallel.add_argument(
        "--workers",
        type=int,
        default=None,
        help="workers of the execution tier (default: REPRO_WORKERS or serial; 0 = all cores)",
    )
    parallel.add_argument(
        "--executor",
        choices=["thread", "process"],
        default=None,
        help="execution tier (default: REPRO_EXECUTOR or thread)",
    )

    session = subparsers.add_parser(
        "session",
        help="resident-session throughput: repeated small-batch detection with "
        "per-call setup vs one DetectionSession",
        parents=[seed_parent],
    )
    session.add_argument("--n", type=int, default=1024)
    session.add_argument("--blocks", type=int, default=4)
    session.add_argument("--repeats", type=int, default=8)
    session.add_argument("--seeds-per-call", type=int, default=4)
    session.add_argument(
        "--workers",
        type=int,
        default=None,
        help="workers of the execution tier (default: REPRO_WORKERS or serial; 0 = all cores)",
    )
    session.add_argument(
        "--executor",
        choices=["thread", "process"],
        default=None,
        help="execution tier (default: REPRO_EXECUTOR or thread)",
    )

    service = subparsers.add_parser(
        "service",
        help="concurrent-service throughput: serialized one-at-a-time session "
        "calls vs coalescing DetectionService at several client counts",
        parents=[seed_parent],
    )
    service.add_argument("--n", type=int, default=1024)
    service.add_argument("--blocks", type=int, default=4)
    service.add_argument("--requests", type=int, default=16)
    service.add_argument(
        "--clients",
        type=int,
        nargs="+",
        default=[1, 4, 16],
        help="concurrent client counts to measure (default: 1 4 16)",
    )
    service.add_argument(
        "--workers",
        type=int,
        default=None,
        help="workers of the execution tier (default: REPRO_WORKERS or serial; 0 = all cores)",
    )
    service.add_argument(
        "--executor",
        choices=["thread", "process"],
        default=None,
        help="execution tier (default: REPRO_EXECUTOR or thread)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve detections over JSON-lines TCP: one DetectionService "
        "coalescing concurrent client requests into detect_batch waves",
        parents=[seed_parent],
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0 = pick a free port; the bound port is printed)",
    )
    serve.add_argument("--n", type=int, default=1024, help="PPM vertices")
    serve.add_argument("--blocks", type=int, default=2, help="PPM blocks r")
    serve.add_argument(
        "--graph-file",
        default=None,
        metavar="PATH",
        help="serve a graph file instead of a generated PPM (same formats as "
        "repro detect)",
    )
    serve.add_argument(
        "--storage",
        choices=["dense", "shm", "memmap"],
        default=None,
        help="storage backend for --graph-file CSR files (default: memmap)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="workers of the execution tier (default: REPRO_WORKERS or serial; 0 = all cores)",
    )
    serve.add_argument(
        "--executor",
        choices=["thread", "process"],
        default=None,
        help="execution tier (default: REPRO_EXECUTOR or thread)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="admission-queue bound; a full queue rejects with 'overloaded'",
    )
    serve.add_argument(
        "--max-wave",
        type=int,
        default=64,
        help="largest number of distinct seeds coalesced into one wave",
    )
    serve.add_argument(
        "--capture-history",
        action="store_true",
        help="include per-step mixing histories in served reports (large; "
        "off by default for the wire)",
    )

    lint = subparsers.add_parser(
        "lint",
        help="run the AST-based invariant checker (repro.analysis) over the tree",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )

    bench = subparsers.add_parser(
        "bench",
        help="diff two archived benchmark JSON runs "
        "(bench_graph_kernel.py --json) and flag regressions",
    )
    bench.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        required=True,
        help="archived benchmark JSON files: the baseline and the current run",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="relative worsening tolerated on timing/speedup keys "
        "(default 0.2 = 20%%; identity keys always compare exact)",
    )
    bench.add_argument(
        "--verbose",
        action="store_true",
        help="print every compared key, not only regressions",
    )

    process = subparsers.add_parser(
        "process",
        help="process-pool detection scaling: serial batched path vs the "
        "shared-memory process tier at several worker counts",
        parents=[seed_parent],
    )
    process.add_argument("--n", type=int, default=1024)
    process.add_argument("--blocks", type=int, default=4)
    process.add_argument("--num-seeds", type=int, default=16)
    process.add_argument("--batch-size", type=int, default=8)
    process.add_argument("--worker-counts", type=int, nargs="+", default=[1, 2, 4])

    return parser


def _resolve_graph(arguments: argparse.Namespace):
    """Build the graph a subcommand runs on (shared by detect / serve).

    Returns ``(graph, truth, delta_hint, description)``, or ``None`` after
    printing an error — callers return exit code 2.
    """
    from .graphs import planted_partition_graph, ppm_expected_conductance

    command = arguments.command
    if arguments.storage is not None and arguments.graph_file is None:
        print(
            f"repro {command}: --storage only applies to --graph-file input",
            file=sys.stderr,
        )
        return None
    if arguments.graph_file is not None:
        from pathlib import Path

        from .exceptions import GraphError
        from .graphs import load_graph_file

        try:
            graph, truth, info = load_graph_file(
                Path(arguments.graph_file), storage=arguments.storage
            )
        except (OSError, GraphError) as error:
            print(f"repro {command}: {error}", file=sys.stderr)
            return None
        # File graphs carry no analytic conductance; let the engine resolve
        # δ from the graph itself unless a ground-truth partition rode along.
        delta = None
        graph_line = (
            f"  graph: {arguments.graph_file} ({info['format']}, "
            f"storage={graph.storage_kind}) n={graph.num_vertices}, "
            f"m={graph.num_edges}"
        )
        return graph, truth, delta, graph_line
    n = arguments.n
    blocks = arguments.blocks
    p = min(1.0, 2.0 * math.log(n) ** 2 / n)
    q = 0.6 / n
    ppm = planted_partition_graph(n, blocks, p, q, seed=arguments.seed)
    delta = ppm_expected_conductance(n, blocks, p, q)
    graph_line = (
        f"  graph: PPM n={n}, r={blocks}, m={ppm.graph.num_edges} "
        f"(p={p:.4f}, q={q:.6f})"
    )
    return ppm.graph, ppm.partition, delta, graph_line


def _run_detect(arguments: argparse.Namespace) -> int:
    """Execute the ``repro detect`` subcommand."""
    from .metrics import average_f_score

    if arguments.list_backends:
        print(f"{'backend':<28} description")
        for name in available_backends():
            print(f"{name:<28} {get_backend(name).description}")
        return 0

    # Validate the backend name *before* generating the graph: a typo should
    # fail in milliseconds with the full registry listed, not after paying
    # for a PPM instance.
    try:
        get_backend(arguments.backend)
    except BackendError as error:
        print(f"repro detect: {error}", file=sys.stderr)
        return 2

    resolved = _resolve_graph(arguments)
    if resolved is None:
        return 2
    graph, truth, delta, graph_line = resolved
    blocks = arguments.blocks
    config = RunConfig(
        seed=arguments.seed,
        max_seeds=arguments.max_seeds,
        batch_size=arguments.batch_size,
        workers=arguments.workers,
        executor=arguments.executor,
        dtype=arguments.dtype,
        num_communities=(
            arguments.num_communities
            if arguments.num_communities is not None
            else blocks
        ),
        num_machines=arguments.machines,
    )
    repeats = arguments.session_repeat
    if repeats is not None and repeats < 1:
        print(
            f"repro detect: --session-repeat must be >= 1, got {repeats}",
            file=sys.stderr,
        )
        return 2
    session_line = None
    try:
        if repeats is None:
            report = detect(
                graph, backend=arguments.backend, config=config, delta_hint=delta
            )
        else:
            from .session import DetectionSession

            with DetectionSession(
                graph, config=config, delta_hint=delta
            ) as session:
                reports = [
                    session.detect(backend=arguments.backend) for _ in range(repeats)
                ]
                report = reports[-1]
                total = sum(r.timings["total_seconds"] for r in reports)
                identical = all(
                    r.detection == report.detection for r in reports
                )
                session_line = (
                    f"  session: {repeats} calls in {total:.3f} s "
                    f"({total / repeats:.3f} s/call), "
                    f"broadcasts={session.broadcasts}, "
                    f"identical={'yes' if identical else 'NO'}"
                )
    except BackendError as error:
        print(f"repro detect: {error}", file=sys.stderr)
        return 2

    if arguments.json:
        print(report.to_json(indent=2))
        return 0

    detection = report.detection
    print(f"detect: backend={report.backend}")
    print(graph_line)
    result_line = (
        f"  result: {detection.num_communities} communities, "
        f"coverage {detection.coverage():.1%}"
    )
    if truth is not None:
        result_line += f", f_score {average_f_score(detection, truth):.3f}"
    print(result_line)
    print(f"  wall clock: {report.timings['total_seconds']:.3f} s")
    if session_line is not None:
        print(session_line)
    total = report.total_cost
    if total is not None:
        parts = [f"rounds={total.rounds}"]
        if hasattr(total, "messages"):
            parts.append(f"messages={total.messages}")
        if hasattr(total, "inter_machine_messages"):
            parts.append(f"inter_machine_messages={total.inter_machine_messages}")
        print(f"  cost ({len(report.phase_costs)} phases): {', '.join(parts)}")
    return 0


def _run_serve(arguments: argparse.Namespace) -> int:
    """Execute the ``repro serve`` subcommand: a JSON-lines TCP daemon."""
    from .service import DetectionService
    from .service_net import run_server

    resolved = _resolve_graph(arguments)
    if resolved is None:
        return 2
    graph, _truth, delta, graph_line = resolved
    config = RunConfig(
        seed=arguments.seed,
        workers=arguments.workers,
        executor=arguments.executor,
        capture_history=arguments.capture_history,
    )
    print("serve: coalescing detection service")
    print(graph_line)
    try:
        with DetectionService(
            graph,
            config=config,
            delta_hint=delta,
            max_pending=arguments.max_pending,
            max_wave=arguments.max_wave,
        ) as service:
            try:
                run_server(service, arguments.host, arguments.port)
            except KeyboardInterrupt:
                print("shutting down: draining pending waves")
    except BackendError as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 2
    return 0


def _run_bench(arguments: argparse.Namespace) -> int:
    """Execute the ``repro bench --compare`` subcommand."""
    from .benchcompare import DEFAULT_THRESHOLD, compare_files, render_comparison
    from .exceptions import ReproError

    threshold = (
        arguments.threshold if arguments.threshold is not None else DEFAULT_THRESHOLD
    )
    old_path, new_path = arguments.compare
    try:
        comparison = compare_files(old_path, new_path, threshold=threshold)
    except (OSError, ReproError) as error:
        print(f"repro bench: {error}", file=sys.stderr)
        return 2
    print(render_comparison(comparison, verbose=arguments.verbose))
    return 0 if comparison.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro`` command; returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.command == "detect":
        return _run_detect(arguments)

    if arguments.command == "serve":
        return _run_serve(arguments)

    if arguments.command == "bench":
        return _run_bench(arguments)

    if arguments.command == "lint":
        from .analysis import main as lint_main

        lint_argv = list(arguments.paths)
        if arguments.list_rules:
            lint_argv.append("--list-rules")
        return lint_main(lint_argv)

    if arguments.command == "figure1":
        table = figure1_stats(n=arguments.n, num_blocks=arguments.blocks, seed=arguments.seed)
    elif arguments.command == "figure2":
        kwargs = {"trials": arguments.trials, "seed": arguments.seed}
        if arguments.sizes:
            kwargs["sizes"] = tuple(arguments.sizes)
        table = figure2_grid(**kwargs)
    elif arguments.command == "figure3":
        table = figure3_grid(n=arguments.n, trials=arguments.trials, seed=arguments.seed)
    elif arguments.command == "figure4a":
        table = figure4a_grid(trials=arguments.trials, seed=arguments.seed)
    elif arguments.command == "figure4b":
        table = figure4b_grid(trials=arguments.trials, seed=arguments.seed)
    elif arguments.command == "congest":
        kwargs = {"seed": arguments.seed}
        if arguments.sizes:
            kwargs["sizes"] = tuple(arguments.sizes)
        table = congest_scaling(**kwargs)
    elif arguments.command == "kmachine":
        kwargs = {"n": arguments.n, "seed": arguments.seed}
        if arguments.machines:
            kwargs["machine_counts"] = tuple(arguments.machines)
        table = kmachine_scaling(**kwargs)
    elif arguments.command == "baselines":
        table = compare_baselines(
            n=arguments.n, num_blocks=arguments.blocks, seed=arguments.seed
        )
    elif arguments.command == "batched":
        table = batched_detection_scaling(
            n=arguments.n,
            num_blocks=arguments.blocks,
            num_seeds=arguments.num_seeds,
            batch_sizes=tuple(arguments.batch_sizes),
            seed=arguments.seed,
            workers=arguments.workers,
            executor=arguments.executor,
        )
    elif arguments.command == "parallel":
        table = parallel_detection_scaling(
            n=arguments.n,
            num_blocks=arguments.blocks,
            seed_counts=tuple(arguments.seed_counts),
            seed=arguments.seed,
            workers=arguments.workers,
            executor=arguments.executor,
        )
    elif arguments.command == "service":
        table = service_throughput(
            n=arguments.n,
            num_blocks=arguments.blocks,
            requests=arguments.requests,
            concurrency=tuple(arguments.clients),
            workers=arguments.workers,
            executor=arguments.executor,
            seed=arguments.seed,
        )
    elif arguments.command == "session":
        table = session_throughput(
            n=arguments.n,
            num_blocks=arguments.blocks,
            repeats=arguments.repeats,
            seeds_per_call=arguments.seeds_per_call,
            workers=arguments.workers,
            executor=arguments.executor,
            seed=arguments.seed,
        )
    elif arguments.command == "process":
        table = process_detection_scaling(
            n=arguments.n,
            num_blocks=arguments.blocks,
            num_seeds=arguments.num_seeds,
            batch_size=arguments.batch_size,
            worker_counts=tuple(arguments.worker_counts),
            seed=arguments.seed,
        )
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {arguments.command!r}")
        return 2

    print(render_experiment(table))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
