"""Shared multi-core execution layer for the batched kernels.

The two hot kernels of the batched CDRW path — the column-blocked walk
advance of :class:`~repro.randomwalk.batched.BatchedWalkDistribution` and the
lane-blocked mixing-set search of
:class:`~repro.core.mixing_set.BatchedMixingSetSearch` — are
memory-bandwidth-bound on one core.  Both kernels decompose into fully
independent contiguous blocks (columns of an SpMM, lanes of a deviation
scan), so they parallelise across threads without any change to the
per-block arithmetic: scipy's sparse matvec/matmat kernels and numpy's
elementwise/partition loops release the GIL on large arrays, and every block
writes a disjoint output slice.

This module owns the thread pool those kernels share:

* :func:`resolve_workers` turns the user-facing ``workers`` knob (an explicit
  count, ``0`` for "all cores", or ``None`` for the ``REPRO_WORKERS``
  environment override, default ``1``) into a concrete worker count;
* :func:`parallel_map_blocks` splits an index range into contiguous blocks
  and maps a ``function(start, stop)`` over them — inline when one worker
  suffices, otherwise on the shared process-global
  :class:`~concurrent.futures.ThreadPoolExecutor` (created lazily, grown
  to the largest worker count requested so far, reused for the life of the
  process; superseded smaller pools are shut down so their threads exit).

Determinism contract
--------------------
``parallel_map_blocks`` never changes *what* is computed, only *where*: the
block boundaries depend solely on ``(count, workers)``, results are returned
in block order, and callers must make per-item results independent of the
block partition (both batched kernels guarantee exactly that — see their
docstrings), so any ``workers`` value produces bit-identical output.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, TypeVar

from .exceptions import ReproError

__all__ = [
    "resolve_workers",
    "resolve_executor",
    "parallel_map_blocks",
    "block_ranges",
    "EXECUTOR_THREAD",
    "EXECUTOR_PROCESS",
]

#: Environment variable overriding the default worker count when the
#: ``workers`` knob is left at ``None`` (e.g. ``REPRO_WORKERS=2 pytest`` runs
#: the whole suite through the threaded paths).
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Environment variable overriding the default execution tier when the
#: ``executor`` knob is left at ``None`` (e.g. ``REPRO_EXECUTOR=process
#: pytest`` routes every batched/parallel detection through the
#: shared-memory process pool of :mod:`repro.execution_process`).
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: The in-process tier: batched kernels on the shared thread pool (scipy /
#: numpy release the GIL on the hot loops).  The default.
EXECUTOR_THREAD = "thread"

#: The out-of-process tier: seed shards on a worker-process pool sharing the
#: CSR graph through :mod:`multiprocessing.shared_memory` — true multi-core
#: scaling past the GIL (see :mod:`repro.execution_process`).
EXECUTOR_PROCESS = "process"

_EXECUTORS = (EXECUTOR_THREAD, EXECUTOR_PROCESS)

_T = TypeVar("_T")

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None  # repro: guarded-by(_pool_lock)
_pool_width = 0  # repro: guarded-by(_pool_lock)


def resolve_workers(workers: int | None = None) -> int:
    """Return the effective worker count for the given ``workers`` knob.

    ``None`` defers to the ``REPRO_WORKERS`` environment variable (default
    ``1`` — the serial path — when unset); ``0`` means "one worker per
    available core".  Anything below zero, or a non-integer environment
    value, raises :class:`~repro.exceptions.ReproError`.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR)
        if raw is None or not raw.strip():
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ReproError(
                f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    workers = int(workers)
    if workers < 0:
        raise ReproError(f"workers must be >= 0 (0 = all cores), got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def resolve_executor(executor: str | None = None) -> str:
    """Return the effective execution tier for the given ``executor`` knob.

    ``None`` defers to the ``REPRO_EXECUTOR`` environment variable (default
    ``"thread"`` when unset).  Anything other than ``"thread"`` or
    ``"process"`` raises :class:`~repro.exceptions.ReproError`.  Both tiers
    produce identical detections — the knob only moves where the work runs.
    """
    if executor is None:
        raw = os.environ.get(EXECUTOR_ENV_VAR)
        if raw is None or not raw.strip():
            return EXECUTOR_THREAD
        executor = raw.strip()
    if executor not in _EXECUTORS:
        raise ReproError(
            f"executor must be one of {', '.join(_EXECUTORS)}, got {executor!r}"
        )
    return executor


def block_ranges(count: int, blocks: int) -> list[tuple[int, int]]:
    """Split ``range(count)`` into at most ``blocks`` contiguous ``(start, stop)`` ranges.

    The ranges partition ``range(count)`` exactly, in order, with sizes
    differing by at most one (the leading ranges take the remainder).  The
    partition depends only on ``(count, blocks)``, never on timing.
    """
    if count < 0:
        raise ReproError(f"count must be >= 0, got {count}")
    if blocks < 1:
        raise ReproError(f"blocks must be >= 1, got {blocks}")
    blocks = min(blocks, count)
    if blocks <= 1:
        return [(0, count)] if count else []
    base, remainder = divmod(count, blocks)
    ranges: list[tuple[int, int]] = []
    start = 0
    for index in range(blocks):
        stop = start + base + (1 if index < remainder else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def _shared_pool(workers: int) -> ThreadPoolExecutor:  # repro: requires(_pool_lock)
    """Return the process-global pool, grown to at least ``workers`` threads.

    A request wider than the current pool replaces it; the superseded pool
    is shut down (``wait=False`` — submitted blocks still complete, after
    which its threads exit) so pools never accumulate.  Narrower requests
    reuse the wide pool: concurrency is already bounded by the number of
    blocks submitted, not by the pool width.  Callers must submit while
    holding :data:`_pool_lock` so a concurrent grow cannot retire the pool
    between lookup and submission.
    """
    global _pool, _pool_width
    if _pool is None or _pool_width < workers:
        if _pool is not None:
            _pool.shutdown(wait=False)
        _pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-worker"
        )
        _pool_width = workers
    return _pool


def parallel_map_blocks(
    function: Callable[[int, int], _T],
    count: int,
    workers: int | None = None,
) -> list[_T]:
    """Map ``function(start, stop)`` over contiguous blocks of ``range(count)``.

    The range is split into ``min(workers, count)`` blocks
    (:func:`block_ranges`); with one effective worker the blocks run inline
    on the calling thread, otherwise they run concurrently on the shared
    pool.  Results are returned in block order either way.  Exceptions
    propagate to the caller (remaining blocks still run to completion on the
    pool — blocks must therefore be side-effect-safe, which disjoint output
    slices guarantee).
    """
    workers = resolve_workers(workers)
    ranges = block_ranges(count, workers)
    if workers <= 1 or len(ranges) <= 1:
        return [function(start, stop) for start, stop in ranges]
    with _pool_lock:
        pool = _shared_pool(workers)
        futures = [pool.submit(function, start, stop) for start, stop in ranges]
    return [future.result() for future in futures]
