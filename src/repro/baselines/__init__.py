"""Baseline community detection algorithms discussed in the paper's related work."""

from .label_propagation import LabelPropagationResult, label_propagation
from .averaging import AveragingResult, averaging_dynamics
from .spectral import SpectralResult, spectral_clustering
from .walktrap import WalktrapResult, walktrap_communities
from .clementi import ClementiResult, clementi_two_communities

__all__ = [
    "LabelPropagationResult",
    "label_propagation",
    "AveragingResult",
    "averaging_dynamics",
    "SpectralResult",
    "spectral_clustering",
    "WalktrapResult",
    "walktrap_communities",
    "ClementiResult",
    "clementi_two_communities",
]
