"""Averaging-dynamics baseline (Becchetti et al., SODA 2017).

"Find your place: simple distributed algorithms for community detection"
partitions a graph into two clusters with a strikingly simple linear
dynamics: every vertex holds a real value (initialised to ±1 uniformly at
random); in each round every vertex replaces its value with the average of
its neighbours' values; after a logarithmic number of rounds the *sign of the
last update* (equivalently, of the value minus the global average component)
identifies the two clusters on graphs with a sparse cut, because the dynamics
converges towards the second eigenvector of the transition matrix.

The paper discusses this family of protocols in Section II as linear-dynamics
alternatives to CDRW that "work well on graphs with good expansion and are
slower on sparse cut graphs", and notes they handle only two communities —
which is exactly what this baseline exposes in the benchmark comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..randomwalk.transition import transition_matrix
from ..utils import as_rng

__all__ = ["AveragingResult", "averaging_dynamics"]


@dataclass(frozen=True)
class AveragingResult:
    """Outcome of the averaging dynamics.

    Attributes
    ----------
    partition:
        The two detected clusters (sign of the deviation from the mean).
    rounds:
        Number of averaging rounds performed.
    values:
        Final per-vertex values (useful for diagnostics / margin analysis).
    """

    partition: Partition
    rounds: int
    values: np.ndarray


def averaging_dynamics(
    graph: Graph,
    rounds: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> AveragingResult:
    """Run the averaging dynamics and split vertices by the sign of the deviation.

    Parameters
    ----------
    rounds:
        Number of averaging rounds; defaults to ``⌈4·log₂ n⌉``, the order of
        the mixing time on the graphs the protocol is designed for.
    """
    n = graph.num_vertices
    if n == 0:
        raise AlgorithmError("averaging dynamics requires a non-empty graph")
    if graph.num_edges == 0:
        raise AlgorithmError("averaging dynamics requires at least one edge")
    if rounds is None:
        rounds = max(4, int(np.ceil(4 * np.log2(max(n, 2)))))
    if rounds < 1:
        raise AlgorithmError(f"rounds must be >= 1, got {rounds}")

    rng = as_rng(seed)
    values = rng.choice([-1.0, 1.0], size=n)
    averaging_operator = transition_matrix(graph)

    previous = values.copy()
    for _ in range(rounds):
        previous = values
        values = averaging_operator @ values

    # The component along the all-ones direction converges to the (weighted)
    # mean; what separates the clusters is the residual, dominated by the
    # second eigenvector.  Becchetti et al. use the sign of the last update;
    # subtracting the degree-weighted mean is equivalent up to o(1) terms and
    # numerically more stable for small graphs.
    degrees = graph.degrees().astype(np.float64)
    weighted_mean = float(np.dot(degrees, values) / degrees.sum())
    deviation = values - weighted_mean
    labels = np.where(deviation >= 0, 0, 1)
    return AveragingResult(
        partition=Partition.from_labels(labels),
        rounds=rounds,
        values=values,
    )
