"""Walktrap-style baseline: agglomerative clustering of random-walk distances.

Pons & Latapy's Walktrap (2006) — cited by the paper as a centralized,
``O(mn²)`` worst-case method — defines a distance between vertices from
short random walks ("random walks get trapped inside densely connected
parts") and merges communities agglomeratively.  This implementation follows
the same structure at a size suitable for benchmarking against CDRW:

1. compute the ``t``-step walk distribution from every vertex,
2. define the Pons–Latapy distance
   ``r_{uv} = sqrt( Σ_w (P^t_{uw} − P^t_{vw})² / d(w) )``,
3. greedily merge the pair of current communities with the smallest
   average inter-community distance until ``num_clusters`` remain.

It is intentionally the expensive centralized comparator; benchmarks report
its runtime next to CDRW's to illustrate the cost gap the paper motivates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..randomwalk.transition import transition_matrix

__all__ = ["WalktrapResult", "walktrap_communities"]


@dataclass(frozen=True)
class WalktrapResult:
    """Outcome of the Walktrap-style agglomeration.

    Attributes
    ----------
    partition:
        The detected communities.
    walk_length:
        The walk length ``t`` used for the distance.
    merges:
        Number of agglomerative merge steps performed.
    """

    partition: Partition
    walk_length: int
    merges: int


def walktrap_communities(
    graph: Graph,
    num_clusters: int,
    walk_length: int = 4,
    max_vertices: int = 2048,
) -> WalktrapResult:
    """Detect ``num_clusters`` communities by random-walk distance agglomeration.

    Parameters
    ----------
    walk_length:
        The walk length ``t`` of the Pons–Latapy distance (they recommend a
        small constant, typically 3-5).
    max_vertices:
        Safety cap — the method is quadratic in memory (it materialises the
        full ``n × n`` walk matrix), so refuse inputs beyond this size.
    """
    n = graph.num_vertices
    if num_clusters < 1:
        raise AlgorithmError(f"num_clusters must be >= 1, got {num_clusters}")
    if n == 0:
        raise AlgorithmError("walktrap requires a non-empty graph")
    if num_clusters > n:
        raise AlgorithmError(f"cannot split {n} vertices into {num_clusters} clusters")
    if n > max_vertices:
        raise AlgorithmError(
            f"walktrap materialises an n×n matrix; n={n} exceeds max_vertices={max_vertices}"
        )
    if walk_length < 1:
        raise AlgorithmError(f"walk_length must be >= 1, got {walk_length}")
    if graph.num_edges == 0:
        return WalktrapResult(Partition.singletons(n), walk_length, 0)

    transition = transition_matrix(graph).toarray()
    walk_matrix = np.linalg.matrix_power(transition, walk_length)
    degrees = graph.degrees().astype(np.float64)
    safe_degrees = np.where(degrees > 0, degrees, 1.0)
    # Scale columns by 1/sqrt(d(w)) so Euclidean distance equals r_{uv}.
    scaled = walk_matrix / np.sqrt(safe_degrees)[None, :]

    # Agglomerative merging with Ward linkage on the scaled walk vectors,
    # which is the spirit of Walktrap's ΔG merge criterion (Pons & Latapy
    # show their criterion is exactly a Ward-style update on these vectors).
    from scipy.cluster.hierarchy import fcluster, linkage

    if n == 1:
        return WalktrapResult(Partition.single_community(1), walk_length, 0)
    dendrogram = linkage(scaled, method="ward")
    labels = fcluster(dendrogram, t=num_clusters, criterion="maxclust") - 1
    merges = n - num_clusters

    return WalktrapResult(
        partition=Partition.from_labels(labels.astype(np.int64)),
        walk_length=walk_length,
        merges=merges,
    )
