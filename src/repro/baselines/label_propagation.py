"""Label Propagation (LPA) baseline.

LPA (Raghavan, Albert, Kumara 2007) is the classical lightweight distributed
community detection heuristic the paper compares against in its related-work
discussion: every vertex starts in its own community; in each round a vertex
adopts the label held by the majority of its neighbours (ties broken
randomly).  Kothapalli, Pemmaraju and Sardeshmukh (2013) analysed it on dense
PPM graphs (``p = Ω(n^{-1/4})``, ``q = O(p²)``); the paper's CDRW improves on
that by working near the connectivity threshold.

Both the synchronous variant (all vertices update simultaneously — the
natural CONGEST implementation, one round per iteration) and the asynchronous
variant (vertices update one at a time in random order — the original
formulation, which avoids label oscillation) are provided.  The paper also
notes LPA's main drawback, the lack of a convergence guarantee; the
implementation therefore takes an iteration budget and reports whether it
converged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..utils import as_rng

__all__ = ["LabelPropagationResult", "label_propagation"]


@dataclass(frozen=True)
class LabelPropagationResult:
    """Outcome of a label propagation run.

    Attributes
    ----------
    partition:
        The detected communities (one per surviving label).
    iterations:
        Number of full sweeps performed.
    converged:
        Whether a sweep with no label change occurred within the budget.
    """

    partition: Partition
    iterations: int
    converged: bool


def label_propagation(
    graph: Graph,
    max_iterations: int = 100,
    synchronous: bool = False,
    seed: int | np.random.Generator | None = None,
) -> LabelPropagationResult:
    """Run label propagation on ``graph``.

    Parameters
    ----------
    max_iterations:
        Budget of full sweeps; LPA has no convergence guarantee (a point the
        paper makes), so the run stops after this many sweeps regardless.
    synchronous:
        ``True`` updates all vertices simultaneously from the previous
        sweep's labels (CONGEST-style); ``False`` (default) updates vertices
        one at a time in random order, which converges far more reliably.
    """
    if max_iterations < 1:
        raise AlgorithmError(f"max_iterations must be >= 1, got {max_iterations}")
    rng = as_rng(seed)
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    if n == 0:
        return LabelPropagationResult(Partition.from_labels(labels), 0, True)

    order = np.arange(n)
    iterations = 0
    converged = False
    for _ in range(max_iterations):
        iterations += 1
        changed = False
        if synchronous:
            previous = labels.copy()
            new_labels = labels.copy()
            for vertex in range(n):
                best = _majority_label(previous, graph.neighbors(vertex), rng)
                if best is not None and best != previous[vertex]:
                    new_labels[vertex] = best
                    changed = True
            labels = new_labels
        else:
            rng.shuffle(order)
            for vertex in order:
                best = _majority_label(labels, graph.neighbors(int(vertex)), rng)
                if best is not None and best != labels[vertex]:
                    labels[vertex] = best
                    changed = True
        if not changed:
            converged = True
            break

    return LabelPropagationResult(
        partition=Partition.from_labels(labels),
        iterations=iterations,
        converged=converged,
    )


def _majority_label(
    labels: np.ndarray, neighbors: np.ndarray, rng: np.random.Generator
) -> int | None:
    """Return the most frequent label among ``neighbors`` (random tie-break)."""
    if len(neighbors) == 0:
        return None
    neighbor_labels = labels[neighbors]
    values, counts = np.unique(neighbor_labels, return_counts=True)
    best = counts.max()
    candidates = values[counts == best]
    if len(candidates) == 1:
        return int(candidates[0])
    return int(rng.choice(candidates))
