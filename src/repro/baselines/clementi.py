"""Clementi-style two-community label dynamics baseline.

Clementi, Di Ianni, Gambosi, Natale and Silvestri (2015) — the closest prior
*distributed* result the paper compares against — detect the planted
bisection (two communities only) with a label-propagation-flavoured protocol
and prove it works when ``p/q > n^b``.  The protocol simulated here captures
the same mechanism at the level the paper discusses it:

1. a small set of source vertices broadcast distinct labels,
2. for ``O(log n)`` rounds every vertex adopts the label it hears most often
   from its neighbours (majority dynamics),
3. the two label classes are output as the two communities.

Its two structural limitations — exactly two communities, and the need for a
polynomially large ``p/q`` gap — are what the baseline benchmark exhibits
relative to CDRW (which handles any ``r`` and only needs
``p/q = Ω(r log(n/r))``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..utils import as_rng

__all__ = ["ClementiResult", "clementi_two_communities"]


@dataclass(frozen=True)
class ClementiResult:
    """Outcome of the two-community majority dynamics.

    Attributes
    ----------
    partition:
        The two detected communities.
    rounds:
        Number of majority rounds performed.
    sources:
        The vertices that seeded the two labels.
    """

    partition: Partition
    rounds: int
    sources: tuple[int, int]


def clementi_two_communities(
    graph: Graph,
    rounds: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> ClementiResult:
    """Detect two communities with seeded majority label dynamics."""
    n = graph.num_vertices
    if n < 2:
        raise AlgorithmError("the two-community protocol needs at least two vertices")
    if graph.num_edges == 0:
        raise AlgorithmError("the two-community protocol requires at least one edge")
    rng = as_rng(seed)
    if rounds is None:
        rounds = max(4, int(np.ceil(2 * np.log2(n))))
    if rounds < 1:
        raise AlgorithmError(f"rounds must be >= 1, got {rounds}")

    source_a, source_b = rng.choice(n, size=2, replace=False)
    # Label 0/1 seeded at the sources; -1 means "no opinion yet".
    labels = np.full(n, -1, dtype=np.int64)
    labels[source_a] = 0
    labels[source_b] = 1

    for _ in range(rounds):
        new_labels = labels.copy()
        for vertex in range(n):
            neighbor_labels = labels[graph.neighbors(vertex)]
            opinions = neighbor_labels[neighbor_labels >= 0]
            if len(opinions) == 0:
                continue
            zeros = int(np.count_nonzero(opinions == 0))
            ones = len(opinions) - zeros
            if zeros > ones:
                new_labels[vertex] = 0
            elif ones > zeros:
                new_labels[vertex] = 1
            elif labels[vertex] < 0:
                new_labels[vertex] = int(rng.integers(2))
        labels = new_labels
    # Sources never abandon their own label (they are the cluster anchors).
    labels[source_a] = 0
    labels[source_b] = 1
    # Undecided vertices (isolated from both sources) join a random side.
    undecided = labels < 0
    if undecided.any():
        labels[undecided] = rng.integers(0, 2, size=int(undecided.sum()))

    return ClementiResult(
        partition=Partition.from_labels(labels),
        rounds=rounds,
        sources=(int(source_a), int(source_b)),
    )
