"""Spectral clustering baseline.

Spectral partitioning (Donath–Hoffman; consistency on SBMs shown by
Lei & Rinaldo 2015, both cited by the paper) embeds the vertices with the top
eigenvectors of the normalised adjacency matrix and clusters the embedding.
It is the canonical *centralized* method for the stochastic block model — it
requires the full graph and an eigendecomposition, which is exactly the kind
of expensive global procedure the paper's distributed algorithm avoids — so
it serves as the accuracy upper bound in the baseline comparison benchmarks.

The k-means step is implemented here directly (Lloyd's algorithm with
k-means++ seeding) to avoid a scikit-learn dependency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..exceptions import AlgorithmError
from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..utils import as_rng

__all__ = ["SpectralResult", "spectral_clustering"]


@dataclass(frozen=True)
class SpectralResult:
    """Outcome of spectral clustering.

    Attributes
    ----------
    partition:
        Detected communities (one per requested cluster).
    embedding:
        The spectral embedding used for clustering (n × num_clusters).
    inertia:
        Final k-means within-cluster sum of squares.
    """

    partition: Partition
    embedding: np.ndarray
    inertia: float


def spectral_clustering(
    graph: Graph,
    num_clusters: int,
    seed: int | np.random.Generator | None = None,
    kmeans_restarts: int = 5,
    kmeans_iterations: int = 100,
) -> SpectralResult:
    """Cluster the graph into ``num_clusters`` communities spectrally."""
    if num_clusters < 1:
        raise AlgorithmError(f"num_clusters must be >= 1, got {num_clusters}")
    n = graph.num_vertices
    if n == 0:
        raise AlgorithmError("spectral clustering requires a non-empty graph")
    if num_clusters > n:
        raise AlgorithmError(f"cannot split {n} vertices into {num_clusters} clusters")
    if graph.num_edges == 0:
        # Degenerate: everything is isolated; put everything in one cluster.
        return SpectralResult(
            partition=Partition.single_community(n),
            embedding=np.zeros((n, num_clusters), dtype=np.float64),
            inertia=0.0,
        )

    rng = as_rng(seed)
    degrees = graph.degrees().astype(np.float64)
    safe_degrees = np.where(degrees > 0, degrees, 1.0)
    d_inv_sqrt = sp.diags(1.0 / np.sqrt(safe_degrees))
    normalized = d_inv_sqrt @ graph.adjacency_matrix() @ d_inv_sqrt

    k = min(num_clusters, n - 1)
    if n <= 512:
        eigenvalues, eigenvectors = np.linalg.eigh(normalized.toarray())
        embedding = eigenvectors[:, np.argsort(eigenvalues)[::-1][:num_clusters]]
    else:
        try:
            _, eigenvectors = spla.eigsh(normalized, k=max(k, 2), which="LA")
            embedding = eigenvectors[:, ::-1][:, :num_clusters]
        except (spla.ArpackNoConvergence, ValueError):
            eigenvalues, eigenvectors = np.linalg.eigh(normalized.toarray())
            embedding = eigenvectors[:, np.argsort(eigenvalues)[::-1][:num_clusters]]
    if embedding.shape[1] < num_clusters:
        padding = np.zeros((n, num_clusters - embedding.shape[1]), dtype=np.float64)
        embedding = np.hstack([embedding, padding])

    # Row-normalise the embedding (standard for normalised spectral clustering).
    norms = np.linalg.norm(embedding, axis=1, keepdims=True)
    normalized_embedding = embedding / np.where(norms > 0, norms, 1.0)

    best_labels: np.ndarray | None = None
    best_inertia = np.inf
    for _ in range(max(1, kmeans_restarts)):
        labels, inertia = _kmeans(normalized_embedding, num_clusters, rng, kmeans_iterations)
        if inertia < best_inertia:
            best_inertia = inertia
            best_labels = labels
    assert best_labels is not None
    return SpectralResult(
        partition=Partition.from_labels(best_labels),
        embedding=embedding,
        inertia=float(best_inertia),
    )


def _kmeans(
    points: np.ndarray, k: int, rng: np.random.Generator, max_iterations: int
) -> tuple[np.ndarray, float]:
    """Lloyd's algorithm with k-means++ seeding; returns (labels, inertia)."""
    n = len(points)
    centers = _kmeans_plus_plus(points, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iterations):
        distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for cluster in range(k):
            members = points[labels == cluster]
            if len(members):
                centers[cluster] = members.mean(axis=0)
            else:
                centers[cluster] = points[rng.integers(n)]
    distances = np.linalg.norm(points - centers[labels], axis=1)
    return labels, float(np.sum(distances**2))


def _kmeans_plus_plus(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ initial centers."""
    n = len(points)
    centers = [points[rng.integers(n)]]
    for _ in range(1, k):
        distances = np.min(
            np.linalg.norm(points[:, None, :] - np.asarray(centers)[None, :, :], axis=2) ** 2,
            axis=1,
        )
        total = distances.sum()
        if total == 0:
            centers.append(points[rng.integers(n)])
            continue
        probabilities = distances / total
        centers.append(points[rng.choice(n, p=probabilities)])
    return np.asarray(centers, dtype=np.float64)
