"""JSON-lines-over-TCP front end for :class:`~repro.service.DetectionService`.

The wire protocol is deliberately minimal — one JSON object per line, one
reply line per request line, strictly in order per connection:

request::

    {"op": "detect", "seed": 42, "id": 7}            # id optional, echoed
    {"op": "detect", "seed": 42, "deadline": 0.25}   # seconds from admission
    {"op": "metrics", "id": 8}
    {"op": "ping"}

reply::

    {"id": 7, "ok": true, "report": {...RunReport.to_dict()...}}
    {"id": 8, "ok": true, "metrics": {...service.metrics()...}}
    {"id": null, "ok": false, "kind": "overloaded", "error": "..."}

``kind`` maps 1:1 onto the typed service errors, so
:class:`ServiceClient` re-raises the same exception class the in-process
surface would have raised — callers cannot tell a socket hop happened
except by latency.  Concurrency comes from connections: each connection
is strict request/reply, and every concurrently-connected client feeds
the same admission queue, so coalescing happens across connections
exactly as it does across threads.

Three building blocks:

* :class:`ServiceServer` — the asyncio server; handlers only await (the
  REP108 lint rule keeps blocking calls out of these coroutines).
* :class:`BackgroundServer` — runs a :class:`ServiceServer` on a
  dedicated event-loop thread; the embedding surface for tests, CI and
  the examples.
* :class:`ServiceClient` — blocking socket client with the same typed
  errors as the in-process surface.

``repro serve --port N`` (see :mod:`repro.cli`) wires a graph, a
:class:`~repro.service.DetectionService` and this server together into a
network daemon.  This is also the first concrete transport step toward
ROADMAP item 4's multi-host executor: the framing and error taxonomy
here are what a shard-exchange transport would reuse.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
import threading
from typing import TYPE_CHECKING, Any

from .api import RunReport
from .exceptions import (
    AlgorithmError,
    BackendError,
    DeadlineExpiredError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    SessionBusyError,
)

if TYPE_CHECKING:
    from .service import DetectionService

__all__ = ["BackgroundServer", "ServiceClient", "ServiceServer", "run_server"]

DEFAULT_HOST = "127.0.0.1"

# Wire error taxonomy: first matching class wins (most specific first).
_KIND_OF_ERROR: tuple[tuple[type[ReproError], str], ...] = (
    (ServiceOverloadedError, "overloaded"),
    (DeadlineExpiredError, "deadline-expired"),
    (ServiceClosedError, "service-closed"),
    (SessionBusyError, "session-busy"),
    (AlgorithmError, "invalid-seed"),
    (BackendError, "invalid-request"),
    (ReproError, "error"),
)
_ERROR_OF_KIND: dict[str, type[ReproError]] = {
    "overloaded": ServiceOverloadedError,
    "deadline-expired": DeadlineExpiredError,
    "service-closed": ServiceClosedError,
    "session-busy": SessionBusyError,
    "invalid-seed": AlgorithmError,
    "invalid-request": BackendError,
    "bad-request": BackendError,
    "error": ServiceError,
}


def _kind_of(error: ReproError) -> str:
    for exc_type, kind in _KIND_OF_ERROR:
        if isinstance(error, exc_type):
            return kind
    return "error"  # pragma: no cover - ReproError catches everything above


def _encode(payload: dict[str, Any]) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


class ServiceServer:
    """Serve a :class:`~repro.service.DetectionService` over JSON lines.

    ``port=0`` (the default) binds an ephemeral port; :meth:`start`
    publishes the bound address on ``self.host`` / ``self.port``.
    """

    def __init__(
        self, service: "DetectionService", host: str = DEFAULT_HOST, port: int = 0
    ) -> None:
        self._service = service
        self.host = host
        self.port = port
        self._server: asyncio.Server | None = None

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; returns ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ServiceError("server is not started; call start() first")
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._respond(line)
                writer.write(_encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-reply; nothing to salvage
        finally:
            writer.close()

    async def _respond(self, raw: bytes) -> dict[str, Any]:
        try:
            message = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return self._error(None, "bad-request", f"unparseable request: {error}")
        if not isinstance(message, dict):
            return self._error(
                None, "bad-request", "request must be a JSON object per line"
            )
        ident = message.get("id")
        op = message.get("op", "detect")
        if op == "ping":
            return {"id": ident, "ok": True, "pong": True}
        if op == "metrics":
            return {"id": ident, "ok": True, "metrics": self._service.metrics()}
        if op == "detect":
            return await self._respond_detect(ident, message)
        return self._error(
            ident, "bad-request", f"unknown op {op!r}; expected detect/metrics/ping"
        )

    async def _respond_detect(
        self, ident: object, message: dict[str, Any]
    ) -> dict[str, Any]:
        seed = message.get("seed")
        if isinstance(seed, bool) or not isinstance(seed, int):
            return self._error(
                ident, "bad-request", "detect needs an integer 'seed' field"
            )
        deadline = message.get("deadline")
        if deadline is not None and not isinstance(deadline, (int, float)):
            return self._error(
                ident, "bad-request", "'deadline' must be a number of seconds"
            )
        try:
            report = await self._service.detect(seed, deadline=deadline)
        except ReproError as error:
            return self._error(ident, _kind_of(error), str(error))
        return {"id": ident, "ok": True, "report": report.to_dict()}

    @staticmethod
    def _error(ident: object, kind: str, message: str) -> dict[str, Any]:
        return {"id": ident, "ok": False, "kind": kind, "error": message}


class BackgroundServer:
    """Run a :class:`ServiceServer` on a dedicated event-loop thread.

    The embedding surface for synchronous programs (tests, CI smoke steps,
    the example script): ``start()`` blocks until the socket is bound and
    returns ``(host, port)``; ``stop()`` shuts the loop down and joins the
    thread.  Also usable as a context manager.
    """

    def __init__(
        self, service: "DetectionService", host: str = DEFAULT_HOST, port: int = 0
    ) -> None:
        self._service = service
        self._requested = (host, port)
        self.host = host
        self.port = port
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        if self._thread is not None:
            raise ServiceError("background server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServiceError("background server did not start within 30 s")
        if self._startup_error is not None:
            raise ServiceError(
                f"background server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self.host, self.port

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            stop_event = self._stop_event
            self._loop.call_soon_threadsafe(stop_event.set)
        self._thread.join(timeout=30)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        server = ServiceServer(self._service, *self._requested)
        try:
            self.host, self.port = await server.start()
        except OSError as error:
            self._startup_error = error
            self._started.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            await server.aclose()


def run_server(
    service: "DetectionService", host: str = DEFAULT_HOST, port: int = 0
) -> None:
    """Blocking entry point: bind, announce, serve until interrupted."""
    asyncio.run(_serve_main(service, host, port))


async def _serve_main(service: "DetectionService", host: str, port: int) -> None:
    server = ServiceServer(service, host, port)
    bound_host, bound_port = await server.start()
    print(f"serving detections on {bound_host}:{bound_port}", flush=True)
    try:
        # Let a Ctrl-C cancellation propagate: swallowing it here would
        # make asyncio.run() return normally and the CLI would never see
        # the KeyboardInterrupt it announces graceful draining on.
        await server.serve_forever()
    finally:
        await server.aclose()


class ServiceClient:
    """Blocking JSON-lines client with the in-process error surface.

    One connection serves one request at a time (an internal lock
    serializes round trips); open one client per concurrent caller — the
    server coalesces across connections.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._ids = itertools.count()
        self._lock = threading.Lock()

    def detect(self, seed: int, *, deadline: float | None = None) -> RunReport:
        """Request one detection; returns the per-request report."""
        message: dict[str, Any] = {"op": "detect", "seed": int(seed)}
        if deadline is not None:
            message["deadline"] = float(deadline)
        response = self._roundtrip(message)
        report = response["report"]
        if not isinstance(report, dict):
            raise ServiceError(f"malformed detect reply: {response!r}")
        return RunReport.from_dict(report)

    def metrics(self) -> dict[str, Any]:
        """Fetch the service's metrics snapshot."""
        metrics = self._roundtrip({"op": "metrics"})["metrics"]
        if not isinstance(metrics, dict):
            raise ServiceError("malformed metrics reply")
        return metrics

    def ping(self) -> bool:
        """Liveness probe; true iff the server answered."""
        return bool(self._roundtrip({"op": "ping"}).get("pong"))

    def close(self) -> None:
        self._reader.close()
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _roundtrip(self, message: dict[str, Any]) -> dict[str, Any]:
        with self._lock:
            ident = next(self._ids)
            message["id"] = ident
            self._sock.sendall(_encode(message))
            line = self._reader.readline()
        if not line:
            raise ServiceError("server closed the connection")
        response = json.loads(line.decode("utf-8"))
        if not isinstance(response, dict):
            raise ServiceError(f"malformed reply: {response!r}")
        if response.get("id") != ident:
            raise ServiceError(
                f"reply id {response.get('id')!r} does not match request {ident}"
            )
        if not response.get("ok"):
            kind = str(response.get("kind", "error"))
            error = str(response.get("error", "unspecified server error"))
            raise _ERROR_OF_KIND.get(kind, ServiceError)(error)
        return response
