"""A synchronous message-passing simulator for the CONGEST model.

The CONGEST model (Peleg) runs on the input graph itself: vertices are
processors, edges are links, computation proceeds in synchronous rounds and
each vertex may send one ``O(log n)``-bit message per incident edge per
round.  :class:`CongestNetwork` simulates this faithfully:

* a round is opened with :meth:`CongestNetwork.begin_round`, messages are
  submitted with :meth:`CongestNetwork.send` (the simulator rejects messages
  over non-edges and enforces the one-message-per-directed-edge-per-round
  bandwidth limit), and :meth:`CongestNetwork.end_round` delivers everything
  submitted in that round;
* the simulator keeps the two complexity measures the paper analyses — the
  number of rounds and the total number of messages — plus a per-kind
  message breakdown that the experiment harness reports.

Higher-level primitives (BFS trees, broadcast, convergecast, the binary
search of Algorithm 1) are built on top of this interface in
:mod:`repro.congest.bfs` and :mod:`repro.congest.aggregation`.  For large
parameter sweeps those primitives can skip materialising individual
:class:`~repro.congest.message.Message` objects while still performing the
identical per-round schedule and charging identical round/message counts
(``count_only`` accounting); tests assert that both paths agree.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..exceptions import BandwidthExceededError, SimulationError
from ..graphs.graph import Graph
from .message import Message

__all__ = ["CongestNetwork", "CostReport"]


@dataclass(frozen=True)
class CostReport:
    """A snapshot of the complexity counters of a simulation.

    Attributes
    ----------
    rounds:
        Number of synchronous rounds elapsed.
    messages:
        Total number of messages delivered.
    messages_by_kind:
        Message totals broken down by message kind.
    """

    rounds: int
    messages: int
    messages_by_kind: dict[str, int] = field(default_factory=dict)

    def __add__(self, other: object) -> "CostReport":
        # Foreign types get NotImplemented (not an AttributeError deep in the
        # kind merge) so Python can try the reflected operation or raise a
        # proper TypeError.
        if not isinstance(other, CostReport):
            return NotImplemented
        kinds = defaultdict(int, self.messages_by_kind)
        for kind, count in other.messages_by_kind.items():
            kinds[kind] += count
        return CostReport(
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            messages_by_kind=dict(kinds),
        )

    def __radd__(self, other: object) -> "CostReport":
        # ``sum(reports)`` starts from the int 0; absorb exactly that
        # identity (an equality-only test would also swallow 0.0/False and
        # choke on broadcasting __eq__ types like numpy arrays) so
        # experiments can aggregate per-phase reports with plain ``sum``.
        if isinstance(other, int) and not isinstance(other, bool) and other == 0:
            return self
        return NotImplemented


class CongestNetwork:
    """Synchronous CONGEST-model execution environment over a :class:`Graph`."""

    def __init__(self, graph: Graph):
        if graph.num_vertices == 0:
            raise SimulationError("cannot build a CONGEST network on an empty graph")
        self._graph = graph
        self._rounds = 0
        self._messages = 0
        self._messages_by_kind: dict[str, int] = defaultdict(int)
        self._round_open = False
        self._outbox: dict[tuple[int, int], Message] = {}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying communication graph."""
        return self._graph

    @property
    def rounds(self) -> int:
        """Number of rounds elapsed so far."""
        return self._rounds

    @property
    def messages(self) -> int:
        """Total number of messages delivered so far."""
        return self._messages

    def cost_report(self) -> CostReport:
        """Return a snapshot of the complexity counters."""
        return CostReport(
            rounds=self._rounds,
            messages=self._messages,
            messages_by_kind=dict(self._messages_by_kind),
        )

    def reset_costs(self) -> None:
        """Zero all complexity counters (the topology is kept)."""
        if self._round_open:
            raise SimulationError("cannot reset counters in the middle of a round")
        self._rounds = 0
        self._messages = 0
        self._messages_by_kind = defaultdict(int)

    # ------------------------------------------------------------------
    # Message-level round interface
    # ------------------------------------------------------------------
    def begin_round(self) -> None:
        """Open a new synchronous round."""
        if self._round_open:
            raise SimulationError("a round is already open; call end_round() first")
        self._round_open = True
        self._outbox = {}

    def send(self, sender: int, receiver: int, kind: str, payload=None) -> None:
        """Submit one message for delivery at the end of the current round.

        Raises
        ------
        SimulationError
            If no round is open or the endpoints are not adjacent.
        BandwidthExceededError
            If a second message is submitted on the same directed edge in the
            same round (the CONGEST bandwidth limit).
        """
        if not self._round_open:
            raise SimulationError("send() called outside a round; call begin_round() first")
        if not self._graph.has_edge(sender, receiver):
            raise SimulationError(
                f"cannot send from {sender} to {receiver}: the vertices are not adjacent"
            )
        key = (sender, receiver)
        if key in self._outbox:
            raise BandwidthExceededError(
                f"vertex {sender} already sent a message to {receiver} this round"
            )
        self._outbox[key] = Message(
            sender=sender, receiver=receiver, kind=kind, payload=payload,
            round_sent=self._rounds,
        )

    def end_round(self) -> dict[int, list[Message]]:
        """Close the round and return the delivered messages grouped by receiver."""
        if not self._round_open:
            raise SimulationError("end_round() called without a matching begin_round()")
        delivered: dict[int, list[Message]] = defaultdict(list)
        for message in self._outbox.values():
            delivered[message.receiver].append(message)
            self._messages += 1
            self._messages_by_kind[message.kind] += 1
        self._rounds += 1
        self._round_open = False
        self._outbox = {}
        return dict(delivered)

    # ------------------------------------------------------------------
    # Count-only accounting (identical schedule, no Message objects)
    # ------------------------------------------------------------------
    def charge_rounds(self, rounds: int) -> None:
        """Charge ``rounds`` synchronous rounds without materialising messages.

        Used by the high-level primitives when executing the same round
        schedule in vectorised form; the caller is responsible for charging
        the matching message count via :meth:`charge_messages`.
        """
        if self._round_open:
            raise SimulationError("cannot charge rounds while a message-level round is open")
        if rounds < 0:
            raise SimulationError(f"cannot charge a negative number of rounds: {rounds}")
        self._rounds += rounds

    def charge_messages(self, kind: str, count: int) -> None:
        """Charge ``count`` messages of the given kind without materialising them."""
        if count < 0:
            raise SimulationError(f"cannot charge a negative number of messages: {count}")
        self._messages += count
        self._messages_by_kind[kind] += count
