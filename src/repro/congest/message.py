"""Messages exchanged in the CONGEST model simulator.

The CONGEST model allows each node to send one message of ``O(log n)`` bits
over each incident edge per synchronous round.  The simulator therefore
models a message as a small, typed payload and *accounts* for its size: a
message that would not fit in ``O(log n)`` bits (for example a payload
containing a large collection) is rejected, which keeps algorithm
implementations honest about the model's bandwidth constraint.

Numeric payloads (probabilities, partial sums) are treated as a constant
number of machine words, the standard convention when analysing algorithms
such as CDRW whose values are rationals with polynomially-bounded
denominators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..exceptions import SimulationError

__all__ = ["Message", "message_size_in_words", "MAX_WORDS_PER_MESSAGE"]

#: Maximum number of O(log n)-bit words a single CONGEST message may carry.
#: One word is the standard allowance; we allow a small constant number so a
#: message can carry a type tag plus a couple of values (e.g. a binary-search
#: pivot and a count), which is routinely assumed in CONGEST algorithm
#: descriptions and does not change any asymptotics.
MAX_WORDS_PER_MESSAGE: int = 4


def message_size_in_words(payload: Any) -> int:
    """Return how many O(log n)-bit words ``payload`` occupies.

    Scalars (ints, floats, bools, None, short strings used as type tags)
    count as one word.  Tuples/lists/dicts count the sum of their elements.
    """
    if payload is None or isinstance(payload, (bool, int, float)):
        return 1
    if isinstance(payload, str):
        # Type tags are short constant strings: one word.
        return 1
    if isinstance(payload, (tuple, list)):
        return sum(message_size_in_words(item) for item in payload)
    if isinstance(payload, dict):
        return sum(
            message_size_in_words(key) + message_size_in_words(value)
            for key, value in payload.items()
        )
    raise SimulationError(
        f"cannot measure the size of a payload of type {type(payload).__name__}"
    )


@dataclass(frozen=True)
class Message:
    """A single CONGEST message travelling along one edge for one round.

    Attributes
    ----------
    sender, receiver:
        Endpoint vertex ids of the edge the message travels on.
    kind:
        A short string identifying the message type (e.g. ``"probability"``,
        ``"bfs"``, ``"upcast"``).
    payload:
        The message content.  Its size in words must not exceed
        :data:`MAX_WORDS_PER_MESSAGE`.
    round_sent:
        The round in which the message was handed to the network (filled in
        by the simulator).
    """

    sender: int
    receiver: int
    kind: str
    payload: Any = None
    round_sent: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        size = message_size_in_words(self.payload) + 1  # +1 for the kind tag
        if size > MAX_WORDS_PER_MESSAGE:
            raise SimulationError(
                f"message of kind {self.kind!r} needs {size} words, which exceeds the "
                f"CONGEST bandwidth of {MAX_WORDS_PER_MESSAGE} words per edge per round"
            )

    def size_in_words(self) -> int:
        """Return the size of this message in O(log n)-bit words (incl. the tag)."""
        return message_size_in_words(self.payload) + 1
