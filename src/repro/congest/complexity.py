"""Theoretical CONGEST complexity bounds of CDRW (Theorems 5 and 6).

These closed-form expressions are what the measured counters of
:mod:`repro.congest.cdrw_congest` are compared against in the complexity
experiments (EXPERIMENTS.md, "CONGEST scaling"):

* Theorem 5 — detecting one community takes ``O(log⁴ n)`` rounds and
  ``Õ((n²/r)(p + q(r−1)))`` messages in expectation;
* Theorem 6 — detecting all ``r`` communities takes ``O(r log⁴ n)`` rounds
  and ``Õ(n²(p + q(r−1)))`` messages.

The functions return the bound *without* its hidden constant, so experiments
report the ratio measured/bound, which should stay bounded (and roughly flat)
as ``n`` grows if the implementation matches the analysis.
"""

from __future__ import annotations

import math

from ..exceptions import SimulationError

__all__ = [
    "round_bound_single_community",
    "round_bound_all_communities",
    "message_bound_single_community",
    "message_bound_all_communities",
    "expected_edges",
]


def _check(n: int, r: int, p: float, q: float) -> None:
    if n < 2:
        raise SimulationError(f"n must be >= 2, got {n}")
    if r < 1 or n % r != 0:
        raise SimulationError(f"r must divide n, got n={n}, r={r}")
    for name, value in (("p", p), ("q", q)):
        if not (0.0 <= value <= 1.0):
            raise SimulationError(f"{name} must be in [0, 1], got {value}")


def round_bound_single_community(n: int) -> float:
    """Theorem 5 round bound ``log⁴ n`` (natural log, constant omitted)."""
    if n < 2:
        raise SimulationError(f"n must be >= 2, got {n}")
    return math.log(n) ** 4


def round_bound_all_communities(n: int, r: int) -> float:
    """Theorem 6 round bound ``r · log⁴ n`` (constant omitted)."""
    if r < 1:
        raise SimulationError(f"r must be >= 1, got {r}")
    return r * round_bound_single_community(n)


def expected_edges(n: int, r: int, p: float, q: float) -> float:
    """Expected number of edges of ``G(n, p, q)``: ``r·C(n/r,2)·p + C(r,2)(n/r)²·q``."""
    _check(n, r, p, q)
    block = n / r
    intra = r * block * (block - 1) / 2.0 * p
    inter = r * (r - 1) / 2.0 * block * block * q
    return intra + inter


def message_bound_single_community(n: int, r: int, p: float, q: float) -> float:
    """Theorem 5 message bound ``(n²/r)(p + q(r−1)) · log⁴ n``.

    The ``Õ`` in the theorem hides the ``log⁴ n`` factor (time complexity ×
    edges touched); it is included here so the measured/bound ratio is O(1).
    """
    _check(n, r, p, q)
    return (n * n / r) * (p + q * (r - 1)) * math.log(n) ** 4


def message_bound_all_communities(n: int, r: int, p: float, q: float) -> float:
    """Theorem 6 message bound ``n²(p + q(r−1)) · log⁴ n``."""
    _check(n, r, p, q)
    return n * n * (p + q * (r - 1)) * math.log(n) ** 4
