"""CONGEST-model simulator and the distributed implementation of CDRW."""

from .message import MAX_WORDS_PER_MESSAGE, Message, message_size_in_words
from .network import CongestNetwork, CostReport
from .bfs import distributed_bfs, distributed_bfs_counted
from .aggregation import broadcast, convergecast, select_k_smallest, tree_edge_count
from .cdrw_congest import (
    CongestCommunityResult,
    CongestDetectionResult,
    detect_communities_congest,
    detect_community_congest,
)
from .complexity import (
    expected_edges,
    message_bound_all_communities,
    message_bound_single_community,
    round_bound_all_communities,
    round_bound_single_community,
)

__all__ = [
    "MAX_WORDS_PER_MESSAGE",
    "Message",
    "message_size_in_words",
    "CongestNetwork",
    "CostReport",
    "distributed_bfs",
    "distributed_bfs_counted",
    "broadcast",
    "convergecast",
    "select_k_smallest",
    "tree_edge_count",
    "CongestCommunityResult",
    "CongestDetectionResult",
    "detect_communities_congest",
    "detect_community_congest",
    "expected_edges",
    "message_bound_all_communities",
    "message_bound_single_community",
    "round_bound_all_communities",
    "round_bound_single_community",
]
