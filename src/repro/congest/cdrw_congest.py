"""CDRW in the CONGEST model: the distributed implementation of Algorithm 1.

The node programs of Algorithm 1 are executed on a
:class:`~repro.congest.network.CongestNetwork`, charging every communication
round and every message:

1. a BFS tree of depth ``O(log n)`` is flooded from the seed (line 5);
2. each walk step is one flooding round in which every vertex holding
   probability mass sends ``p_{ℓ-1}(u)/d(u)`` to each neighbour (lines 9-11);
3. for every candidate size ``|S|``, each vertex computes its deviation
   ``x_u`` locally and the seed learns the sum of the ``|S|`` smallest values
   through the binary-search selection over the BFS tree (lines 12-17), plus
   one extra convergecast for the probability mass held by the selected
   vertices (the mass condition, DESIGN.md §5);
4. the growth stopping rule (line 18) is evaluated locally at the seed.

The detected community is identical to the one produced by the centralized
executor in :mod:`repro.core.cdrw` (same arithmetic, same tie-breaking up to
ties among identical deviations); what this module adds is the measured round
and message complexity that Theorems 5 and 6 bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.mixing_set import LargestMixingSet, deviation_values
from ..core.parameters import CDRWParameters
from ..core.result import CommunityResult, DetectionResult
from ..core.stopping import GrowthStoppingRule
from ..exceptions import SimulationError
from ..graphs.graph import Graph
from ..randomwalk.distribution import WalkDistribution
from ..utils import geometric_sizes, linear_sizes, seed_pool_schedule
from .aggregation import convergecast, select_k_smallest, tree_edge_count
from .bfs import distributed_bfs, distributed_bfs_counted
from .network import CongestNetwork, CostReport

__all__ = ["CongestCommunityResult", "CongestDetectionResult", "detect_community_congest",
           "detect_communities_congest"]


@dataclass(frozen=True)
class CongestCommunityResult:
    """A detected community together with its measured CONGEST complexity.

    Attributes
    ----------
    community:
        The :class:`~repro.core.result.CommunityResult` (same fields as the
        centralized executor produces).
    cost:
        Rounds and messages consumed detecting this community.
    bfs_depth:
        Depth of the BFS tree built from the seed.
    """

    community: CommunityResult
    cost: CostReport
    bfs_depth: int


@dataclass(frozen=True)
class CongestDetectionResult:
    """All communities detected by the CONGEST execution plus total costs."""

    detection: DetectionResult
    per_community: tuple[CongestCommunityResult, ...]
    total_cost: CostReport


def detect_community_congest(
    graph: Graph,
    seed_vertex: int,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    count_only: bool = True,
    network: CongestNetwork | None = None,
) -> CongestCommunityResult:
    """Detect the community of ``seed_vertex`` with full CONGEST cost accounting.

    Parameters
    ----------
    count_only:
        ``True`` (default) executes the identical round schedule without
        materialising per-hop message objects; ``False`` sends every message
        through the bandwidth-checked network (only practical on small
        graphs — used by the equivalence tests).
    network:
        An existing network to charge costs to; a fresh one is created when
        omitted.
    """
    if seed_vertex not in graph:
        raise SimulationError(f"seed vertex {seed_vertex} is not a vertex of {graph!r}")
    parameters = parameters or CDRWParameters()
    network = network or CongestNetwork(graph)
    start_cost = network.cost_report()

    delta = parameters.resolve_delta(graph, delta_hint)
    initial_size = parameters.resolve_initial_size(graph)
    max_walk_length = parameters.resolve_max_walk_length(graph)
    threshold = parameters.mixing_threshold
    min_mass = parameters.min_mass
    if min_mass is None:
        min_mass = max(0.0, 1.0 - 2.0 * threshold)

    # Line 5: BFS tree of depth O(log n) from the seed.
    bfs = distributed_bfs_counted if count_only else distributed_bfs
    tree = bfs(network, seed_vertex, max_depth=max_walk_length)
    reached = tree.reached()
    degrees = graph.degrees()

    if parameters.size_schedule == "geometric":
        sizes = geometric_sizes(
            min(initial_size, len(reached)), len(reached), parameters.growth_factor
        )
    else:
        sizes = linear_sizes(min(initial_size, len(reached)), len(reached))

    walk = WalkDistribution(graph, seed_vertex, lazy=parameters.lazy_walk)
    stopping = GrowthStoppingRule(delta=delta)
    history: list[LargestMixingSet] = []
    last_found: LargestMixingSet | None = None
    stop_reason = "walk length budget exhausted"
    stopped_at = max_walk_length
    final_members: frozenset[int] | None = None

    for length in range(1, max_walk_length + 1):
        # Lines 9-11: one flooding round advances the distribution.  Every
        # vertex currently holding probability sends one message per
        # incident edge.
        active = walk.support()
        network.charge_rounds(1)
        network.charge_messages("probability", int(degrees[active].sum()))
        walk.step()
        distribution = walk.probabilities()

        # Lines 12-17: largest mixing set via the tree-based selection.
        best: LargestMixingSet | None = None
        examined = 0
        for size in sizes:
            examined += 1
            deviations = deviation_values(graph, distribution, size)
            selected, deficit, _ = select_k_smallest(
                network, tree, deviations, size, kind="select", count_only=count_only
            )
            # One extra convergecast for the probability mass of the selected
            # vertices (the mass condition).
            mass_values = np.zeros(graph.num_vertices, dtype=np.float64)
            mass_values[selected] = distribution[selected]
            mass = convergecast(
                network, tree, mass_values, combine=lambda a, b: a + b,
                kind="mass", count_only=count_only,
            )
            if deficit < threshold and mass >= min_mass:
                best = LargestMixingSet(
                    walk_length=length,
                    size=size,
                    members=frozenset(int(v) for v in selected),
                    deficit=deficit,
                    mass=mass,
                    sizes_examined=examined,
                )
            elif deficit >= threshold and parameters.stop_at_first_failure:
                break
        current = best if best is not None else LargestMixingSet(
            walk_length=length, size=0, members=frozenset(), deficit=0.0, mass=0.0,
            sizes_examined=examined,
        )
        history.append(current)
        if current.found:
            last_found = current

        decision = stopping.observe(current)
        if decision.should_stop and decision.community is not None:
            final_members = decision.community.members
            stop_reason = decision.reason
            stopped_at = length
            break

    if final_members is None:
        if last_found is not None:
            final_members = last_found.members
        else:
            final_members = frozenset({seed_vertex})
            stop_reason = "no mixing set found within the walk budget"
    if seed_vertex not in final_members:
        final_members = frozenset(final_members | {seed_vertex})

    community = CommunityResult(
        seed=seed_vertex,
        community=final_members,
        walk_length=stopped_at,
        history=tuple(history),
        stop_reason=stop_reason,
        delta=delta,
    )
    end_cost = network.cost_report()
    cost = CostReport(
        rounds=end_cost.rounds - start_cost.rounds,
        messages=end_cost.messages - start_cost.messages,
        messages_by_kind={
            kind: end_cost.messages_by_kind.get(kind, 0) - start_cost.messages_by_kind.get(kind, 0)
            for kind in end_cost.messages_by_kind
        },
    )
    return CongestCommunityResult(community=community, cost=cost, bfs_depth=tree.depth())


def detect_communities_congest(
    graph: Graph,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    seed: int | np.random.Generator | None = None,
    max_seeds: int | None = None,
    count_only: bool = True,
) -> CongestDetectionResult:
    """Run the full pool loop of Algorithm 1 in the CONGEST model.

    The loop structure matches :func:`repro.core.cdrw.detect_communities`;
    each seed's detection is charged to a shared network so the total cost
    corresponds to Theorem 6 (all ``r`` communities detected one by one).
    This is a thin shim over the ``"congest"`` backend of :mod:`repro.api`;
    communities and cost reports are identical to the pre-registry
    implementation.
    """
    from ..api import RunConfig, detect

    report = detect(
        graph,
        backend="congest",
        params=parameters,
        delta_hint=delta_hint,
        config=RunConfig(seed=seed, max_seeds=max_seeds, count_only=count_only),
    )
    return report.native_result


def _detect_communities_congest_impl(
    graph: Graph,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    seed: int | np.random.Generator | None = None,
    max_seeds: int | None = None,
    count_only: bool = True,
    seeds: tuple[int, ...] | None = None,
) -> CongestDetectionResult:
    """The CONGEST pool loop the ``"congest"`` backend executes.

    ``seeds`` (facade-only) skips the pool drawing and detects the listed
    seed vertices in order on one shared network.
    """
    parameters = parameters or CDRWParameters()
    network = CongestNetwork(graph)

    per_community: list[CongestCommunityResult] = []
    results: list[CommunityResult] = []
    for seed_vertex, pool in seed_pool_schedule(
        graph.num_vertices, seed, max_seeds, seeds, results
    ):
        outcome = detect_community_congest(
            graph,
            seed_vertex,
            parameters,
            delta_hint=delta_hint,
            count_only=count_only,
            network=network,
        )
        per_community.append(outcome)
        results.append(outcome.community)
        if pool is not None:
            pool.difference_update(outcome.community.community)
            pool.discard(seed_vertex)

    detection = DetectionResult(num_vertices=graph.num_vertices, communities=tuple(results))
    return CongestDetectionResult(
        detection=detection,
        per_community=tuple(per_community),
        total_cost=network.cost_report(),
    )
