"""Distributed BFS-tree construction in the CONGEST model.

Algorithm 1 (line 5) starts by building a BFS tree of depth ``O(log n)``
rooted at the seed vertex via flooding: in round 1 the root announces itself
to its neighbours, in round ``t`` every vertex first reached in round ``t-1``
announces itself to its neighbours, and every vertex adopts the first
announcer as its tree parent.  The construction takes ``depth + 1`` rounds and
one message per direction of every edge incident to a reached vertex.

Two execution paths are provided:

* :func:`distributed_bfs` drives the flooding through the message-level
  interface of :class:`~repro.congest.network.CongestNetwork` (every
  announcement is a real :class:`~repro.congest.message.Message`), and
* :func:`distributed_bfs_counted` performs the identical level-synchronous
  schedule in vectorised form and charges the identical round and message
  counts (used inside large parameter sweeps).

Both return the same :class:`~repro.graphs.traversal.BFSResult` as the
shared-memory BFS (asserted by tests), so downstream code can use either.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SimulationError
from ..graphs.traversal import UNREACHED, BFSResult
from .network import CongestNetwork

__all__ = ["distributed_bfs", "distributed_bfs_counted"]

_KIND = "bfs"


def distributed_bfs(
    network: CongestNetwork, root: int, max_depth: int | None = None
) -> BFSResult:
    """Build a BFS tree from ``root`` with explicit per-round flooding messages."""
    graph = network.graph
    if root not in graph:
        raise SimulationError(f"BFS root {root} is not a vertex of {graph!r}")

    n = graph.num_vertices
    distances = np.full(n, UNREACHED, dtype=np.int64)
    parents = np.full(n, UNREACHED, dtype=np.int64)
    distances[root] = 0
    frontier = [root]
    depth = 0

    while frontier:
        if max_depth is not None and depth >= max_depth:
            break
        network.begin_round()
        for vertex in frontier:
            for neighbor in graph.neighbors(vertex):
                network.send(vertex, int(neighbor), _KIND, payload=depth)
        delivered = network.end_round()

        next_frontier: list[int] = []
        for receiver, messages in sorted(delivered.items()):
            if distances[receiver] != UNREACHED:
                continue
            # Adopt the smallest-id announcer as parent (deterministic tie-break).
            parent = min(message.sender for message in messages)
            distances[receiver] = depth + 1
            parents[receiver] = parent
            next_frontier.append(receiver)
        frontier = next_frontier
        depth += 1

    return BFSResult(root=root, distances=distances, parents=parents, max_depth=max_depth)


def distributed_bfs_counted(
    network: CongestNetwork, root: int, max_depth: int | None = None
) -> BFSResult:
    """Level-synchronous BFS charging the same costs as :func:`distributed_bfs`.

    The schedule is identical (one round per BFS level; every vertex on the
    frontier sends to all of its neighbours) but no message objects are
    created, which keeps large sweeps fast.
    """
    graph = network.graph
    if root not in graph:
        raise SimulationError(f"BFS root {root} is not a vertex of {graph!r}")

    n = graph.num_vertices
    distances = np.full(n, UNREACHED, dtype=np.int64)
    parents = np.full(n, UNREACHED, dtype=np.int64)
    distances[root] = 0
    frontier = [root]
    depth = 0

    while frontier:
        if max_depth is not None and depth >= max_depth:
            break
        round_messages = 0
        announcements: dict[int, int] = {}
        for vertex in frontier:
            neighbors = graph.neighbors(vertex)
            round_messages += len(neighbors)
            for neighbor in neighbors:
                neighbor = int(neighbor)
                if distances[neighbor] == UNREACHED:
                    best = announcements.get(neighbor)
                    if best is None or vertex < best:
                        announcements[neighbor] = vertex
        network.charge_rounds(1)
        network.charge_messages(_KIND, round_messages)

        next_frontier: list[int] = []
        for receiver, parent in sorted(announcements.items()):
            distances[receiver] = depth + 1
            parents[receiver] = parent
            next_frontier.append(receiver)
        frontier = next_frontier
        depth += 1

    return BFSResult(root=root, distances=distances, parents=parents, max_depth=max_depth)
