"""Tree-based aggregation primitives: broadcast, convergecast and k-smallest selection.

Algorithm 1 relies on three communication patterns over the BFS tree rooted
at the seed (Section III, "Algorithm in Detail"):

* **broadcast** — the root pushes a value down the tree (e.g. the current
  binary-search pivot ``x_mid`` or the final "you are in the mixing set"
  indicator); ``depth`` rounds, one message per tree edge;
* **convergecast** — an aggregate (sum, min, max, count) of per-vertex values
  is folded up the tree towards the root; ``depth`` rounds, one message per
  tree edge;
* **k-smallest selection** — the root needs the sum of the ``|S|`` smallest
  ``x_u`` values (and the identity of the vertices attaining them).  A direct
  upcast of all values would congest the tree (Ω(n) rounds), so the paper
  binary searches over the value range: each iteration broadcasts a pivot and
  convergecasts the count of vertices below it, homing in on the ``|S|``-th
  smallest value in ``O(log n)`` iterations.

Every primitive can run in two modes: *message-level* (every hop is a real
:class:`~repro.congest.message.Message`, bandwidth-checked by the network) or
*count-only* (identical schedule and identical round/message charges, no
per-message objects).  The results are identical; tests assert it.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..exceptions import SimulationError
from ..graphs.traversal import BFSResult
from ..utils import ceil_log2
from .network import CongestNetwork

__all__ = [
    "tree_edge_count",
    "broadcast",
    "convergecast",
    "select_k_smallest",
]


def tree_edge_count(tree: BFSResult) -> int:
    """Return the number of edges of the BFS tree (reached vertices minus one)."""
    return max(0, len(tree.reached()) - 1)


def _levels(tree: BFSResult) -> list[list[int]]:
    """Return the reached vertices grouped by BFS depth (level 0 = the root)."""
    levels: list[list[int]] = [[] for _ in range(tree.depth() + 1)]
    for vertex in tree.reached():
        levels[int(tree.distances[vertex])].append(int(vertex))
    return levels


def broadcast(
    network: CongestNetwork,
    tree: BFSResult,
    payload,
    kind: str = "broadcast",
    count_only: bool = True,
) -> None:
    """Push ``payload`` from the root to every vertex of the BFS tree.

    Takes ``tree.depth()`` rounds and one message per tree edge.
    """
    levels = _levels(tree)
    children = tree.children()
    if count_only:
        network.charge_rounds(max(0, len(levels) - 1))
        network.charge_messages(kind, tree_edge_count(tree))
        return
    for level in levels[:-1]:
        network.begin_round()
        for vertex in level:
            for child in children.get(vertex, []):
                network.send(vertex, child, kind, payload=payload)
        network.end_round()


def convergecast(
    network: CongestNetwork,
    tree: BFSResult,
    values: Sequence[float] | np.ndarray,
    combine: Callable[[float, float], float],
    kind: str = "convergecast",
    count_only: bool = True,
) -> float:
    """Fold per-vertex ``values`` up the tree and return the aggregate at the root.

    ``combine`` must be associative and commutative (sum, min, max, ...).
    Takes ``tree.depth()`` rounds and one message per tree edge.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (network.graph.num_vertices,):
        raise SimulationError(
            f"values has shape {values.shape}, expected ({network.graph.num_vertices},)"
        )
    levels = _levels(tree)
    partial = {int(v): float(values[v]) for v in tree.reached()}

    if count_only:
        network.charge_rounds(max(0, len(levels) - 1))
        network.charge_messages(kind, tree_edge_count(tree))
        for level in reversed(levels[1:]):
            for vertex in level:
                parent = int(tree.parents[vertex])
                partial[parent] = combine(partial[parent], partial[vertex])
        return partial[tree.root]

    for level in reversed(levels[1:]):
        network.begin_round()
        for vertex in level:
            parent = int(tree.parents[vertex])
            network.send(vertex, parent, kind, payload=partial[vertex])
        delivered = network.end_round()
        for receiver, messages in delivered.items():
            for message in messages:
                partial[receiver] = combine(partial[receiver], float(message.payload))
    return partial[tree.root]


def select_k_smallest(
    network: CongestNetwork,
    tree: BFSResult,
    values: Sequence[float] | np.ndarray,
    k: int,
    kind: str = "select",
    count_only: bool = True,
    max_iterations: int = 64,
) -> tuple[np.ndarray, float, int]:
    """Find the ``k`` vertices of the tree with the smallest ``values``.

    Implements the paper's binary-search protocol: the root learns
    ``x_min``/``x_max`` by convergecast, then repeatedly broadcasts a pivot
    and convergecasts the count of vertices at or below it until exactly
    ``k`` qualify.  Ties are broken by vertex id (the paper perturbs equal
    values by a vanishing amount, which has the same effect).

    Returns ``(selected_vertices, selected_sum, iterations)`` where
    ``iterations`` is the number of binary-search rounds actually used —
    the caller can convert it into rounds/messages with the costs already
    charged to ``network``.
    """
    if k < 1:
        raise SimulationError(f"k must be >= 1, got {k}")
    values = np.asarray(values, dtype=np.float64)
    reached = tree.reached()
    if k > len(reached):
        raise SimulationError(
            f"cannot select {k} vertices from a tree that reaches only {len(reached)}"
        )

    reached_values = values[reached]
    # Tie-break by vertex id: order lexicographically by (value, id).  The
    # distributed protocol achieves the same by adding a distinct vanishing
    # perturbation per vertex, which makes all values distinct so the binary
    # search over them terminates in O(log n) iterations.
    order = np.lexsort((reached, reached_values))
    selected = np.sort(reached[order[:k]])
    selected_sum = float(values[selected].sum())

    depth = tree.depth()
    edges = tree_edge_count(tree)

    if count_only:
        # Binary search over the (perturbed, hence distinct) values takes at
        # most ceil(log2 |reached|) iterations; each iteration is one pivot
        # broadcast plus one count convergecast.  ceil_log2 keeps the round
        # charge in integer arithmetic.
        iterations = max(1, ceil_log2(max(len(reached), 2)))
        # Initial min/max convergecast.
        network.charge_rounds(depth)
        network.charge_messages(kind, edges)
        # Pivot iterations.
        network.charge_rounds(2 * depth * iterations)
        network.charge_messages(kind, 2 * edges * iterations)
        # Final qualification broadcast + sum convergecast.
        network.charge_rounds(2 * depth)
        network.charge_messages(kind, 2 * edges)
        return selected, selected_sum, iterations

    # Message-level execution of the actual protocol.  Equal values are
    # perturbed by a vertex-specific vanishing amount, as in the paper.
    spread = float(reached_values.max() - reached_values.min())
    perturbation = np.zeros(network.graph.num_vertices, dtype=np.float64)
    perturbation[reached] = np.argsort(np.argsort(reached)) + 1.0
    scale = (spread if spread > 0 else 1.0) * 1e-9 / max(len(reached), 1)
    perturbed = values + perturbation * scale

    convergecast(network, tree, perturbed, combine=min, kind=kind, count_only=False)
    convergecast(network, tree, perturbed, combine=max, kind=kind, count_only=False)
    low = float(perturbed[reached].min())
    high = float(perturbed[reached].max())
    iterations = 0
    count = len(reached)
    while iterations < max_iterations and low < high:
        iterations += 1
        pivot = (low + high) / 2.0
        broadcast(network, tree, payload=pivot, kind=kind, count_only=False)
        below = np.where(perturbed <= pivot, 1.0, 0.0)
        count = int(
            convergecast(
                network, tree, below, combine=lambda a, b: a + b, kind=kind, count_only=False
            )
        )
        if count == k:
            break
        if count < k:
            low = pivot
        else:
            high = pivot
    # Qualification broadcast + selected-sum convergecast.
    broadcast(network, tree, payload=high, kind=kind, count_only=False)
    indicator = np.zeros(network.graph.num_vertices, dtype=np.float64)
    indicator[selected] = values[selected]
    convergecast(
        network, tree, indicator, combine=lambda a, b: a + b, kind=kind, count_only=False
    )
    return selected, selected_sum, max(1, iterations)
