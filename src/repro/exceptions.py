"""Exception hierarchy for the ``repro`` library.

Every error deliberately raised by the library derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised for malformed graphs or invalid graph operations."""


class GeneratorError(ReproError):
    """Raised when random graph generator parameters are invalid."""


class PartitionError(ReproError):
    """Raised for inconsistent vertex partitions."""


class RandomWalkError(ReproError):
    """Raised for invalid random walk configurations or states."""


class MixingError(RandomWalkError):
    """Raised when a mixing-time or local-mixing computation cannot proceed."""


class AlgorithmError(ReproError):
    """Raised when a community detection algorithm is misconfigured."""


class ConvergenceError(AlgorithmError):
    """Raised when an iterative algorithm fails to converge within its budget."""


class SimulationError(ReproError):
    """Raised by the distributed-model simulators (CONGEST, k-machine)."""


class BandwidthExceededError(SimulationError):
    """Raised when a node attempts to exceed the per-edge bandwidth in a round."""


class MachineError(SimulationError):
    """Raised for invalid k-machine model configurations."""


class MetricError(ReproError):
    """Raised when an accuracy metric receives inconsistent inputs."""


class BackendError(ReproError):
    """Raised by the unified detection API (:mod:`repro.api`): unknown or
    duplicate backend names, and invalid run configurations."""


class ExperimentError(ReproError):
    """Raised when an experiment configuration is invalid."""
