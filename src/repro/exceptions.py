"""Exception hierarchy for the ``repro`` library.

Every error deliberately raised by the library derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised for malformed graphs or invalid graph operations."""


class GeneratorError(ReproError):
    """Raised when random graph generator parameters are invalid."""


class PartitionError(ReproError):
    """Raised for inconsistent vertex partitions."""


class RandomWalkError(ReproError):
    """Raised for invalid random walk configurations or states."""


class MixingError(RandomWalkError):
    """Raised when a mixing-time or local-mixing computation cannot proceed."""


class AlgorithmError(ReproError):
    """Raised when a community detection algorithm is misconfigured."""


class ConvergenceError(AlgorithmError):
    """Raised when an iterative algorithm fails to converge within its budget."""


class SimulationError(ReproError):
    """Raised by the distributed-model simulators (CONGEST, k-machine)."""


class BandwidthExceededError(SimulationError):
    """Raised when a node attempts to exceed the per-edge bandwidth in a round."""


class MachineError(SimulationError):
    """Raised for invalid k-machine model configurations."""


class MetricError(ReproError):
    """Raised when an accuracy metric receives inconsistent inputs."""


class BackendError(ReproError):
    """Raised by the unified detection API (:mod:`repro.api`): unknown or
    duplicate backend names, and invalid run configurations."""


class SessionBusyError(BackendError):
    """Raised when a :class:`~repro.session.DetectionSession` receives a
    second call while one is already in flight.  The session is
    one-call-at-a-time by contract; put a
    :class:`~repro.service.DetectionService` in front for concurrent
    callers."""


class ServiceError(ReproError):
    """Raised by the concurrent detection service (:mod:`repro.service`)
    and its wire protocol (:mod:`repro.service_net`)."""


class ServiceOverloadedError(ServiceError):
    """Raised when the service's bounded admission queue is full and a new
    request is rejected (backpressure)."""


class ServiceClosedError(ServiceError):
    """Raised when a request reaches a service that is closed or closing."""


class DeadlineExpiredError(ServiceError):
    """Raised when a request's deadline expires in the admission queue
    before its wave is formed."""


class ExperimentError(ReproError):
    """Raised when an experiment configuration is invalid."""
