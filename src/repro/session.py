"""Resident detection service: one graph, many ``detect()`` calls, no re-setup.

The one-shot :func:`repro.api.detect` facade rebuilds everything a call
needs from scratch: the process tier re-broadcasts the CSR arrays into
shared memory and forks a fresh worker pool, the thread tier rebuilds the
transition operator and the batched mixing-set search, and both re-resolve
the stopping parameter δ.  That is the right trade for a script that runs
once — and exactly the wrong one for the ROADMAP's north-star shape of a
resident service answering a stream of community queries against one big
social graph, where per-call setup dwarfs the per-call work.

:class:`DetectionSession` is that resident service, scoped to one graph:

* **One broadcast.**  The first process-tier call copies the CSR arrays
  into :class:`~repro.execution_process.SharedGraph` segments; every later
  call reuses them (``session_broadcasts`` in the report metadata stays at
  1).  The :class:`~repro.execution_process.ProcessGraphPool` persists
  across calls too — only the executor is rebuilt if the resolved worker
  count changes, never the broadcast.
* **Cached derived state.**  The thread tier caches the walk operator (per
  laziness flag), the :class:`~repro.core.mixing_set.BatchedMixingSetSearch`
  (per parameters/workers/dtype) and the resolved δ (per parameters/hint);
  the stationary distribution is computed at most once.  All of these are
  deterministic functions of the graph and the knobs, so reuse changes no
  float.
* **Request coalescing.**  :meth:`DetectionSession.detect_batch` folds many
  single-seed requests into one ``detect_community_batch`` shard wave —
  the batched kernels make width nearly free, and per-seed results are
  independent of batch composition, so the coalesced answers are identical
  to one-at-a-time calls.

Every session call routes through the same facade
(``detect(graph, session=...)`` or the :meth:`DetectionSession.detect`
convenience) and produces a full :class:`~repro.api.RunReport` whose
computed payload — detections, cost totals, artifacts — is **bit-identical**
to the session-free facade at every worker count on both executors
(``tests/test_session.py`` pins it).  The report's metadata additionally
carries ``session_calls`` / ``session_broadcasts`` / ``session_pool_reused``
and the cache-hit flags, so reuse is observable without instrumentation.

Usage::

    with DetectionSession(graph, config=RunConfig(executor="process")) as s:
        first = s.detect(seeds=[0, 1, 2])
        second = s.detect(seeds=[3, 4, 5])   # no new broadcast, same pool

The session serves **one call at a time** by contract: a second ``detect()``
arriving while one is in flight raises
:class:`~repro.exceptions.SessionBusyError` instead of silently racing the
caches.  Concurrent callers belong behind
:class:`repro.service.DetectionService`, which coalesces them into
``detect_batch`` waves on a single dispatcher thread.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable

import numpy as np
import scipy.sparse as sp

from .api import BackendOutcome, RunConfig, RunReport, _distribution_rows
from .core.parameters import CDRWParameters
from .core.result import DetectionResult
from .exceptions import AlgorithmError, BackendError, SessionBusyError
from .execution import EXECUTOR_PROCESS, resolve_executor, resolve_workers
from .graphs.graph import Graph

if TYPE_CHECKING:
    from .core.mixing_set import BatchedMixingSetSearch
    from .execution_process import ProcessGraphPool, SharedGraph

__all__ = ["DetectionSession"]


class DetectionSession:
    """A resident detection service for one graph.

    Parameters
    ----------
    graph:
        The graph every call of this session detects on.  The facade
        enforces identity (``graph is session.graph``): the broadcast and
        every cache are keyed to this exact object.
    config:
        Default :class:`~repro.api.RunConfig` for calls that do not pass
        their own (per-call configs and keyword overrides still work).
    params:
        Default :class:`~repro.core.parameters.CDRWParameters` for calls
        that do not pass their own.
    delta_hint:
        Default externally-known conductance for δ resolution.

    Use as a context manager (or call :meth:`close`) to release the worker
    pool and the shared-memory segments; the segments are additionally
    guarded by :class:`~repro.execution_process.SharedGraph`'s finalizer,
    so an abandoned session cannot leak them past interpreter exit.
    """

    def __init__(
        self,
        graph: Graph,
        config: RunConfig | None = None,
        params: CDRWParameters | None = None,
        delta_hint: float | None = None,
    ) -> None:
        if not isinstance(graph, Graph):
            raise BackendError(
                f"DetectionSession needs a Graph, got {type(graph).__name__}"
            )
        self.graph = graph
        self.config = config or RunConfig()
        self.params = params
        self.delta_hint = delta_hint
        # One-call-at-a-time contract: held for the duration of every
        # backend run; a concurrent caller gets SessionBusyError, never a
        # silent race on the caches below.
        self._busy = threading.Lock()
        # Cheap observable state lives under its own lock so ``closed`` /
        # ``calls`` / ``broadcasts`` never block behind an in-flight call
        # (the facade reads ``closed`` before dispatching; blocking there
        # would turn SessionBusyError into silent serialization).  Order
        # when nested: _busy, then _state_lock.
        self._state_lock = threading.Lock()
        self._closed = False  # repro: guarded-by(_state_lock)
        # Derived-state caches (thread tier; δ serves both tiers).
        self._operators: dict[bool, sp.csr_matrix] = {}  # repro: guarded-by(_busy)
        self._searches: dict[
            tuple[object, ...], BatchedMixingSetSearch
        ] = {}  # repro: guarded-by(_busy)
        self._deltas: dict[
            tuple[CDRWParameters, float | None], float
        ] = {}  # repro: guarded-by(_busy)
        self._stationary: np.ndarray | None = None  # repro: guarded-by(_busy)
        # Process-tier residents.
        self._shared: SharedGraph | None = None  # repro: guarded-by(_busy)
        self._pool: ProcessGraphPool | None = None  # repro: guarded-by(_busy)
        # Observability counters surfaced through report metadata.
        self._calls = 0  # repro: guarded-by(_state_lock)
        self._broadcasts = 0  # repro: guarded-by(_state_lock)

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        with self._state_lock:
            return self._closed

    @property
    def calls(self) -> int:
        """Number of detection calls served so far."""
        with self._state_lock:
            return self._calls

    @property
    def broadcasts(self) -> int:
        """Number of shared-memory graph broadcasts performed (0 or 1)."""
        with self._state_lock:
            return self._broadcasts

    def detect(
        self,
        seeds: Iterable[int] | None = None,
        backend: str = "batched",
        *,
        params: CDRWParameters | None = None,
        config: RunConfig | None = None,
        delta_hint: float | None = None,
        **overrides: object,
    ) -> RunReport:
        """Run one detection through the facade with this session resident.

        ``seeds`` is a convenience for the common service request shape
        (an explicit seed list); it becomes ``config.seeds``.  Everything
        else mirrors :func:`repro.api.detect` — omitted ``params`` /
        ``config`` / ``delta_hint`` fall back to the session defaults, and
        keyword ``overrides`` apply on top.
        """
        from .api import detect as _facade_detect

        if seeds is not None:
            overrides["seeds"] = tuple(int(s) for s in seeds)
        return _facade_detect(
            self.graph,
            backend=backend,
            params=params,
            config=config,
            delta_hint=delta_hint,
            session=self,
            **overrides,
        )

    def detect_batch(self, seeds: Iterable[int], **overrides: object) -> RunReport:
        """Coalesce many single-seed requests into one shard wave.

        Sets ``batch_size`` to the request width (unless overridden), so the
        whole list runs as one batched pass — on the process tier that is
        exactly ``workers`` shards.  Per-seed results are independent of
        batch composition (the PR 1/2 kernel contracts), so the answers are
        identical to ``len(seeds)`` one-at-a-time calls, at a fraction of
        the dispatch cost.

        The request is validated up front — empty, duplicated or
        out-of-range seeds raise before any pool work (no broadcast, no
        shard dispatch), so a malformed wave cannot cost a fork.
        Duplicates are rejected rather than silently re-run because a
        coalescing front end should fan one answer out to the duplicate
        requesters (:class:`repro.service.DetectionService` does exactly
        that).
        """
        seed_tuple = tuple(int(s) for s in seeds)
        if not seed_tuple:
            raise BackendError(
                "detect_batch needs at least one seed; got an empty seed iterable"
            )
        if len(set(seed_tuple)) != len(seed_tuple):
            seen: set[int] = set()
            duplicates = sorted(
                {s for s in seed_tuple if s in seen or bool(seen.add(s))}
            )
            raise BackendError(
                f"detect_batch seeds must be unique; duplicated seed "
                f"vertices: {duplicates} (coalesce duplicates and share the "
                f"answer instead of re-running them)"
            )
        for vertex in seed_tuple:
            if not 0 <= vertex < self.graph.num_vertices:
                raise AlgorithmError(
                    f"seed vertex {vertex} is not a vertex of {self.graph!r}"
                )
        overrides.setdefault("batch_size", max(1, len(seed_tuple)))
        return self.detect(seed_tuple, **overrides)

    @property
    def stationary_distribution(self) -> np.ndarray:
        """The graph's stationary distribution ``d(u) / 2|E|``, computed once.

        Takes the call slot (blocking): the cached array lives with the
        other ``_busy``-guarded derived state, and the computation is cheap
        enough that waiting out an in-flight call beats racing its caches.
        """
        with self._busy:
            if self._stationary is None:
                from .randomwalk.stationary import stationary_distribution

                self._stationary = stationary_distribution(self.graph)
            return self._stationary

    def close(self) -> None:
        """Release the worker pool, the broadcast segments and every cache.

        Waits out an in-flight call (blocking acquire of the call slot), so
        teardown can never race a backend run's cache accesses.
        """
        with self._busy:
            with self._state_lock:
                if self._closed:
                    return
                self._closed = True
            if self._pool is not None:
                self._pool.close()  # executor only: the session owns the broadcast
                self._pool = None
            if self._shared is not None:
                self._shared.close()
                self._shared = None
            self._operators.clear()
            self._searches.clear()
            self._deltas.clear()
            self._stationary = None

    def __enter__(self) -> "DetectionSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._state_lock:
            state = "closed" if self._closed else "open"
            calls = self._calls
            broadcasts = self._broadcasts
        return (
            f"DetectionSession({self.graph!r}, calls={calls}, "
            f"broadcasts={broadcasts}, {state})"
        )

    # ------------------------------------------------------------------
    # Derived-state caches
    # ------------------------------------------------------------------
    def _walk_operator(self, lazy: bool) -> tuple[sp.csr_matrix, bool]:  # repro: requires(_busy)
        """The batched walk's transition operator for ``lazy``, cached.

        Construction is a deterministic function of the graph, so the cached
        copy is the exact matrix a fresh call would build (same floats, same
        sparsity) — injecting it changes no result.
        """
        operator = self._operators.get(lazy)
        if operator is not None:
            return operator, True
        from .randomwalk.transition import (
            lazy_transition_matrix,
            reverse_transition_matrix,
        )

        if lazy:
            operator = lazy_transition_matrix(self.graph).T.tocsr()
        else:
            operator = reverse_transition_matrix(self.graph)
        self._operators[lazy] = operator
        return operator, False

    def _search(  # repro: requires(_busy)
        self, params: CDRWParameters, workers: int | None, dtype: str | np.dtype
    ) -> tuple[BatchedMixingSetSearch, bool]:
        """The batched mixing-set search for these knobs, cached.

        The search is stateless across calls (PR 2 contract); it is keyed by
        everything its construction reads — parameters, the resolved initial
        size, the resolved worker count and the scan dtype.
        """
        initial_size = params.resolve_initial_size(self.graph)
        key = (params, initial_size, resolve_workers(workers), str(np.dtype(dtype)))
        search = self._searches.get(key)
        if search is not None:
            return search, True
        from .core.mixing_set import BatchedMixingSetSearch

        search = BatchedMixingSetSearch.from_parameters(
            self.graph, params, initial_size, workers=workers, dtype=np.dtype(dtype)
        )
        self._searches[key] = search
        return search, False

    def _resolve_delta(  # repro: requires(_busy)
        self, params: CDRWParameters, delta_hint: float | None
    ) -> tuple[float, bool]:
        """δ for these knobs, resolved once per ``(params, hint)``.

        ``resolve_delta`` is idempotent on its own output (the process tier
        already relies on this to ship δ pre-resolved to workers), so
        feeding the cached value back through the kernels' own resolution
        reproduces it exactly — including the spectral estimate, which a
        fresh call would otherwise recompute per call.
        """
        key = (params, delta_hint)
        cached = self._deltas.get(key)
        if cached is not None:
            return cached, True
        resolved = params.resolve_delta(self.graph, delta_hint)
        self._deltas[key] = resolved
        return resolved, False

    # ------------------------------------------------------------------
    # Process-tier residents
    # ------------------------------------------------------------------
    def _ensure_pool(self, workers: int | None) -> tuple[ProcessGraphPool, bool]:  # repro: requires(_busy)
        """The persistent worker pool, broadcasting the graph at most once.

        A worker-count change rebuilds only the executor; the shared-memory
        segments survive (the pool is constructed with ``shared=`` and does
        not own them), so ``session_broadcasts`` never exceeds 1.
        """
        from .execution_process import ProcessGraphPool, SharedGraph

        if self._shared is None:
            self._shared = SharedGraph(self.graph)
            with self._state_lock:
                self._broadcasts += 1
        resolved = resolve_workers(workers)
        if self._pool is not None and self._pool.workers == resolved:
            return self._pool, True
        if self._pool is not None:
            self._pool.close()
        self._pool = ProcessGraphPool(self.graph, resolved, shared=self._shared)
        return self._pool, False

    # ------------------------------------------------------------------
    # Backend entry points (called by the api runners when session= is set)
    # ------------------------------------------------------------------
    def _session_extras(self, **flags: object) -> dict[str, object]:
        with self._state_lock:
            extras: dict[str, object] = {
                "session_calls": self._calls,
                "session_broadcasts": self._broadcasts,
            }
        extras.update(flags)
        return extras

    def _ensure_open(self) -> None:
        with self._state_lock:
            closed = self._closed
        if closed:
            raise BackendError("the detection session is closed")

    #: SessionBusyError text shared by both backend entry points.
    _BUSY_MESSAGE = (
        "DetectionSession serves one call at a time: another detect() "
        "is already in flight on this session. Serialize callers, or "
        "put a repro.service.DetectionService in front to coalesce "
        "concurrent requests into waves."
    )

    def _run_batched(
        self,
        params: CDRWParameters | None,
        config: RunConfig,
        delta_hint: float | None,
    ) -> BackendOutcome:
        """The ``"batched"`` backend with this session's residents.

        Mirrors :func:`repro.api._batched_runner` stage for stage — same
        validation, same trivial fast path, same sharding / batching — with
        the per-call setup replaced by cache lookups, so the computed
        payload is bit-identical to the one-shot facade.
        """
        if not self._busy.acquire(blocking=False):
            raise SessionBusyError(self._BUSY_MESSAGE)
        try:
            self._ensure_open()
            params = params or CDRWParameters()
            with self._state_lock:
                self._calls += 1
            executor = resolve_executor(config.executor)
            if executor == EXECUTOR_PROCESS:
                return self._run_batched_process(params, config, delta_hint)
            return self._run_batched_thread(params, config, delta_hint, executor)
        finally:
            self._busy.release()

    def _run_batched_thread(  # repro: requires(_busy)
        self,
        params: CDRWParameters,
        config: RunConfig,
        delta_hint: float | None,
        executor: str,
    ) -> BackendOutcome:
        from .core.batched import _detect_communities_batched_impl

        graph = self.graph
        trivial = graph.num_edges == 0 or graph.num_vertices == 0
        if trivial:
            # The impl's edgeless fast path never touches the operator, the
            # search or δ; building them here could even divide by zero on
            # an edgeless graph, exactly like a fresh call never does.
            operator, search = None, None
            operator_reused = search_reused = delta_reused = False
            hint = delta_hint
        else:
            operator, operator_reused = self._walk_operator(params.lazy_walk)
            search, search_reused = self._search(params, config.workers, config.dtype)
            hint, delta_reused = self._resolve_delta(params, delta_hint)
        result = _detect_communities_batched_impl(
            graph,
            params,
            hint,
            seed=config.seed,
            max_seeds=config.max_seeds,
            batch_size=config.batch_size,
            seeds=config.seeds,
            workers=config.workers,
            dtype=np.dtype(config.dtype),
            capture_distributions=config.capture_distributions,
            capture_history=config.capture_history,
            walk_operator=operator,
            search=search,
        )
        artifacts: dict[str, object] = {}
        finals = None
        if config.capture_distributions:
            detection, finals = result
            artifacts["final_distributions"] = _distribution_rows(finals)
        else:
            detection = result
        extras = self._session_extras(
            executor=executor,
            session_operator_reused=operator_reused,
            session_search_reused=search_reused,
            session_delta_reused=delta_reused,
        )
        return BackendOutcome(
            detection=detection, extras=extras, artifacts=artifacts, native=finals
        )

    def _run_batched_process(  # repro: requires(_busy)
        self, params: CDRWParameters, config: RunConfig, delta_hint: float | None
    ) -> BackendOutcome:
        from .execution_process import (
            _is_trivial,
            _pool_outcome,
            _run_batched_on_pool,
            _trivial_batched_outcome,
            _validate_batched_seeds,
        )

        graph = self.graph
        explicit = _validate_batched_seeds(
            graph, config.seeds, config.max_seeds, config.batch_size
        )
        if _is_trivial(graph, explicit, config.seeds is not None):
            outcome = _trivial_batched_outcome(
                graph,
                params,
                delta_hint,
                seed=config.seed,
                max_seeds=config.max_seeds,
                batch_size=config.batch_size,
                explicit=explicit,
                seeds_given=config.seeds is not None,
                dtype=config.dtype,
                capture_distributions=config.capture_distributions,
                capture_history=config.capture_history,
            )
            extras = self._session_extras(
                session_pool_reused=False, session_delta_reused=False
            )
        else:
            delta, delta_reused = self._resolve_delta(params, delta_hint)
            pool, pool_reused = self._ensure_pool(config.workers)
            mark = pool.mark()
            results, finals = _run_batched_on_pool(
                pool,
                graph,
                params,
                delta,
                explicit=explicit,
                seed=config.seed,
                max_seeds=config.max_seeds,
                batch_size=config.batch_size,
                capture_distributions=config.capture_distributions,
                dtype=config.dtype,
                capture_history=config.capture_history,
            )
            detection = DetectionResult(
                num_vertices=graph.num_vertices, communities=tuple(results)
            )
            outcome = _pool_outcome(pool, detection, finals, since=mark)
            extras = self._session_extras(
                session_pool_reused=pool_reused, session_delta_reused=delta_reused
            )
        artifacts: dict[str, object] = {}
        finals = None
        if config.capture_distributions and outcome.final_distributions is not None:
            finals = outcome.final_distributions
            artifacts["final_distributions"] = _distribution_rows(finals)
        extras = {**outcome.extras, **extras}
        return BackendOutcome(
            detection=outcome.detection,
            timings=dict(outcome.timings),
            extras=extras,
            artifacts=artifacts,
            native=finals,
        )

    def _run_parallel(
        self,
        params: CDRWParameters | None,
        config: RunConfig,
        delta_hint: float | None,
    ) -> BackendOutcome:
        """The ``"parallel"`` backend with this session's residents.

        Mirrors :func:`repro.api._parallel_runner` stage for stage: seed
        spreading and conflict resolution stay in the calling process with
        the exact one-shot draw sequence; only the setup is cached.
        """
        if not self._busy.acquire(blocking=False):
            raise SessionBusyError(self._BUSY_MESSAGE)
        try:
            self._ensure_open()
            params = params or CDRWParameters()
            with self._state_lock:
                self._calls += 1
            executor = resolve_executor(config.executor)
            if executor == EXECUTOR_PROCESS:
                return self._run_parallel_process(params, config, delta_hint)
            return self._run_parallel_thread(params, config, delta_hint, executor)
        finally:
            self._busy.release()

    def _run_parallel_thread(  # repro: requires(_busy)
        self,
        params: CDRWParameters,
        config: RunConfig,
        delta_hint: float | None,
        executor: str,
    ) -> BackendOutcome:
        from .core.parallel import _detect_communities_parallel_impl

        graph = self.graph
        if graph.num_edges == 0 or graph.num_vertices == 0:
            operator, search = None, None
            operator_reused = search_reused = delta_reused = False
            hint = delta_hint
        else:
            operator, operator_reused = self._walk_operator(params.lazy_walk)
            search, search_reused = self._search(params, config.workers, config.dtype)
            hint, delta_reused = self._resolve_delta(params, delta_hint)
        detection = _detect_communities_parallel_impl(
            graph,
            config.num_communities,
            params,
            hint,
            seed=config.seed,
            overlap_merge_threshold=config.overlap_merge_threshold,
            seed_min_distance=config.seed_min_distance,
            workers=config.workers,
            capture_history=config.capture_history,
            walk_operator=operator,
            search=search,
        )
        extras = self._session_extras(
            executor=executor,
            session_operator_reused=operator_reused,
            session_search_reused=search_reused,
            session_delta_reused=delta_reused,
        )
        return BackendOutcome(detection=detection, extras=extras)

    def _run_parallel_process(  # repro: requires(_busy)
        self, params: CDRWParameters, config: RunConfig, delta_hint: float | None
    ) -> BackendOutcome:
        from .core.batched import _detect_community_batch_impl
        from .core.parallel import _merge_and_resolve, select_spread_seeds
        from .execution_process import (
            _pool_outcome,
            _run_parallel_on_pool,
            _serial_outcome,
            _validate_parallel_args,
        )
        from .utils import as_rng

        graph = self.graph
        _validate_parallel_args(
            config.num_communities, config.overlap_merge_threshold
        )
        rng = as_rng(config.seed)
        spread = select_spread_seeds(
            graph,
            config.num_communities,
            min_distance=config.seed_min_distance,
            seed=rng,
        )
        if graph.num_edges == 0:
            raw_results, distributions = _detect_community_batch_impl(
                graph,
                spread,
                params,
                delta_hint,
                capture_distributions=True,
                workers=1,
                capture_history=config.capture_history,
            )
            resolved = _merge_and_resolve(
                list(raw_results), distributions, config.overlap_merge_threshold
            )
            detection = DetectionResult(
                num_vertices=graph.num_vertices, communities=tuple(resolved)
            )
            outcome = _serial_outcome(detection, None)
            extras = self._session_extras(
                session_pool_reused=False, session_delta_reused=False
            )
        else:
            delta, delta_reused = self._resolve_delta(params, delta_hint)
            pool, pool_reused = self._ensure_pool(config.workers)
            mark = pool.mark()
            detection = _run_parallel_on_pool(
                pool,
                graph,
                params,
                delta,
                spread,
                config.overlap_merge_threshold,
                capture_history=config.capture_history,
            )
            outcome = _pool_outcome(pool, detection, None, since=mark)
            extras = self._session_extras(
                session_pool_reused=pool_reused, session_delta_reused=delta_reused
            )
        return BackendOutcome(
            detection=outcome.detection,
            timings=dict(outcome.timings),
            extras={**outcome.extras, **extras},
        )
