"""Plain-text rendering of experiment tables.

The benchmark harness and the CLI print each reproduced figure as an aligned
text table (the closest analogue of the paper's plots that works in a
terminal and in ``bench_output.txt``).
"""

from __future__ import annotations

from .runner import ExperimentTable

__all__ = ["format_table", "render_experiment"]


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Return an aligned text table for the given headers and string rows."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6 or (0 < abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".") if "." in f"{value:.4f}" else f"{value:.4f}"
    return str(value)


def render_experiment(table: ExperimentTable) -> str:
    """Render an :class:`ExperimentTable` (title, description and aligned rows)."""
    parameter_names, measurement_names = table.columns()
    headers = parameter_names + measurement_names
    rows = []
    for row in table.rows:
        cells = [
            _format_value(row.parameters.get(name, "")) for name in parameter_names
        ] + [
            _format_value(row.measurements.get(name, float("nan")))
            for name in measurement_names
        ]
        rows.append(cells)
    body = format_table(headers, rows) if rows else "(no rows)"
    return f"== {table.name} ==\n{table.description}\n{body}"
