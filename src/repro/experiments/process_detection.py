"""Throughput scaling of the shared-memory process execution tier.

The process tier (:mod:`repro.execution_process`) shards the seed pool
across worker processes that attach one shared-memory CSR broadcast of the
graph — the step past the thread tier's GIL ceiling, mirroring the paper's
``k``-machine deployment in-process.  This experiment quantifies it: a
fixed seed set on one PPM instance, detected once on the serial in-process
path as the baseline, then re-detected on the process tier at increasing
worker counts — reporting seconds, speedup, accuracy, and a bit confirming
the detections are identical to the serial baseline (they always are — see
the determinism contract in :mod:`repro.execution_process`).
"""

from __future__ import annotations

import math

from ..api import RunConfig, detect
from ..core.parameters import CDRWParameters
from ..exceptions import ExperimentError
from ..graphs.generators import planted_partition_graph
from ..graphs.properties import ppm_expected_conductance
from ..metrics.scores import average_f_score
from ..utils import as_rng
from .runner import ExperimentTable

__all__ = ["process_detection_scaling"]


def process_detection_scaling(
    n: int = 1024,
    num_blocks: int = 4,
    num_seeds: int = 16,
    batch_size: int = 8,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    seed: int = 0,
    parameters: CDRWParameters | None = None,
) -> ExperimentTable:
    """Measure process-tier detection throughput on one PPM instance.

    Parameters
    ----------
    n, num_blocks:
        The PPM instance (paper-style ``p = 2 log²n / n`` within blocks).
    num_seeds:
        How many seed vertices are detected; the same seeds are reused for
        every row so the timings are directly comparable.
    batch_size:
        Batch width of both tiers (also the process tier's shard-width cap).
    worker_counts:
        Process counts to measure, one row per value next to the serial
        in-process baseline.
    """
    if num_seeds < 1:
        raise ExperimentError(f"num_seeds must be >= 1, got {num_seeds}")
    if not worker_counts:
        raise ExperimentError("worker_counts must not be empty")
    if any(count < 1 for count in worker_counts):
        raise ExperimentError(f"worker counts must be >= 1, got {worker_counts}")
    rng = as_rng(seed)
    p = min(1.0, 2.0 * math.log(n) ** 2 / n)
    q = 1.0 / n
    instance = planted_partition_graph(n, num_blocks, p, q, seed=rng)
    graph, truth = instance.graph, instance.partition
    delta = ppm_expected_conductance(n, num_blocks, p, q)
    seeds = [int(v) for v in rng.choice(n, size=min(num_seeds, n), replace=False)]

    table = ExperimentTable(
        name="process_detection_scaling",
        description=(
            f"Process-tier CDRW on PPM n={n}, r={num_blocks}: {len(seeds)} seeds, "
            f"serial batched path vs shared-memory worker processes"
        ),
    )

    baseline_report = detect(
        graph,
        backend="batched",
        params=parameters,
        delta_hint=delta,
        config=RunConfig(
            seeds=tuple(seeds), batch_size=batch_size, workers=1, executor="thread"
        ),
    )
    baseline = baseline_report.detection
    baseline_seconds = baseline_report.timings["total_seconds"]
    table.add_row(
        {"executor": "thread", "workers": 1},
        {
            "seconds": baseline_seconds,
            "speedup": 1.0,
            "f_score": average_f_score(baseline, truth),
            "identical": 1.0,
        },
    )
    for workers in worker_counts:
        report = detect(
            graph,
            backend="batched",
            params=parameters,
            delta_hint=delta,
            config=RunConfig(
                seeds=tuple(seeds),
                batch_size=batch_size,
                workers=int(workers),
                executor="process",
            ),
        )
        seconds = report.timings["total_seconds"]
        table.add_row(
            {"executor": "process", "workers": int(workers)},
            {
                "seconds": seconds,
                "speedup": baseline_seconds / seconds if seconds > 0 else float("inf"),
                "f_score": average_f_score(report.detection, truth),
                "identical": float(report.detection == baseline),
            },
        )
    return table
