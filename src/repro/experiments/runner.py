"""Trial running and aggregation for the experiment harness.

Every figure of the paper reports an accuracy value per parameter
combination; the harness re-runs each combination over several independently
generated graphs and aggregates the F-scores.  :class:`TrialAggregate`
carries the mean, standard deviation and raw values so benchmarks can print
either a single number (like the paper's plots) or the spread.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..exceptions import ExperimentError
from ..utils import spawn_rngs

__all__ = ["TrialAggregate", "run_trials", "run_timed", "ExperimentRow", "ExperimentTable"]


@dataclass(frozen=True)
class TrialAggregate:
    """Aggregate of a repeated measurement.

    Attributes
    ----------
    values:
        The raw per-trial values.
    """

    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        """Arithmetic mean of the trials (0 for an empty aggregate)."""
        return float(np.mean(self.values)) if self.values else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation of the trials."""
        return float(np.std(self.values)) if self.values else 0.0

    @property
    def minimum(self) -> float:
        """Smallest trial value."""
        return float(min(self.values)) if self.values else 0.0

    @property
    def maximum(self) -> float:
        """Largest trial value."""
        return float(max(self.values)) if self.values else 0.0

    def __len__(self) -> int:
        return len(self.values)


def run_trials(
    trial: Callable[[np.random.Generator], float],
    num_trials: int,
    seed: int | np.random.Generator | None = None,
) -> TrialAggregate:
    """Run ``trial`` with ``num_trials`` independent generators and aggregate.

    Each trial receives its own child generator spawned from ``seed`` so runs
    are reproducible yet independent.
    """
    if num_trials < 1:
        raise ExperimentError(f"num_trials must be >= 1, got {num_trials}")
    generators = spawn_rngs(seed, num_trials)
    values = []
    for generator in generators:
        value = float(trial(generator))
        if math.isnan(value):
            raise ExperimentError("a trial returned NaN")
        values.append(value)
    return TrialAggregate(values=tuple(values))


def run_timed(function: Callable, *args, **kwargs) -> tuple[object, float]:
    """Call ``function`` and return ``(result, elapsed_seconds)``.

    Wall-clock timing helper for throughput experiments (e.g. the batched
    multi-seed detection scaling table); uses ``time.perf_counter``.
    """
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


@dataclass(frozen=True)
class ExperimentRow:
    """One row of an experiment result table: parameters plus measured values."""

    parameters: dict[str, object]
    measurements: dict[str, float]


@dataclass
class ExperimentTable:
    """A labelled collection of :class:`ExperimentRow` (one figure or table)."""

    name: str
    description: str
    rows: list[ExperimentRow] = field(default_factory=list)

    def add_row(self, parameters: dict[str, object], measurements: dict[str, float]) -> None:
        """Append a row to the table."""
        self.rows.append(ExperimentRow(parameters=dict(parameters), measurements=dict(measurements)))

    def columns(self) -> tuple[list[str], list[str]]:
        """Return (parameter column names, measurement column names) in stable order."""
        parameter_names: list[str] = []
        measurement_names: list[str] = []
        for row in self.rows:
            for key in row.parameters:
                if key not in parameter_names:
                    parameter_names.append(key)
            for key in row.measurements:
                if key not in measurement_names:
                    measurement_names.append(key)
        return parameter_names, measurement_names

    def series(self, key: str) -> list[float]:
        """Return the measurement ``key`` across all rows (missing -> NaN)."""
        return [row.measurements.get(key, float("nan")) for row in self.rows]
