"""Throughput scaling of the parallel (multi-seed, shared-walk) detection path.

:func:`repro.core.parallel.detect_communities_parallel` runs all ``r`` seed
detections on one batched walk and resolves overlaps with the final walk
distributions.  This experiment quantifies the effect per seed count: for
each ``r`` it draws the same spread seeds the parallel path will draw, runs
the pre-port behaviour (one scalar :func:`~repro.core.cdrw.detect_community`
per seed) as the baseline, then times the batched parallel path, reporting
seconds, speedup, the number of surviving communities, whether the survivors
are pairwise disjoint (they always are — the conflict-resolution step
guarantees it), and accuracy against the planted partition.
"""

from __future__ import annotations

import math

from ..api import RunConfig, detect
from ..core.parallel import select_spread_seeds
from ..core.parameters import CDRWParameters
from ..exceptions import ExperimentError
from ..graphs.generators import planted_partition_graph
from ..graphs.properties import ppm_expected_conductance
from ..metrics.scores import average_f_score
from .runner import ExperimentTable

__all__ = ["parallel_detection_scaling"]


def parallel_detection_scaling(
    n: int = 1024,
    num_blocks: int = 4,
    seed_counts: tuple[int, ...] = (1, 2, 4),
    seed: int = 0,
    parameters: CDRWParameters | None = None,
    seed_min_distance: int = 2,
    workers: int | None = None,
    executor: str | None = None,
) -> ExperimentTable:
    """Measure parallel multi-seed detection throughput on one PPM instance.

    Parameters
    ----------
    n, num_blocks:
        The PPM instance (paper-style ``p = 2 log²n / n`` within blocks).
    seed_counts:
        The seed counts ``r`` to measure, one row per value; each row
        compares the scalar per-seed loop over the *same* spread seeds
        against the batched parallel path.
    workers:
        Worker count of the execution tier (``None`` → ``REPRO_WORKERS``
        env override, default serial); the detected communities are
        identical for every value, only the timings move.
    executor:
        Execution tier of the parallel rows: ``"thread"`` (default) or
        ``"process"`` (``None`` → ``REPRO_EXECUTOR`` env override); results
        are identical across tiers.
    """
    if not seed_counts:
        raise ExperimentError("seed_counts must not be empty")
    if any(r < 1 for r in seed_counts):
        raise ExperimentError(f"seed counts must be >= 1, got {seed_counts}")
    p = min(1.0, 2.0 * math.log(n) ** 2 / n)
    q = 1.0 / n
    instance = planted_partition_graph(n, num_blocks, p, q, seed=seed)
    graph, truth = instance.graph, instance.partition
    delta = ppm_expected_conductance(n, num_blocks, p, q)

    table = ExperimentTable(
        name="parallel_detection_scaling",
        description=(
            f"Parallel CDRW on PPM n={n}, blocks={num_blocks}: scalar per-seed "
            f"loop vs one shared batched walk with conflict resolution"
        ),
    )
    for count in seed_counts:
        count = int(count)
        # The parallel path re-derives the same spread seeds from the same
        # integer seed, so both rows walk from identical start vertices.
        spread = select_spread_seeds(
            graph, count, min_distance=seed_min_distance, seed=seed
        )
        scalar_report = detect(
            graph,
            backend="scalar",
            params=parameters,
            delta_hint=delta,
            config=RunConfig(seeds=tuple(spread)),
        )
        scalar_seconds = scalar_report.timings["total_seconds"]
        parallel_report = detect(
            graph,
            backend="parallel",
            params=parameters,
            delta_hint=delta,
            config=RunConfig(
                seed=seed,
                num_communities=count,
                seed_min_distance=seed_min_distance,
                workers=workers,
                executor=executor,
            ),
        )
        detection = parallel_report.detection
        parallel_seconds = parallel_report.timings["total_seconds"]
        communities = detection.detected_sets()
        disjoint = all(
            not (communities[i] & communities[j])
            for i in range(len(communities))
            for j in range(i + 1, len(communities))
        )
        table.add_row(
            {"r": count},
            {
                "scalar_seconds": scalar_seconds,
                "parallel_seconds": parallel_seconds,
                "speedup": (
                    scalar_seconds / parallel_seconds
                    if parallel_seconds > 0
                    else float("inf")
                ),
                "communities": float(detection.num_communities),
                "disjoint": float(disjoint),
                "f_score": average_f_score(detection, truth),
            },
        )
    return table
