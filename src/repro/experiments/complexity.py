"""Complexity experiments: CONGEST scaling (Theorems 5/6) and k-machine scaling.

These regenerate the paper's analytical claims as measurements:

* :func:`congest_scaling` sweeps the graph size ``n`` and reports the rounds
  and messages the CONGEST execution actually used for one community,
  alongside the ``log⁴ n`` / ``Õ((n²/r)(p+q(r−1)))`` bounds of Theorem 5.
  The measured/bound ratio should stay roughly flat as ``n`` grows.
* :func:`kmachine_scaling` fixes a graph and sweeps the number of machines
  ``k``, reporting the measured k-machine rounds, the Conversion-Theorem
  prediction ``M/k² + ΔT/k`` evaluated with the measured CONGEST ``M`` and
  ``T``, and the closed-form bound of Section III-B.  The measured rounds
  should fall between the ``k^{-1}`` and ``k^{-2}`` scaling curves.
"""

from __future__ import annotations

import numpy as np

from ..congest.cdrw_congest import detect_community_congest
from ..congest.complexity import (
    message_bound_single_community,
    round_bound_single_community,
)
from ..core.parameters import CDRWParameters
from ..exceptions import ExperimentError
from ..graphs.generators import planted_partition_graph
from ..graphs.properties import ppm_expected_conductance
from ..kmachine.cdrw_kmachine import detect_community_kmachine
from ..kmachine.conversion import cdrw_kmachine_round_bound, conversion_theorem_rounds
from ..kmachine.partition import RandomVertexPartition
from .parameters import PROBABILITY_SPECS
from .runner import ExperimentTable

__all__ = ["congest_scaling", "kmachine_scaling"]

#: Default graph sizes for the CONGEST scaling experiment.
CONGEST_SIZES: tuple[int, ...] = (128, 256, 512, 1024)
#: Default machine counts for the k-machine scaling experiment.
KMACHINE_COUNTS: tuple[int, ...] = (2, 4, 8, 16, 32)


def congest_scaling(
    sizes: tuple[int, ...] = CONGEST_SIZES,
    num_blocks: int = 2,
    p_spec: str = "2log2n/n",
    q_spec: str = "0.6/n",
    seed: int = 0,
    parameters: CDRWParameters | None = None,
) -> ExperimentTable:
    """Measure CONGEST rounds/messages for one community across graph sizes."""
    if num_blocks < 1:
        raise ExperimentError(f"num_blocks must be >= 1, got {num_blocks}")
    p_rule = PROBABILITY_SPECS[p_spec]
    q_rule = PROBABILITY_SPECS[q_spec]
    table = ExperimentTable(
        name="congest_scaling",
        description=(
            "Measured CONGEST complexity of detecting one community vs the "
            "Theorem 5 bounds"
        ),
    )
    for n in sizes:
        p = p_rule(n)
        q = q_rule(n)
        ppm = planted_partition_graph(n, num_blocks, p, q, seed=seed)
        delta = ppm_expected_conductance(n, num_blocks, p, q)
        rng = np.random.default_rng(seed)
        seed_vertex = int(rng.integers(n))
        outcome = detect_community_congest(
            ppm.graph, seed_vertex, parameters, delta_hint=delta, count_only=True
        )
        round_bound = round_bound_single_community(n)
        message_bound = message_bound_single_community(n, num_blocks, p, q)
        table.add_row(
            parameters={"n": n, "r": num_blocks, "p": p_rule.label, "q": q_rule.label},
            measurements={
                "rounds": float(outcome.cost.rounds),
                "messages": float(outcome.cost.messages),
                "round_bound_log4n": round_bound,
                "message_bound": message_bound,
                "rounds_over_bound": outcome.cost.rounds / round_bound,
                "messages_over_bound": outcome.cost.messages / message_bound,
                "community_size": float(outcome.community.size),
                "bfs_depth": float(outcome.bfs_depth),
            },
        )
    return table


def kmachine_scaling(
    n: int = 1024,
    num_blocks: int = 2,
    p_spec: str = "2log2n/n",
    q_spec: str = "0.6/n",
    machine_counts: tuple[int, ...] = KMACHINE_COUNTS,
    seed: int = 0,
    parameters: CDRWParameters | None = None,
) -> ExperimentTable:
    """Measure k-machine rounds for one community across machine counts.

    The same graph, seed vertex and algorithm parameters are reused for every
    ``k`` so the only thing changing is the machine count, isolating the
    ``k^{-1}`` / ``k^{-2}`` scaling the paper derives in Section III-B.
    """
    p_rule = PROBABILITY_SPECS[p_spec]
    q_rule = PROBABILITY_SPECS[q_spec]
    p = p_rule(n)
    q = q_rule(n)
    ppm = planted_partition_graph(n, num_blocks, p, q, seed=seed)
    delta = ppm_expected_conductance(n, num_blocks, p, q)
    rng = np.random.default_rng(seed)
    seed_vertex = int(rng.integers(n))

    # CONGEST reference run: its measured M and T feed the Conversion Theorem.
    congest_outcome = detect_community_congest(
        ppm.graph, seed_vertex, parameters, delta_hint=delta, count_only=True
    )
    congest_messages = congest_outcome.cost.messages
    congest_rounds = congest_outcome.cost.rounds
    max_degree = ppm.graph.max_degree()

    table = ExperimentTable(
        name="kmachine_scaling",
        description=(
            "Measured k-machine rounds for one community vs the Conversion "
            "Theorem prediction and the closed-form bound of Section III-B"
        ),
    )
    for k in machine_counts:
        if k < 1:
            raise ExperimentError(f"machine counts must be >= 1, got {k}")
        partition = RandomVertexPartition(n, k, method="hash", seed=seed)
        outcome = detect_community_kmachine(
            ppm.graph,
            seed_vertex,
            k,
            parameters,
            delta_hint=delta,
            partition=partition,
        )
        predicted = conversion_theorem_rounds(
            congest_messages, congest_rounds, max_degree, k
        )
        bound = cdrw_kmachine_round_bound(n, num_blocks, p, q, k)
        table.add_row(
            parameters={"k": k, "n": n, "r": num_blocks, "p": p_rule.label, "q": q_rule.label},
            measurements={
                "rounds": float(outcome.cost.rounds),
                "inter_machine_messages": float(outcome.cost.inter_machine_messages),
                "local_messages": float(outcome.cost.local_messages),
                "conversion_prediction": predicted,
                "closed_form_bound": bound,
                "congest_rounds": float(congest_rounds),
                "congest_messages": float(congest_messages),
            },
        )
    return table
