"""Throughput of the coalescing detection service vs serialized session calls.

The "millions of users" shape is many independent clients each asking for
one seed's community.  A resident :class:`~repro.session.DetectionSession`
answers them correctly but one at a time — each request pays a full
single-seed batched pass.  :class:`~repro.service.DetectionService`
admits the same requests concurrently and coalesces whatever is pending
into one ``detect_batch`` wave, where the batched kernels make width
nearly free.  This experiment quantifies that: a fixed stream of
single-seed requests on one PPM instance, answered once by a serialized
session loop and once per concurrency level through the service —
reporting seconds, speedup, how many waves the stream collapsed into,
the coalescing ratio, and a bit confirming every service reply is
identical to its serialized counterpart (they always are — wave slicing
is exact by the batch-independence kernel contracts).
"""

from __future__ import annotations

import math
import threading
import time

from ..api import RunConfig, RunReport
from ..core.parameters import CDRWParameters
from ..exceptions import ExperimentError
from ..graphs.generators import planted_partition_graph
from ..graphs.properties import ppm_expected_conductance
from ..service import DetectionService
from ..session import DetectionSession
from ..utils import as_rng
from .runner import ExperimentTable

__all__ = ["service_throughput"]


def _run_client(
    service: DetectionService,
    seeds: tuple[int, ...],
    barrier: threading.Barrier,
    replies: dict[int, RunReport],
    lock: threading.Lock,
) -> None:
    """One client: submit a slice of the stream, collect the replies."""
    barrier.wait()
    futures = [(vertex, service.submit(vertex)) for vertex in seeds]
    for vertex, future in futures:
        report = future.result(timeout=600)
        with lock:
            replies[vertex] = report


def service_throughput(
    n: int = 1024,
    num_blocks: int = 4,
    requests: int = 16,
    concurrency: tuple[int, ...] = (1, 4, 16),
    workers: int | None = None,
    executor: str | None = None,
    seed: int = 0,
    parameters: CDRWParameters | None = None,
) -> ExperimentTable:
    """Measure a single-seed request stream: serialized session vs service.

    Parameters
    ----------
    n, num_blocks:
        The PPM instance (paper-style ``p = 2 log²n / n`` within blocks).
    requests:
        Distinct single-seed requests in the stream (capped at ``n``).
    concurrency:
        Client counts to measure; each level runs the same stream through
        a fresh service with that many submitting threads.
    workers, executor:
        Execution-tier knobs shared by every path (``None`` defers to the
        ``REPRO_WORKERS`` / ``REPRO_EXECUTOR`` environment overrides).
    """
    if requests < 1:
        raise ExperimentError(f"requests must be >= 1, got {requests}")
    if not concurrency or any(clients < 1 for clients in concurrency):
        raise ExperimentError(
            f"concurrency needs positive client counts, got {concurrency!r}"
        )
    rng = as_rng(seed)
    p = min(1.0, 2.0 * math.log(n) ** 2 / n)
    q = 1.0 / n
    instance = planted_partition_graph(n, num_blocks, p, q, seed=rng)
    graph = instance.graph
    delta = ppm_expected_conductance(n, num_blocks, p, q)
    stream = tuple(
        int(v) for v in rng.choice(n, size=min(requests, n), replace=False)
    )
    config = RunConfig(workers=workers, executor=executor)

    table = ExperimentTable(
        name="service_throughput",
        description=(
            f"Coalescing service vs serialized session on PPM n={n}, "
            f"r={num_blocks}: {len(stream)} single-seed requests"
        ),
    )

    start = time.perf_counter()
    with DetectionSession(
        graph, config=config, params=parameters, delta_hint=delta
    ) as session:
        serialized = {
            vertex: session.detect(seeds=(vertex,)) for vertex in stream
        }
    serialized_seconds = time.perf_counter() - start
    table.add_row(
        {"mode": "serialized", "requests": len(stream)},
        {
            "seconds": serialized_seconds,
            "speedup": 1.0,
            "waves": float(len(stream)),
            "coalescing_ratio": 1.0,
            "identical": 1.0,
        },
    )

    for clients in concurrency:
        shards = [stream[index::clients] for index in range(clients)]
        shards = [shard for shard in shards if shard]
        replies: dict[int, RunReport] = {}
        lock = threading.Lock()
        barrier = threading.Barrier(len(shards))
        start = time.perf_counter()
        with DetectionService(
            graph, config=config, params=parameters, delta_hint=delta
        ) as service:
            threads = [
                threading.Thread(
                    target=_run_client,
                    args=(service, shard, barrier, replies, lock),
                )
                for shard in shards
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            metrics = service.metrics()
        seconds = time.perf_counter() - start
        identical = all(
            replies[vertex].detection == serialized[vertex].detection
            for vertex in stream
        )
        waves = int(metrics["waves"])  # type: ignore[arg-type]
        table.add_row(
            {"mode": f"service x{clients}", "requests": len(stream)},
            {
                "seconds": seconds,
                "speedup": (
                    serialized_seconds / seconds if seconds > 0 else float("inf")
                ),
                "waves": float(waves),
                "coalescing_ratio": float(metrics["coalescing_ratio"]),  # type: ignore[arg-type]
                "identical": float(identical),
            },
        )
    return table
