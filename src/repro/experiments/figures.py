"""Reproduction of every figure of the paper's evaluation section.

Each function regenerates the data behind one figure:

* :func:`figure1_stats`      — the illustrative PPM instance of Figure 1
  (n=1000, r=5, p=1/20, q=1/1000): intra/inter edge statistics and block
  conductance (the paper shows a drawing; we report the numbers behind it);
* :func:`figure2_grid`       — CDRW accuracy on pure ``G(n, p)`` graphs as a
  function of ``n`` for the sparse and dense probability rules;
* :func:`figure3_grid`       — CDRW accuracy on two-block PPM graphs
  (``n = 2¹¹``) for every combination of the paper's ``p`` and ``q`` rules;
* :func:`figure4a_grid`      — accuracy vs number of blocks ``r`` with the
  community size fixed at ``2¹⁰`` (``n = r·2¹⁰``);
* :func:`figure4b_grid`      — accuracy vs ``r`` with the total size fixed at
  ``n = 8·2¹⁰``.

Every function returns an :class:`~repro.experiments.runner.ExperimentTable`
whose rows carry the F-score aggregate over independent trials; the benchmark
harness prints them as text tables next to the values the paper reports.
"""

from __future__ import annotations

import numpy as np

from ..core.cdrw import detect_communities
from ..core.parameters import CDRWParameters
from ..exceptions import ExperimentError
from ..graphs.generators import gnp_random_graph, planted_partition_graph
from ..graphs.partition import Partition
from ..graphs.properties import (
    conductance,
    ppm_expected_conductance,
    ppm_expected_inter_edges,
    ppm_expected_intra_edges,
)
from ..metrics.scores import average_f_score
from .parameters import PROBABILITY_SPECS, RATIO_SPECS, ProbabilitySpec, RatioSpec
from .runner import ExperimentTable, run_trials

__all__ = [
    "figure1_stats",
    "figure2_grid",
    "figure3_grid",
    "figure4a_grid",
    "figure4b_grid",
    "cdrw_f_score_on_gnp",
    "cdrw_f_score_on_ppm",
]

#: Graph sizes of Figure 2 (powers of two from 2^7 to 2^12).
FIGURE2_SIZES: tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096)
#: Probability rules plotted in Figure 2.
FIGURE2_P_SPECS: tuple[str, ...] = ("2logn/n", "2log2n/n")
#: Graph size of Figure 3 (n = 2^11, two blocks of 2^10).
FIGURE3_SIZE: int = 2048
#: Probability rules on the x-axis of Figure 3.
FIGURE3_P_SPECS: tuple[str, ...] = ("2logn/n", "2log2n/n", "log2n/n")
#: q rules (one curve each) of Figure 3.
FIGURE3_Q_SPECS: tuple[str, ...] = ("0.1/n", "0.6/n", "logn/n", "log2n/n")
#: Block counts of Figure 4.
FIGURE4_BLOCK_COUNTS: tuple[int, ...] = (2, 4, 8)
#: p/q ratio rules (one curve each) of Figure 4.
FIGURE4_RATIO_SPECS: tuple[str, ...] = (
    "0.2log2^2(n)",
    "1.2log2^2(n)",
    "0.2log2(n)",
    "1.2log2(n)",
)
#: Community size of Figure 4a / total size of Figure 4b.
FIGURE4_COMMUNITY_SIZE: int = 1024


def _resolve_probability(spec: str | ProbabilitySpec) -> ProbabilitySpec:
    if isinstance(spec, ProbabilitySpec):
        return spec
    try:
        return PROBABILITY_SPECS[spec]
    except KeyError as error:
        raise ExperimentError(
            f"unknown probability spec {spec!r}; known: {sorted(PROBABILITY_SPECS)}"
        ) from error


def _resolve_ratio(spec: str | RatioSpec) -> RatioSpec:
    if isinstance(spec, RatioSpec):
        return spec
    try:
        return RATIO_SPECS[spec]
    except KeyError as error:
        raise ExperimentError(
            f"unknown ratio spec {spec!r}; known: {sorted(RATIO_SPECS)}"
        ) from error


# ----------------------------------------------------------------------
# Single-trial building blocks
# ----------------------------------------------------------------------
def cdrw_f_score_on_gnp(
    n: int,
    p: float,
    rng: np.random.Generator,
    parameters: CDRWParameters | None = None,
) -> float:
    """Generate one ``G(n, p)`` graph, run CDRW and return the F-score.

    The ground truth is the whole vertex set as a single community (the
    ``r = 1`` special case of Section IV).
    """
    graph = gnp_random_graph(n, p, seed=rng)
    detection = detect_communities(graph, parameters, delta_hint=0.0, seed=rng)
    truth = Partition.single_community(n)
    return average_f_score(detection, truth)


def cdrw_f_score_on_ppm(
    n: int,
    num_blocks: int,
    p: float,
    q: float,
    rng: np.random.Generator,
    parameters: CDRWParameters | None = None,
) -> float:
    """Generate one PPM graph, run CDRW and return the F-score."""
    ppm = planted_partition_graph(n, num_blocks, p, q, seed=rng)
    delta = ppm_expected_conductance(n, num_blocks, p, q)
    detection = detect_communities(ppm.graph, parameters, delta_hint=delta, seed=rng)
    return average_f_score(detection, ppm.partition)


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------
def figure1_stats(
    n: int = 1000,
    num_blocks: int = 5,
    p: float = 1.0 / 20.0,
    q: float = 1.0 / 1000.0,
    seed: int | None = 0,
) -> ExperimentTable:
    """Regenerate the PPM instance of Figure 1 and report its structure.

    The paper draws the graph twice (with and without ground-truth colours);
    the quantitative content is the community structure itself, which we
    report as per-block intra/inter edge counts against their expectations.
    """
    ppm = planted_partition_graph(n, num_blocks, p, q, seed=seed)
    table = ExperimentTable(
        name="figure1",
        description=(
            "Structure of the illustrative PPM instance of Figure 1 "
            f"(n={n}, r={num_blocks}, p={p}, q={q})"
        ),
    )
    expected_intra = ppm_expected_intra_edges(n, num_blocks, p)
    expected_inter = ppm_expected_inter_edges(n, num_blocks, q)
    for block_id, block in enumerate(ppm.partition.communities()):
        intra = ppm.graph.induced_edge_count(block)
        cut = ppm.graph.cut_size(block)
        table.add_row(
            parameters={"block": block_id, "size": len(block)},
            measurements={
                "intra_edges": float(intra),
                "expected_intra_edges": expected_intra,
                "inter_edges": float(cut),
                "expected_inter_edges": expected_inter,
                "conductance": conductance(ppm.graph, block),
                "expected_conductance": ppm_expected_conductance(n, num_blocks, p, q),
            },
        )
    return table


# ----------------------------------------------------------------------
# Figure 2
# ----------------------------------------------------------------------
def figure2_grid(
    sizes: tuple[int, ...] = FIGURE2_SIZES,
    p_specs: tuple[str, ...] = FIGURE2_P_SPECS,
    trials: int = 3,
    seed: int | None = 0,
    parameters: CDRWParameters | None = None,
) -> ExperimentTable:
    """CDRW accuracy on ``G(n, p)`` (single community) across sizes and densities."""
    table = ExperimentTable(
        name="figure2",
        description="F-score of CDRW on G(n, p) random graphs (single community)",
    )
    for spec_name in p_specs:
        spec = _resolve_probability(spec_name)
        for n in sizes:
            p = spec(n)
            aggregate = run_trials(
                lambda rng, n=n, p=p: cdrw_f_score_on_gnp(n, p, rng, parameters),
                num_trials=trials,
                seed=_derive_seed(seed, spec.label, n),
            )
            table.add_row(
                parameters={"n": n, "p": spec.label},
                measurements={
                    "f_score": aggregate.mean,
                    "f_score_std": aggregate.std,
                    "p_value": p,
                },
            )
    return table


# ----------------------------------------------------------------------
# Figure 3
# ----------------------------------------------------------------------
def figure3_grid(
    n: int = FIGURE3_SIZE,
    p_specs: tuple[str, ...] = FIGURE3_P_SPECS,
    q_specs: tuple[str, ...] = FIGURE3_Q_SPECS,
    trials: int = 3,
    seed: int | None = 0,
    parameters: CDRWParameters | None = None,
) -> ExperimentTable:
    """CDRW accuracy on two-block PPM graphs for every (p, q) rule combination."""
    table = ExperimentTable(
        name="figure3",
        description=f"F-score of CDRW on PPM graphs with r=2 and n={n}",
    )
    for q_name in q_specs:
        q_spec = _resolve_probability(q_name)
        for p_name in p_specs:
            p_spec = _resolve_probability(p_name)
            p = p_spec(n)
            q = q_spec(n)
            aggregate = run_trials(
                lambda rng, p=p, q=q: cdrw_f_score_on_ppm(n, 2, p, q, rng, parameters),
                num_trials=trials,
                seed=_derive_seed(seed, p_spec.label, q_spec.label),
            )
            table.add_row(
                parameters={"p": p_spec.label, "q": q_spec.label},
                measurements={
                    "f_score": aggregate.mean,
                    "f_score_std": aggregate.std,
                    "p_value": p,
                    "q_value": q,
                    "p_over_q": p / q if q > 0 else float("inf"),
                },
            )
    return table


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------
def figure4a_grid(
    block_counts: tuple[int, ...] = FIGURE4_BLOCK_COUNTS,
    community_size: int = FIGURE4_COMMUNITY_SIZE,
    ratio_specs: tuple[str, ...] = FIGURE4_RATIO_SPECS,
    p_spec: str = "2log2n/n",
    trials: int = 3,
    seed: int | None = 0,
    parameters: CDRWParameters | None = None,
) -> ExperimentTable:
    """Accuracy vs number of blocks with the community size fixed (n = r · 2¹⁰)."""
    return _figure4_grid(
        name="figure4a",
        description="F-score of CDRW vs r with fixed community size (Figure 4a)",
        sizes={r: r * community_size for r in block_counts},
        block_counts=block_counts,
        ratio_specs=ratio_specs,
        p_spec=p_spec,
        trials=trials,
        seed=seed,
        parameters=parameters,
    )


def figure4b_grid(
    block_counts: tuple[int, ...] = FIGURE4_BLOCK_COUNTS,
    total_size: int = 8 * FIGURE4_COMMUNITY_SIZE,
    ratio_specs: tuple[str, ...] = FIGURE4_RATIO_SPECS,
    p_spec: str = "2log2n/n",
    trials: int = 3,
    seed: int | None = 0,
    parameters: CDRWParameters | None = None,
) -> ExperimentTable:
    """Accuracy vs number of blocks with the total graph size fixed (n = 8 · 2¹⁰)."""
    return _figure4_grid(
        name="figure4b",
        description="F-score of CDRW vs r with fixed total size (Figure 4b)",
        sizes={r: total_size for r in block_counts},
        block_counts=block_counts,
        ratio_specs=ratio_specs,
        p_spec=p_spec,
        trials=trials,
        seed=seed,
        parameters=parameters,
    )


def _figure4_grid(
    name: str,
    description: str,
    sizes: dict[int, int],
    block_counts: tuple[int, ...],
    ratio_specs: tuple[str, ...],
    p_spec: str,
    trials: int,
    seed: int | None,
    parameters: CDRWParameters | None,
) -> ExperimentTable:
    table = ExperimentTable(name=name, description=description)
    probability = _resolve_probability(p_spec)
    for ratio_name in ratio_specs:
        ratio_spec = _resolve_ratio(ratio_name)
        for r in block_counts:
            n = sizes[r]
            if n % r != 0:
                raise ExperimentError(f"n={n} is not divisible by r={r}")
            p = probability(n)
            ratio = ratio_spec(n)
            q = min(1.0, p / ratio)
            aggregate = run_trials(
                lambda rng, n=n, r=r, p=p, q=q: cdrw_f_score_on_ppm(n, r, p, q, rng, parameters),
                num_trials=trials,
                seed=_derive_seed(seed, ratio_spec.label, r),
            )
            table.add_row(
                parameters={"r": r, "n": n, "p": probability.label, "p_over_q": ratio_spec.label},
                measurements={
                    "f_score": aggregate.mean,
                    "f_score_std": aggregate.std,
                    "p_value": p,
                    "q_value": q,
                },
            )
    return table


def _derive_seed(seed: int | None, *components) -> int | None:
    """Derive a deterministic per-cell seed from the experiment seed and labels."""
    if seed is None:
        return None
    digest = 0
    for component in components:
        digest = (digest * 1_000_003 + hash(str(component))) & 0x7FFFFFFF
    return (int(seed) * 2_654_435_761 + digest) & 0x7FFFFFFF
