"""Throughput scaling of the batched multi-seed CDRW path.

The batched executor (:mod:`repro.core.batched`) detects several seed
communities on top of one shared sparse-matrix–matrix walk advance.  This
experiment quantifies the wall-clock effect: it draws a fixed set of seed
vertices on a PPM instance, runs the scalar per-seed loop once as the
baseline, then re-detects the *same* seeds at increasing batch widths,
reporting seconds, speedup over the scalar loop, accuracy against the
planted partition, and a bit confirming the batched results are identical
to the scalar ones (they always are — the batched walk columns are
bit-identical to scalar walks).
"""

from __future__ import annotations

import math

from ..api import RunConfig, detect
from ..core.parameters import CDRWParameters
from ..exceptions import ExperimentError
from ..graphs.generators import planted_partition_graph
from ..graphs.properties import ppm_expected_conductance
from ..metrics.scores import average_f_score
from ..utils import as_rng
from .runner import ExperimentTable

__all__ = ["batched_detection_scaling"]


def batched_detection_scaling(
    n: int = 1024,
    num_blocks: int = 4,
    num_seeds: int = 16,
    batch_sizes: tuple[int, ...] = (1, 4, 16),
    seed: int = 0,
    parameters: CDRWParameters | None = None,
    workers: int | None = None,
    executor: str | None = None,
) -> ExperimentTable:
    """Measure batched multi-seed detection throughput on one PPM instance.

    Parameters
    ----------
    n, num_blocks:
        The PPM instance (paper-style ``p = 2 log²n / n`` within blocks).
    num_seeds:
        How many seed vertices are detected; the same seeds are reused for
        every row so the timings are directly comparable.
    batch_sizes:
        Batch widths to measure, each as one row next to the scalar baseline.
    workers:
        Worker count of the execution tier (``None`` → ``REPRO_WORKERS``
        env override, default serial); the detected communities are
        identical for every value, only the timings move.
    executor:
        Execution tier of the batched rows: ``"thread"`` (default) or
        ``"process"`` (``None`` → ``REPRO_EXECUTOR`` env override); results
        are identical across tiers.
    """
    if num_seeds < 1:
        raise ExperimentError(f"num_seeds must be >= 1, got {num_seeds}")
    if not batch_sizes:
        raise ExperimentError("batch_sizes must not be empty")
    rng = as_rng(seed)
    p = min(1.0, 2.0 * math.log(n) ** 2 / n)
    q = 1.0 / n
    instance = planted_partition_graph(n, num_blocks, p, q, seed=rng)
    graph, truth = instance.graph, instance.partition
    delta = ppm_expected_conductance(n, num_blocks, p, q)
    seeds = [int(v) for v in rng.choice(n, size=min(num_seeds, n), replace=False)]

    table = ExperimentTable(
        name="batched_detection_scaling",
        description=(
            f"Multi-seed CDRW throughput on PPM n={n}, r={num_blocks}: "
            f"{len(seeds)} seeds, scalar loop vs batched walk advance"
        ),
    )

    # Both rows run through the unified facade: the scalar baseline is the
    # "scalar" backend over the explicit seed list, each batched row the
    # "batched" backend over the same list; the facade's wall-clock timing
    # is what the table reports.
    baseline_report = detect(
        graph,
        backend="scalar",
        params=parameters,
        delta_hint=delta,
        config=RunConfig(seeds=tuple(seeds)),
    )
    baseline = baseline_report.detection
    baseline_seconds = baseline_report.timings["total_seconds"]
    table.add_row(
        {"path": "scalar", "batch_size": 1},
        {
            "seconds": baseline_seconds,
            "speedup": 1.0,
            "f_score": average_f_score(baseline, truth),
            "identical": 1.0,
        },
    )
    for batch_size in batch_sizes:
        report = detect(
            graph,
            backend="batched",
            params=parameters,
            delta_hint=delta,
            config=RunConfig(
                seeds=tuple(seeds),
                batch_size=int(batch_size),
                workers=workers,
                executor=executor,
            ),
        )
        detection = report.detection
        seconds = report.timings["total_seconds"]
        table.add_row(
            {"path": "batched", "batch_size": int(batch_size)},
            {
                "seconds": seconds,
                "speedup": baseline_seconds / seconds if seconds > 0 else float("inf"),
                "f_score": average_f_score(detection, truth),
                "identical": float(detection == baseline),
            },
        )
    return table
