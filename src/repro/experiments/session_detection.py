"""Throughput of the resident detection session vs per-call setup.

The resident service shape of the ROADMAP north star — one big graph, a
stream of small community queries — pays the one-shot facade's per-call
setup (graph broadcast, pool fork, operator construction, δ resolution)
on every request.  :class:`~repro.session.DetectionSession` amortises all
of it across the stream.  This experiment quantifies the difference: a
fixed sequence of small seed batches on one PPM instance, answered once
with a fresh ``detect()`` per batch and once through a single session —
reporting seconds, speedup, the broadcast count, and a bit confirming the
answers are identical request for request (they always are — the session
reuses only deterministic state).
"""

from __future__ import annotations

import math
import time

from ..api import RunConfig, detect
from ..core.parameters import CDRWParameters
from ..exceptions import ExperimentError
from ..execution import EXECUTOR_PROCESS, resolve_executor
from ..graphs.generators import planted_partition_graph
from ..graphs.properties import ppm_expected_conductance
from ..session import DetectionSession
from ..utils import as_rng
from .runner import ExperimentTable

__all__ = ["session_throughput"]


def session_throughput(
    n: int = 1024,
    num_blocks: int = 4,
    repeats: int = 8,
    seeds_per_call: int = 4,
    workers: int | None = None,
    executor: str | None = None,
    seed: int = 0,
    parameters: CDRWParameters | None = None,
) -> ExperimentTable:
    """Measure repeated small-batch detection: one-shot calls vs one session.

    Parameters
    ----------
    n, num_blocks:
        The PPM instance (paper-style ``p = 2 log²n / n`` within blocks).
    repeats:
        How many detection requests the stream contains.
    seeds_per_call:
        Seed vertices per request; each request is coalesced into one
        batched pass (``batch_size = seeds_per_call``) on both paths.
    workers, executor:
        Execution-tier knobs shared by both paths (``None`` defers to the
        ``REPRO_WORKERS`` / ``REPRO_EXECUTOR`` environment overrides) —
        the per-call setup being amortised is the process tier's broadcast
        and pool fork, or the thread tier's operator/search construction.
    """
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    if seeds_per_call < 1:
        raise ExperimentError(f"seeds_per_call must be >= 1, got {seeds_per_call}")
    rng = as_rng(seed)
    p = min(1.0, 2.0 * math.log(n) ** 2 / n)
    q = 1.0 / n
    instance = planted_partition_graph(n, num_blocks, p, q, seed=rng)
    graph = instance.graph
    delta = ppm_expected_conductance(n, num_blocks, p, q)
    requests = [
        tuple(int(v) for v in rng.choice(n, size=min(seeds_per_call, n), replace=False))
        for _ in range(repeats)
    ]
    config = RunConfig(batch_size=seeds_per_call, workers=workers, executor=executor)

    table = ExperimentTable(
        name="session_throughput",
        description=(
            f"Resident session vs per-call setup on PPM n={n}, r={num_blocks}: "
            f"{repeats} requests x {seeds_per_call} seeds"
        ),
    )

    start = time.perf_counter()
    one_shot = [
        detect(
            graph,
            backend="batched",
            params=parameters,
            delta_hint=delta,
            config=config.with_overrides(seeds=request),
        )
        for request in requests
    ]
    one_shot_seconds = time.perf_counter() - start

    start = time.perf_counter()
    with DetectionSession(
        graph, config=config, params=parameters, delta_hint=delta
    ) as session:
        resident = [session.detect(seeds=request) for request in requests]
        broadcasts = session.broadcasts
    session_seconds = time.perf_counter() - start

    identical = all(
        fresh.detection == cached.detection
        for fresh, cached in zip(one_shot, resident)
    )
    # One-shot process-tier calls broadcast (and fork) once per request; the
    # thread tier broadcasts nothing on either path.
    per_call = 1 if resolve_executor(executor) == EXECUTOR_PROCESS else 0
    table.add_row(
        {"mode": "one-shot", "repeats": repeats},
        {
            "seconds": one_shot_seconds,
            "speedup": 1.0,
            "broadcasts": float(repeats * per_call),
        },
    )
    table.add_row(
        {"mode": "session", "repeats": repeats},
        {
            "seconds": session_seconds,
            "speedup": (
                one_shot_seconds / session_seconds
                if session_seconds > 0
                else float("inf")
            ),
            "broadcasts": float(broadcasts),
            "identical": float(identical),
        },
    )
    return table
