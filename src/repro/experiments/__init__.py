"""Experiment harness: figure grids, complexity sweeps and baseline comparisons."""

from .runner import ExperimentRow, ExperimentTable, TrialAggregate, run_timed, run_trials
from .batched_detection import batched_detection_scaling
from .parallel_detection import parallel_detection_scaling
from .process_detection import process_detection_scaling
from .service_throughput import service_throughput
from .session_detection import session_throughput
from .parameters import PROBABILITY_SPECS, RATIO_SPECS, ProbabilitySpec, RatioSpec
from .figures import (
    cdrw_f_score_on_gnp,
    cdrw_f_score_on_ppm,
    figure1_stats,
    figure2_grid,
    figure3_grid,
    figure4a_grid,
    figure4b_grid,
)
from .complexity import congest_scaling, kmachine_scaling
from .baseline_comparison import BASELINE_NAMES, compare_baselines
from .reporting import format_table, render_experiment

__all__ = [
    "ExperimentRow",
    "ExperimentTable",
    "TrialAggregate",
    "run_timed",
    "run_trials",
    "batched_detection_scaling",
    "parallel_detection_scaling",
    "process_detection_scaling",
    "service_throughput",
    "session_throughput",
    "PROBABILITY_SPECS",
    "RATIO_SPECS",
    "ProbabilitySpec",
    "RatioSpec",
    "cdrw_f_score_on_gnp",
    "cdrw_f_score_on_ppm",
    "figure1_stats",
    "figure2_grid",
    "figure3_grid",
    "figure4a_grid",
    "figure4b_grid",
    "congest_scaling",
    "kmachine_scaling",
    "BASELINE_NAMES",
    "compare_baselines",
    "format_table",
    "render_experiment",
]
