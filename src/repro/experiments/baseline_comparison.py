"""Baseline comparison on the Figure-3 workload.

The paper's related-work section argues CDRW improves on label propagation
(no convergence guarantee, analysed only on dense PPM graphs), on the
two-community protocols of Clementi et al. and Becchetti et al., and avoids
the cost of centralized methods (spectral clustering, Walktrap).  This
experiment makes the comparison concrete: every method runs on the same
generated PPM instances and is scored with the partition-level average
F-score (and its runtime is recorded), so the benchmark output shows both
sides of the trade-off the paper describes.
"""

from __future__ import annotations

import time

import numpy as np

from ..baselines.averaging import averaging_dynamics
from ..baselines.clementi import clementi_two_communities
from ..baselines.label_propagation import label_propagation
from ..baselines.spectral import spectral_clustering
from ..baselines.walktrap import walktrap_communities
from ..core.cdrw import detect_communities
from ..core.parameters import CDRWParameters
from ..exceptions import ExperimentError
from ..graphs.generators import planted_partition_graph
from ..graphs.properties import ppm_expected_conductance
from ..metrics.scores import average_f_score, partition_average_f_score
from .parameters import PROBABILITY_SPECS
from .runner import ExperimentTable

__all__ = ["compare_baselines", "BASELINE_NAMES"]

#: Baselines included in the comparison, in report order.
BASELINE_NAMES: tuple[str, ...] = (
    "cdrw",
    "label_propagation",
    "averaging_dynamics",
    "clementi",
    "spectral",
    "walktrap",
)


def compare_baselines(
    n: int = 1024,
    num_blocks: int = 2,
    p_spec: str = "2log2n/n",
    q_spec: str = "0.6/n",
    seed: int = 0,
    methods: tuple[str, ...] = BASELINE_NAMES,
    parameters: CDRWParameters | None = None,
) -> ExperimentTable:
    """Run CDRW and the baselines on one PPM instance and score them all."""
    unknown = set(methods) - set(BASELINE_NAMES)
    if unknown:
        raise ExperimentError(f"unknown baseline methods: {sorted(unknown)}")
    p = PROBABILITY_SPECS[p_spec](n)
    q = PROBABILITY_SPECS[q_spec](n)
    ppm = planted_partition_graph(n, num_blocks, p, q, seed=seed)
    truth = ppm.partition
    delta = ppm_expected_conductance(n, num_blocks, p, q)
    rng = np.random.default_rng(seed)

    table = ExperimentTable(
        name="baseline_comparison",
        description=(
            f"CDRW vs baselines on a PPM graph (n={n}, r={num_blocks}, "
            f"p={p_spec}, q={q_spec})"
        ),
    )

    for method in methods:
        start = time.perf_counter()
        if method == "cdrw":
            detection = detect_communities(ppm.graph, parameters, delta_hint=delta, seed=rng)
            f_score = average_f_score(detection, truth)
            partition_f = partition_average_f_score(detection.to_partition(), truth)
            extra = {"communities": float(detection.num_communities)}
        elif method == "label_propagation":
            result = label_propagation(ppm.graph, seed=rng)
            f_score = partition_average_f_score(result.partition, truth)
            partition_f = f_score
            extra = {
                "communities": float(result.partition.num_communities),
                "converged": float(result.converged),
            }
        elif method == "averaging_dynamics":
            result = averaging_dynamics(ppm.graph, seed=rng)
            f_score = partition_average_f_score(result.partition, truth)
            partition_f = f_score
            extra = {"communities": float(result.partition.num_communities)}
        elif method == "clementi":
            result = clementi_two_communities(ppm.graph, seed=rng)
            f_score = partition_average_f_score(result.partition, truth)
            partition_f = f_score
            extra = {"communities": float(result.partition.num_communities)}
        elif method == "spectral":
            result = spectral_clustering(ppm.graph, num_blocks, seed=rng)
            f_score = partition_average_f_score(result.partition, truth)
            partition_f = f_score
            extra = {"communities": float(result.partition.num_communities)}
        elif method == "walktrap":
            result = walktrap_communities(ppm.graph, num_blocks)
            f_score = partition_average_f_score(result.partition, truth)
            partition_f = f_score
            extra = {"communities": float(result.partition.num_communities)}
        else:  # pragma: no cover - guarded above
            raise ExperimentError(f"unhandled method {method!r}")
        elapsed = time.perf_counter() - start

        measurements = {
            "f_score": f_score,
            "partition_f_score": partition_f,
            "runtime_seconds": elapsed,
        }
        measurements.update(extra)
        table.add_row(parameters={"method": method}, measurements=measurements)
    return table
