"""Baseline comparison on the Figure-3 workload.

The paper's related-work section argues CDRW improves on label propagation
(no convergence guarantee, analysed only on dense PPM graphs), on the
two-community protocols of Clementi et al. and Becchetti et al., and avoids
the cost of centralized methods (spectral clustering, Walktrap).  This
experiment makes the comparison concrete: every method is a backend of the
unified detection engine (:mod:`repro.api`) — CDRW as ``"scalar"``, the
related work as ``"baseline:<name>"`` — run on the same generated PPM
instance through one :func:`repro.api.detect` loop and scored with the
partition-level average F-score (and its runtime is recorded), so the
benchmark output shows both sides of the trade-off the paper describes.
"""

from __future__ import annotations

import numpy as np

from ..api import RunConfig, detect
from ..core.parameters import CDRWParameters
from ..exceptions import ExperimentError
from ..graphs.generators import planted_partition_graph
from ..graphs.properties import ppm_expected_conductance
from ..metrics.scores import average_f_score, partition_average_f_score
from .parameters import PROBABILITY_SPECS
from .runner import ExperimentTable

__all__ = ["compare_baselines", "BASELINE_NAMES"]

#: Baselines included in the comparison, in report order.
BASELINE_NAMES: tuple[str, ...] = (
    "cdrw",
    "label_propagation",
    "averaging_dynamics",
    "clementi",
    "spectral",
    "walktrap",
)


def compare_baselines(
    n: int = 1024,
    num_blocks: int = 2,
    p_spec: str = "2log2n/n",
    q_spec: str = "0.6/n",
    seed: int = 0,
    methods: tuple[str, ...] = BASELINE_NAMES,
    parameters: CDRWParameters | None = None,
) -> ExperimentTable:
    """Run CDRW and the baselines on one PPM instance and score them all."""
    unknown = set(methods) - set(BASELINE_NAMES)
    if unknown:
        raise ExperimentError(f"unknown baseline methods: {sorted(unknown)}")
    p = PROBABILITY_SPECS[p_spec](n)
    q = PROBABILITY_SPECS[q_spec](n)
    ppm = planted_partition_graph(n, num_blocks, p, q, seed=seed)
    truth = ppm.partition
    delta = ppm_expected_conductance(n, num_blocks, p, q)
    rng = np.random.default_rng(seed)

    table = ExperimentTable(
        name="baseline_comparison",
        description=(
            f"CDRW vs baselines on a PPM graph (n={n}, r={num_blocks}, "
            f"p={p_spec}, q={q_spec})"
        ),
    )

    # Every method is one facade call; the shared generator is threaded
    # through RunConfig.seed so the draw sequence across methods matches the
    # pre-registry implementation exactly.
    for method in methods:
        backend = "scalar" if method == "cdrw" else f"baseline:{method}"
        report = detect(
            ppm.graph,
            backend=backend,
            params=parameters if method == "cdrw" else None,
            delta_hint=delta,
            config=RunConfig(seed=rng, num_communities=num_blocks),
        )
        elapsed = report.timings["total_seconds"]
        if method == "cdrw":
            detection = report.detection
            f_score = average_f_score(detection, truth)
            partition_f = partition_average_f_score(detection.to_partition(), truth)
            extra = {"communities": float(detection.num_communities)}
        else:
            native = report.native_result
            f_score = partition_average_f_score(native.partition, truth)
            partition_f = f_score
            extra = {"communities": float(native.partition.num_communities)}
            if method == "label_propagation":
                extra["converged"] = float(native.converged)

        measurements = {
            "f_score": f_score,
            "partition_f_score": partition_f,
            "runtime_seconds": elapsed,
        }
        measurements.update(extra)
        table.add_row(parameters={"method": method}, measurements=measurements)
    return table
