"""Parameter specifications used by the paper's figures.

The paper expresses every edge probability relative to the graph size, e.g.
``p = 2 log n / n`` or ``q = 0.6 / n``, and the Figure 4 legends express the
separation as a ratio ``p/q`` proportional to ``log n`` or ``log² n``.  This
module turns those symbolic specifications into numbers so that experiment
definitions read like the paper's captions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..exceptions import ExperimentError

__all__ = ["ProbabilitySpec", "RatioSpec", "PROBABILITY_SPECS", "RATIO_SPECS"]


@dataclass(frozen=True)
class ProbabilitySpec:
    """A named probability rule such as ``2·log(n)/n``.

    Attributes
    ----------
    label:
        The label used in tables and plots (mirrors the paper's notation).
    evaluate:
        Maps the graph size ``n`` to the probability value (clamped to 1).
    """

    label: str
    evaluate: Callable[[int], float]

    def __call__(self, n: int) -> float:
        if n < 2:
            raise ExperimentError(f"probability specs require n >= 2, got {n}")
        return min(1.0, float(self.evaluate(n)))


@dataclass(frozen=True)
class RatioSpec:
    """A named ``p/q`` ratio rule such as ``1.2·log₂²(n)`` (Figure 4 legends)."""

    label: str
    evaluate: Callable[[int], float]

    def __call__(self, n: int) -> float:
        if n < 2:
            raise ExperimentError(f"ratio specs require n >= 2, got {n}")
        value = float(self.evaluate(n))
        if value <= 0:
            raise ExperimentError(f"ratio spec {self.label!r} evaluated to {value}")
        return value


#: The probability rules appearing in Figures 2 and 3 (natural logarithm, as
#: in the connectivity-threshold discussion of Section IV).
PROBABILITY_SPECS: dict[str, ProbabilitySpec] = {
    "2logn/n": ProbabilitySpec("2logn/n", lambda n: 2.0 * math.log(n) / n),
    "2log2n/n": ProbabilitySpec("2log2n/n", lambda n: 2.0 * math.log(n) ** 2 / n),
    "logn/n": ProbabilitySpec("logn/n", lambda n: math.log(n) / n),
    "log2n/n": ProbabilitySpec("log2n/n", lambda n: math.log(n) ** 2 / n),
    "0.1/n": ProbabilitySpec("0.1/n", lambda n: 0.1 / n),
    "0.6/n": ProbabilitySpec("0.6/n", lambda n: 0.6 / n),
}

#: The p/q separation rules of Figure 4 (legend "p/q = 2·0.1·log²n" etc.).
#: The logarithm base is 2, the more favourable reading for the small
#: coefficients; see EXPERIMENTS.md for the discussion of this ambiguity.
RATIO_SPECS: dict[str, RatioSpec] = {
    "0.2log2^2(n)": RatioSpec("0.2log2^2(n)", lambda n: 0.2 * math.log2(n) ** 2),
    "1.2log2^2(n)": RatioSpec("1.2log2^2(n)", lambda n: 1.2 * math.log2(n) ** 2),
    "0.2log2(n)": RatioSpec("0.2log2(n)", lambda n: 0.2 * math.log2(n)),
    "1.2log2(n)": RatioSpec("1.2log2(n)", lambda n: 1.2 * math.log2(n)),
}
