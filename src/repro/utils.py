"""Shared utilities: RNG handling, numeric schedules and small math helpers.

These helpers are used across the graph generators, the CDRW core and the
experiment harness.  They are deliberately dependency-light (numpy only).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

import numpy as np

from .exceptions import ReproError

__all__ = [
    "as_rng",
    "seed_pool_schedule",
    "spawn_rngs",
    "log_size",
    "geometric_sizes",
    "linear_sizes",
    "MIXING_THRESHOLD",
    "GROWTH_FACTOR",
    "ceil_log2",
    "harmonic_mean",
    "safe_ratio",
    "chunked",
    "stable_hash",
]

#: The mixing condition threshold 1/(2e) used throughout the paper
#: (Definition 2 and Algorithm 1, line 15).
MIXING_THRESHOLD: float = 1.0 / (2.0 * math.e)

#: Candidate mixing-set sizes grow by this factor (Algorithm 1, line 12);
#: the paper uses (1 + 1/8e) instead of doubling so that the geometric
#: search cannot skip over the true largest mixing set.
GROWTH_FACTOR: float = 1.0 + 1.0 / (8.0 * math.e)


def seed_pool_schedule(
    num_vertices: int,
    seed: "int | np.random.Generator | None",
    max_seeds: int | None,
    seeds: "tuple[int, ...] | None",
    detected: list,
) -> "Iterator[tuple[int, set[int] | None]]":
    """Yield ``(seed_vertex, pool)`` pairs driving a pool loop of Algorithm 1.

    With explicit ``seeds`` the listed vertices (truncated to ``max_seeds``)
    are yielded in order with ``pool=None``; otherwise vertices are drawn
    uniformly from the shrinking pool of not-yet-assigned vertices, and the
    caller must remove each detected community from the yielded ``pool``
    before resuming the iteration.  ``detected`` is the caller's running
    result list, read only for its length (the ``max_seeds`` cap applies to
    results actually produced, exactly as the pool loops it deduplicates).
    """
    if seeds is not None:
        seed_list = [int(s) for s in seeds]
        if max_seeds is not None:
            seed_list = seed_list[:max_seeds]
        for vertex in seed_list:
            yield vertex, None
        return
    rng = as_rng(seed)
    pool = set(range(num_vertices))
    while pool:
        if max_seeds is not None and len(detected) >= max_seeds:
            return
        yield int(rng.choice(sorted(pool))), pool


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may already be a generator (returned unchanged), an integer seed,
    or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Used by the experiment runner so that trials are reproducible yet
    statistically independent.
    """
    if count < 0:
        raise ReproError(f"cannot spawn a negative number of generators: {count}")
    root = as_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(count)]


def log_size(n: int) -> int:
    """Return ``max(1, round(ln n))`` — the paper's initial set size ``R = log n``.

    The natural logarithm is used, matching the analysis (the paper never
    distinguishes log bases; constants are absorbed).
    """
    if n < 1:
        raise ReproError(f"graph size must be positive, got {n}")
    return max(1, int(round(math.log(max(n, 2)))))


def geometric_sizes(start: int, stop: int, factor: float = GROWTH_FACTOR) -> list[int]:
    """Return the candidate mixing-set sizes ``start, start*f, start*f^2, ... <= stop``.

    Consecutive duplicates produced by integer rounding are removed and the
    final value ``stop`` is always included so that the full vertex set is
    always a candidate (Algorithm 1, line 12 iterates up to ``n``).
    """
    if start < 1:
        raise ReproError(f"candidate size schedule must start at >= 1, got {start}")
    if stop < start:
        return [stop] if stop >= 1 else []
    if factor <= 1.0:
        raise ReproError(f"growth factor must exceed 1, got {factor}")
    sizes: list[int] = []
    value = float(start)
    while value < stop:
        size = int(math.floor(value))
        if not sizes or size > sizes[-1]:
            sizes.append(size)
        value *= factor
        # Rounding can stall the schedule for very small sizes; force progress.
        if int(math.floor(value)) <= size:
            value = size + 1
    if not sizes or sizes[-1] != stop:
        sizes.append(stop)
    return sizes


def linear_sizes(start: int, stop: int, step: int = 1) -> list[int]:
    """Return the linear candidate schedule ``start, start+step, ..., stop``.

    Provided as the slower exact alternative mentioned in the paper (growing
    the candidate size by one each time); useful for testing the geometric
    schedule against ground truth.
    """
    if step < 1:
        raise ReproError(f"step must be >= 1, got {step}")
    if stop < start:
        return [stop] if stop >= 1 else []
    sizes = list(range(start, stop + 1, step))
    if sizes[-1] != stop:
        sizes.append(stop)
    return sizes


def ceil_log2(n: int) -> int:
    """Exact ``⌈log₂ n⌉`` for ``n ≥ 1`` in integer arithmetic.

    ``(n − 1).bit_length()`` never passes through a float, so cost-accounting
    round charges built on it stay exact for arbitrarily large ``n`` (unlike
    ``ceil(log2(float(n)))``).
    """
    if n < 1:
        raise ReproError(f"ceil_log2 requires n >= 1, got {n}")
    return (n - 1).bit_length()


def harmonic_mean(a: float, b: float) -> float:
    """Harmonic mean of two non-negative numbers; 0 if either is 0.

    This is exactly the F-score combination of precision and recall.
    """
    if a < 0 or b < 0:
        raise ReproError(f"harmonic mean requires non-negative inputs, got {a}, {b}")
    if a + b == 0:
        return 0.0
    # Divide before multiplying: the naive 2ab/(a+b) underflows the a·b
    # product into subnormals when both inputs are tiny (e.g. a ~ 1e-102,
    # b ~ 1e-221), inflating the result past the mathematical bound
    # 2·min(a, b).  low/(low+high) ≤ 1/2 keeps every intermediate in normal
    # range, and ordering the operands keeps the function bit-commutative.
    low, high = (a, b) if a <= b else (b, a)
    return 2.0 * high * (low / (low + high))


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Return ``numerator / denominator`` or ``default`` when the denominator is 0."""
    if denominator == 0:
        return default
    return numerator / denominator


def chunked(items: Sequence, size: int) -> Iterator[Sequence]:
    """Yield consecutive chunks of ``items`` with at most ``size`` elements."""
    if size < 1:
        raise ReproError(f"chunk size must be >= 1, got {size}")
    for start in range(0, len(items), size):
        yield items[start:start + size]


def stable_hash(value: int, modulus: int) -> int:
    """A deterministic integer hash onto ``range(modulus)``.

    Used by the k-machine random-vertex-partition implementation: the paper
    implements RVP "through hashing: each vertex (ID) is hashed to one of the
    k machines", so any machine that knows a vertex ID also knows its home
    machine.  Python's builtin ``hash`` is salted per-process, hence this
    splitmix64-style mix instead.
    """
    if modulus < 1:
        raise ReproError(f"modulus must be >= 1, got {modulus}")
    x = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x = x ^ (x >> 31)
    return int(x % modulus)
