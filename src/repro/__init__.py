"""repro — reproduction of *Efficient Distributed Community Detection in the
Stochastic Block Model* (Fathi, Molla, Pandurangan; ICDCS 2019).

The package implements the CDRW algorithm (community detection via random
walks and local mixing sets), the planted partition / stochastic block model
substrate it is evaluated on, simulators for the CONGEST and k-machine
distributed computing models, the baselines discussed by the paper's related
work, and the experiment harness that regenerates every figure of the
evaluation section.

Every executor — the scalar pool loop, the batched multi-seed path, the
parallel shared-walk variant, the CONGEST and k-machine simulations, and the
baselines — is a *backend* behind the unified :func:`detect` facade
(:mod:`repro.api`), which returns a structured, JSON-serializable
:class:`RunReport`.

Quickstart
----------
>>> from repro import RunConfig, detect, planted_partition_graph, average_f_score
>>> from repro.graphs import ppm_expected_conductance
>>> ppm = planted_partition_graph(n=512, num_blocks=2, p=0.08, q=0.002, seed=7)
>>> report = detect(
...     ppm.graph,
...     backend="batched",
...     delta_hint=ppm_expected_conductance(512, 2, 0.08, 0.002),
...     config=RunConfig(seed=7),
... )
>>> average_f_score(report.detection, ppm.partition) > 0.9
True
>>> sorted(report.timings) == ["total_seconds"]
True

Any registered backend slots into the same call — ``backend="congest"``
additionally returns the measured round/message costs in
``report.phase_costs`` — and ``repro detect --backend batched`` exposes the
same facade on the command line.

Resident sessions
-----------------
For a stream of queries against one graph, :class:`DetectionSession` keeps
the expensive per-call setup resident — the shared-memory graph broadcast
and worker pool on the process tier, the transition operator / mixing-set
search / resolved δ on the thread tier — while every answer stays
bit-identical to the one-shot facade:

>>> from repro import DetectionSession
>>> with DetectionSession(ppm.graph, config=RunConfig(seed=7)) as session:
...     first = session.detect(seeds=[0, 300])
...     second = session.detect(seeds=[100, 400])   # reuses cached setup
>>> second.metadata["session_calls"]
2
>>> one_shot = detect(ppm.graph, "batched", config=RunConfig(seed=7, seeds=(100, 400)))
>>> second.detection == one_shot.detection
True

``repro detect --session-repeat N`` exercises the same path from the
command line.

Serving detections
------------------
The session serves one call at a time by contract (concurrent calls raise
:class:`SessionBusyError`).  For many concurrent callers,
:class:`DetectionService` puts an admission queue and a dispatcher thread
in front of one session, coalescing whatever requests are pending into
``detect_batch`` waves — with per-request reports still bit-identical to
one-shot calls:

>>> from repro import DetectionService
>>> with DetectionService(ppm.graph, config=RunConfig(seed=7)) as service:
...     report = service.submit(300).result(timeout=60)   # from any thread
>>> report.detection == detect(
...     ppm.graph, "batched", config=RunConfig(seed=7, seeds=(300,))
... ).detection
True

``await service.detect(seed)`` is the same queue for asyncio callers, and
``repro serve --port N`` exposes it over JSON-lines TCP
(:mod:`repro.service_net`).
"""

from .exceptions import (
    AlgorithmError,
    BackendError,
    BandwidthExceededError,
    ConvergenceError,
    DeadlineExpiredError,
    ExperimentError,
    GeneratorError,
    GraphError,
    MachineError,
    MetricError,
    MixingError,
    PartitionError,
    RandomWalkError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    SessionBusyError,
    SimulationError,
)
from .graphs import (
    Graph,
    Partition,
    PlantedPartition,
    gnp_random_graph,
    planted_partition_graph,
    stochastic_block_model_graph,
)
from .core import (
    CDRWParameters,
    CommunityResult,
    DetectionResult,
    detect_communities,
    detect_communities_parallel,
    detect_community,
)
from .api import (
    Backend,
    RunConfig,
    RunReport,
    available_backends,
    detect,
    get_backend,
    register_backend,
    unregister_backend,
)
from .metrics import average_f_score, score_detection
from .service import DetectionService
from .session import DetectionSession

__version__ = "1.4.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "GraphError",
    "GeneratorError",
    "PartitionError",
    "RandomWalkError",
    "MixingError",
    "AlgorithmError",
    "ConvergenceError",
    "SimulationError",
    "BandwidthExceededError",
    "MachineError",
    "MetricError",
    "ExperimentError",
    "BackendError",
    "SessionBusyError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "DeadlineExpiredError",
    # graphs
    "Graph",
    "Partition",
    "PlantedPartition",
    "gnp_random_graph",
    "planted_partition_graph",
    "stochastic_block_model_graph",
    # unified detection engine
    "Backend",
    "DetectionService",
    "DetectionSession",
    "RunConfig",
    "RunReport",
    "available_backends",
    "detect",
    "get_backend",
    "register_backend",
    "unregister_backend",
    # core algorithm
    "CDRWParameters",
    "CommunityResult",
    "DetectionResult",
    "detect_community",
    "detect_communities",
    "detect_communities_parallel",
    # metrics
    "average_f_score",
    "score_detection",
]
