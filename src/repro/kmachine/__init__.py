"""k-machine model: random vertex partition, simulator, Conversion Theorem, CDRW."""

from .partition import BalanceReport, RandomVertexPartition
from .simulator import KMachineCost, KMachineNetwork
from .conversion import (
    cdrw_kmachine_round_bound,
    conversion_theorem_rounds,
    dominant_term,
)
from .cdrw_kmachine import (
    KMachineCommunityResult,
    KMachineDetectionResult,
    detect_communities_kmachine,
    detect_community_kmachine,
)

__all__ = [
    "BalanceReport",
    "RandomVertexPartition",
    "KMachineCost",
    "KMachineNetwork",
    "cdrw_kmachine_round_bound",
    "conversion_theorem_rounds",
    "dominant_term",
    "KMachineCommunityResult",
    "KMachineDetectionResult",
    "detect_communities_kmachine",
    "detect_community_kmachine",
]
