"""The k-machine model simulator.

The k-machine model connects ``k`` machines pairwise by links of bandwidth
``B`` bits (``B = Θ(log n)``, i.e. a constant number of machine words) per
round.  A CONGEST algorithm is simulated on it in the standard way (the
Conversion Theorem of Klauck et al.): the home machine of vertex ``u``
executes ``u``'s code, and a CONGEST message from ``u`` to ``v`` becomes an
inter-machine message from ``home(u)`` to ``home(v)`` — or free local work
when both endpoints live on the same machine.

:class:`KMachineNetwork` performs exactly this accounting:
:meth:`KMachineNetwork.route_congest_round` takes the multiset of vertex-to-
vertex messages of one CONGEST round, bins them by (source machine, target
machine) link, and charges ``⌈max link load / bandwidth⌉`` k-machine rounds —
the number of rounds needed to drain the most congested link.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import MachineError
from .partition import RandomVertexPartition

__all__ = ["KMachineNetwork", "KMachineCost"]

#: How many CONGEST messages (each O(log n) bits) fit into one k-machine link
#: per round.  The model sets the link bandwidth to B = O(log n) bits, i.e. a
#: constant number of messages; 1 is the standard (most conservative) choice.
DEFAULT_LINK_BANDWIDTH_MESSAGES: int = 1


@dataclass(frozen=True)
class KMachineCost:
    """Complexity counters of a k-machine simulation.

    Attributes
    ----------
    rounds:
        Total k-machine communication rounds.
    inter_machine_messages:
        Messages that actually crossed a machine boundary.
    local_messages:
        CONGEST messages whose endpoints shared a home machine (free).
    congest_rounds_routed:
        Number of CONGEST rounds that were simulated.
    """

    rounds: int
    inter_machine_messages: int
    local_messages: int
    congest_rounds_routed: int

    def __add__(self, other: object) -> "KMachineCost":
        # Mirrors CostReport: foreign types get NotImplemented so Python can
        # try the reflected operation or raise a proper TypeError.
        if not isinstance(other, KMachineCost):
            return NotImplemented
        return KMachineCost(
            rounds=self.rounds + other.rounds,
            inter_machine_messages=self.inter_machine_messages
            + other.inter_machine_messages,
            local_messages=self.local_messages + other.local_messages,
            congest_rounds_routed=self.congest_rounds_routed
            + other.congest_rounds_routed,
        )

    def __radd__(self, other: object) -> "KMachineCost":
        # ``sum(costs)`` starts from the int 0; absorb exactly that identity
        # so per-phase reports aggregate with plain ``sum``.
        if isinstance(other, int) and not isinstance(other, bool) and other == 0:
            return self
        return NotImplemented


class KMachineNetwork:
    """Accounting simulator for running CONGEST algorithms on k machines."""

    def __init__(
        self,
        partition: RandomVertexPartition,
        bandwidth_messages: int = DEFAULT_LINK_BANDWIDTH_MESSAGES,
    ):
        if bandwidth_messages < 1:
            raise MachineError(f"link bandwidth must be >= 1 message, got {bandwidth_messages}")
        self._partition = partition
        self._bandwidth = int(bandwidth_messages)
        self._rounds = 0
        self._inter_messages = 0
        self._local_messages = 0
        self._congest_rounds = 0

    # ------------------------------------------------------------------
    @property
    def partition(self) -> RandomVertexPartition:
        """The vertex-to-machine assignment being simulated."""
        return self._partition

    @property
    def num_machines(self) -> int:
        """The number of machines ``k``."""
        return self._partition.num_machines

    @property
    def bandwidth_messages(self) -> int:
        """Messages per link per round."""
        return self._bandwidth

    def cost(self) -> KMachineCost:
        """Return a snapshot of the cost counters."""
        return KMachineCost(
            rounds=self._rounds,
            inter_machine_messages=self._inter_messages,
            local_messages=self._local_messages,
            congest_rounds_routed=self._congest_rounds,
        )

    def reset(self) -> None:
        """Zero the counters (the partition is kept)."""
        self._rounds = 0
        self._inter_messages = 0
        self._local_messages = 0
        self._congest_rounds = 0

    # ------------------------------------------------------------------
    def link_loads(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> tuple[np.ndarray, int, int]:
        """Return the per-link load matrix for a batch of vertex-to-vertex messages.

        Returns ``(loads, inter, local)`` where ``loads[i, j]`` is the number
        of messages from machine ``i`` to machine ``j`` (``i ≠ j``).
        """
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise MachineError(
                f"sources and targets must have matching shapes, got {sources.shape} "
                f"and {targets.shape}"
            )
        assignment = self._partition.assignment
        k = self.num_machines
        source_machines = assignment[sources]
        target_machines = assignment[targets]
        cross = source_machines != target_machines
        loads = np.zeros((k, k), dtype=np.int64)
        if cross.any():
            np.add.at(loads, (source_machines[cross], target_machines[cross]), 1)
        inter = int(cross.sum())
        local = int(len(sources) - inter)
        return loads, inter, local

    def rounds_for_loads(self, loads: np.ndarray) -> int:
        """Return the k-machine rounds needed to deliver the given link loads.

        The charge is the exact integer ceiling ``⌈heaviest / bandwidth⌉``.
        Ceiling the *float* quotient (the previous implementation) loses
        exactness once the heaviest load nears 2⁵³ — e.g. ``2⁵³ + 1``
        messages at bandwidth 1 round to one round too few — so the division
        stays in integer arithmetic.
        """
        if loads.size == 0:
            return 0
        heaviest = int(loads.max())
        if heaviest == 0:
            return 0
        return -(-heaviest // self._bandwidth)

    def route_congest_round(
        self, sources: np.ndarray, targets: np.ndarray, repeat: int = 1
    ) -> int:
        """Simulate ``repeat`` CONGEST rounds that each send the given messages.

        Returns the number of k-machine rounds charged.  ``repeat > 1`` is a
        convenience for phases (e.g. the tree broadcast/convergecast passes of
        the mixing-set selection) that send the same message pattern many
        times; the loads are computed once.
        """
        if repeat < 0:
            raise MachineError(f"repeat must be >= 0, got {repeat}")
        if repeat == 0:
            return 0
        loads, inter, local = self.link_loads(sources, targets)
        per_round = self.rounds_for_loads(loads)
        self._rounds += per_round * repeat
        self._inter_messages += inter * repeat
        self._local_messages += local * repeat
        self._congest_rounds += repeat
        return per_round * repeat
