"""Random vertex partition (RVP) of a graph across k machines.

In the k-machine model (Klauck, Nanongkai, Pandurangan, Robinson; SODA 2015)
the input graph is distributed over ``k`` machines: each vertex, together
with its incident edge list, is assigned to a *home machine*.  The paper uses
the random vertex partition, conveniently implemented "through hashing: each
vertex (ID) is hashed to one of the k machines", so any machine that knows a
vertex ID also knows its home machine without communication.

With high probability the RVP is balanced: every machine holds ``Õ(n/k)``
vertices and ``Õ(m/k + Δ)`` edges.  :meth:`RandomVertexPartition.balance_report`
exposes the realised balance so experiments can verify this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import MachineError
from ..graphs.graph import Graph
from ..utils import as_rng, stable_hash

__all__ = ["RandomVertexPartition", "BalanceReport"]


@dataclass(frozen=True)
class BalanceReport:
    """How evenly the vertices and edges are spread over the machines.

    Attributes
    ----------
    vertices_per_machine:
        Number of home vertices on each machine.
    edges_per_machine:
        Number of edge endpoints (incident edges of home vertices) on each machine.
    max_vertex_imbalance:
        ``max vertices per machine / (n/k)`` — 1.0 is perfectly balanced.
    max_edge_imbalance:
        ``max edges per machine / (2m/k)`` — 1.0 is perfectly balanced.
    """

    vertices_per_machine: list[int]
    edges_per_machine: list[int]
    max_vertex_imbalance: float
    max_edge_imbalance: float


class RandomVertexPartition:
    """Assignment of every vertex of a graph to one of ``k`` machines.

    Parameters
    ----------
    num_vertices:
        Number of vertices to place.
    num_machines:
        Number of machines ``k`` (at least 2 in the k-machine model; 1 is
        allowed for degenerate testing).
    method:
        ``"hash"`` (deterministic hashing of vertex IDs, the paper's
        suggestion — any machine can compute any vertex's home locally) or
        ``"random"`` (independent uniform assignment driven by ``seed``).
    seed:
        RNG seed for the ``"random"`` method, or a salt for ``"hash"``.
    """

    def __init__(
        self,
        num_vertices: int,
        num_machines: int,
        method: str = "hash",
        seed: int | np.random.Generator | None = None,
    ):
        if num_machines < 1:
            raise MachineError(f"number of machines must be >= 1, got {num_machines}")
        if num_vertices < 0:
            raise MachineError(f"number of vertices must be >= 0, got {num_vertices}")
        if method not in ("hash", "random"):
            raise MachineError(f"unknown partition method: {method!r}")
        self._k = int(num_machines)
        self._n = int(num_vertices)
        self._method = method
        if method == "hash":
            salt = 0
            if isinstance(seed, (int, np.integer)):
                salt = int(seed)
            self._assignment = np.array(
                [stable_hash(v + salt * 1_000_003, self._k) for v in range(self._n)],
                dtype=np.int64,
            )
        else:
            rng = as_rng(seed)
            self._assignment = rng.integers(0, self._k, size=self._n, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        """The number of machines ``k``."""
        return self._k

    @property
    def num_vertices(self) -> int:
        """The number of vertices placed."""
        return self._n

    @property
    def assignment(self) -> np.ndarray:
        """Home machine per vertex (read-only view)."""
        view = self._assignment.view()
        view.flags.writeable = False
        return view

    def home_machine(self, vertex: int) -> int:
        """Return the home machine of ``vertex``."""
        if not (0 <= int(vertex) < self._n):
            raise MachineError(f"vertex {vertex} out of range for {self._n} vertices")
        return int(self._assignment[vertex])

    def vertices_of(self, machine: int) -> np.ndarray:
        """Return the vertices whose home machine is ``machine``."""
        if not (0 <= int(machine) < self._k):
            raise MachineError(f"machine {machine} out of range for {self._k} machines")
        return np.flatnonzero(self._assignment == machine)

    def balance_report(self, graph: Graph) -> BalanceReport:
        """Return the realised vertex/edge balance of this partition on ``graph``."""
        if graph.num_vertices != self._n:
            raise MachineError(
                f"partition covers {self._n} vertices but the graph has {graph.num_vertices}"
            )
        vertex_counts = np.bincount(self._assignment, minlength=self._k)
        degrees = graph.degrees()
        edge_counts = np.zeros(self._k, dtype=np.int64)
        np.add.at(edge_counts, self._assignment, degrees)
        ideal_vertices = self._n / self._k if self._k else 0.0
        ideal_edges = graph.volume / self._k if self._k else 0.0
        return BalanceReport(
            vertices_per_machine=vertex_counts.tolist(),
            edges_per_machine=edge_counts.tolist(),
            max_vertex_imbalance=(
                float(vertex_counts.max() / ideal_vertices) if ideal_vertices > 0 else 1.0
            ),
            max_edge_imbalance=(
                float(edge_counts.max() / ideal_edges) if ideal_edges > 0 else 1.0
            ),
        )
