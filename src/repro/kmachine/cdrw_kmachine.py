"""CDRW in the k-machine model.

Section III-B of the paper implements CDRW on ``k`` machines by simulating
the CONGEST algorithm: every machine executes the node programs of its home
vertices, and a CONGEST message between vertices with different home machines
becomes one inter-machine message.  This module performs that simulation with
full cost accounting:

* the vertex-to-vertex message pattern of every CONGEST round (BFS flooding,
  probability flooding, tree broadcasts/convergecasts of the mixing-set
  selection) is routed through a :class:`~repro.kmachine.simulator.KMachineNetwork`,
  which charges ``⌈max link load / bandwidth⌉`` k-machine rounds per CONGEST
  round, and
* the detected community is computed with the same arithmetic as the
  centralized executor (:class:`~repro.core.mixing_set.MixingSetSearch`), so
  accuracy is identical across the three execution models.

Experiments compare the measured k-machine rounds against the Conversion
Theorem prediction ``Õ(M/k² + ΔT/k)`` and the closed-form bound of the paper
(:func:`repro.kmachine.conversion.cdrw_kmachine_round_bound`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.mixing_set import LargestMixingSet, MixingSetSearch
from ..core.parameters import CDRWParameters
from ..core.result import CommunityResult, DetectionResult
from ..core.stopping import GrowthStoppingRule
from ..exceptions import MachineError
from ..graphs.graph import Graph
from ..graphs.traversal import bfs_tree
from ..randomwalk.distribution import WalkDistribution
from ..utils import ceil_log2, seed_pool_schedule
from .partition import RandomVertexPartition
from .simulator import KMachineCost, KMachineNetwork

__all__ = [
    "KMachineCommunityResult",
    "KMachineDetectionResult",
    "detect_community_kmachine",
    "detect_communities_kmachine",
]


@dataclass(frozen=True)
class KMachineCommunityResult:
    """One detected community plus its measured k-machine cost."""

    community: CommunityResult
    cost: KMachineCost
    num_machines: int


@dataclass(frozen=True)
class KMachineDetectionResult:
    """All detected communities plus the aggregate k-machine cost."""

    detection: DetectionResult
    per_community: tuple[KMachineCommunityResult, ...]
    total_cost: KMachineCost
    num_machines: int


def _route_bfs(network: KMachineNetwork, graph: Graph, tree) -> None:
    """Route the level-synchronous BFS flooding messages of the tree construction."""
    levels: dict[int, list[int]] = {}
    for vertex in tree.reached():
        levels.setdefault(int(tree.distances[vertex]), []).append(int(vertex))
    for depth in sorted(levels)[:-1] if len(levels) > 1 else []:
        frontier = levels[depth]
        sources: list[int] = []
        targets: list[int] = []
        for vertex in frontier:
            neighbors = graph.neighbors(vertex)
            sources.extend([vertex] * len(neighbors))
            targets.extend(int(v) for v in neighbors)
        if sources:
            network.route_congest_round(np.asarray(sources), np.asarray(targets))


def _tree_edge_endpoints(tree) -> tuple[np.ndarray, np.ndarray]:
    """Return the (child, parent) arrays of the BFS tree edges."""
    children = []
    parents = []
    for vertex in tree.reached():
        parent = int(tree.parents[vertex])
        if parent >= 0:
            children.append(int(vertex))
            parents.append(parent)
    return np.asarray(children, dtype=np.int64), np.asarray(parents, dtype=np.int64)


def detect_community_kmachine(
    graph: Graph,
    seed_vertex: int,
    num_machines: int,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    partition: RandomVertexPartition | None = None,
    partition_seed: int | None = None,
    network: KMachineNetwork | None = None,
) -> KMachineCommunityResult:
    """Detect the community of ``seed_vertex`` on ``num_machines`` machines.

    A fresh random vertex partition is drawn unless one is supplied; passing
    an existing :class:`KMachineNetwork` accumulates costs across calls (used
    by the all-communities driver).
    """
    if seed_vertex not in graph:
        raise MachineError(f"seed vertex {seed_vertex} is not a vertex of {graph!r}")
    parameters = parameters or CDRWParameters()
    if network is None:
        if partition is None:
            partition = RandomVertexPartition(
                graph.num_vertices, num_machines, method="hash", seed=partition_seed
            )
        network = KMachineNetwork(partition)
    elif network.num_machines != num_machines:
        raise MachineError(
            f"supplied network has {network.num_machines} machines, expected {num_machines}"
        )
    start = network.cost()

    delta = parameters.resolve_delta(graph, delta_hint)
    initial_size = parameters.resolve_initial_size(graph)
    max_walk_length = parameters.resolve_max_walk_length(graph)

    # Phase 1: BFS tree from the seed (CONGEST flooding, routed per level).
    tree = bfs_tree(graph, seed_vertex, max_depth=max_walk_length)
    _route_bfs(network, graph, tree)
    tree_children, tree_parents = _tree_edge_endpoints(tree)
    reached_count = len(tree.reached())
    # ceil_log2 keeps the binary-search round charge in integer arithmetic
    # instead of ceiling a float log.
    selection_iterations = max(1, ceil_log2(max(reached_count, 2)))

    search = MixingSetSearch(
        graph,
        initial_size=initial_size,
        mixing_threshold=parameters.mixing_threshold,
        growth_factor=parameters.growth_factor,
        schedule=parameters.size_schedule,
        stop_at_first_failure=parameters.stop_at_first_failure,
        min_mass=parameters.min_mass,
    )
    stopping = GrowthStoppingRule(delta=delta)
    walk = WalkDistribution(graph, seed_vertex, lazy=parameters.lazy_walk)
    degrees = graph.degrees()

    history: list[LargestMixingSet] = []
    last_found: LargestMixingSet | None = None
    final_members: frozenset[int] | None = None
    stop_reason = "walk length budget exhausted"
    stopped_at = max_walk_length

    for length in range(1, max_walk_length + 1):
        # Phase 2: probability flooding — every vertex currently holding mass
        # sends one message per incident edge.
        active = walk.support()
        if len(active):
            sources: list[int] = []
            targets: list[int] = []
            for vertex in active:
                neighbors = graph.neighbors(int(vertex))
                sources.extend([int(vertex)] * len(neighbors))
                targets.extend(int(v) for v in neighbors)
            network.route_congest_round(np.asarray(sources), np.asarray(targets))
        walk.step()

        # Phase 3: mixing-set search.  The community is computed with the
        # shared (centralized) arithmetic; the communication it would have
        # needed — per candidate size, one min/max convergecast, the pivot
        # broadcast/count convergecast iterations, the final qualification
        # broadcast, the selected-sum convergecast and the mass convergecast —
        # is routed over the BFS-tree edges.
        current = search.largest_mixing_set(walk.probabilities(), length)
        history.append(current)
        if current.found:
            last_found = current
        sizes_examined = max(1, current.sizes_examined)
        if len(tree_children):
            upward_passes = (selection_iterations + 3) * sizes_examined
            downward_passes = (selection_iterations + 1) * sizes_examined
            network.route_congest_round(tree_children, tree_parents, repeat=upward_passes)
            network.route_congest_round(tree_parents, tree_children, repeat=downward_passes)

        decision = stopping.observe(current)
        if decision.should_stop and decision.community is not None:
            final_members = decision.community.members
            stop_reason = decision.reason
            stopped_at = length
            break

    if final_members is None:
        if last_found is not None:
            final_members = last_found.members
        else:
            final_members = frozenset({seed_vertex})
            stop_reason = "no mixing set found within the walk budget"
    if seed_vertex not in final_members:
        final_members = frozenset(final_members | {seed_vertex})

    community = CommunityResult(
        seed=seed_vertex,
        community=final_members,
        walk_length=stopped_at,
        history=tuple(history),
        stop_reason=stop_reason,
        delta=delta,
    )
    end = network.cost()
    cost = KMachineCost(
        rounds=end.rounds - start.rounds,
        inter_machine_messages=end.inter_machine_messages - start.inter_machine_messages,
        local_messages=end.local_messages - start.local_messages,
        congest_rounds_routed=end.congest_rounds_routed - start.congest_rounds_routed,
    )
    return KMachineCommunityResult(
        community=community, cost=cost, num_machines=network.num_machines
    )


def detect_communities_kmachine(
    graph: Graph,
    num_machines: int,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    seed: int | np.random.Generator | None = None,
    partition_seed: int | None = None,
    max_seeds: int | None = None,
) -> KMachineDetectionResult:
    """Detect all communities on ``num_machines`` machines (pool loop of Algorithm 1).

    This is a thin shim over the ``"kmachine"`` backend of :mod:`repro.api`;
    communities and cost reports are identical to the pre-registry
    implementation.
    """
    from ..api import RunConfig, detect

    report = detect(
        graph,
        backend="kmachine",
        params=parameters,
        delta_hint=delta_hint,
        config=RunConfig(
            seed=seed,
            max_seeds=max_seeds,
            num_machines=num_machines,
            partition_seed=partition_seed,
        ),
    )
    return report.native_result


def _detect_communities_kmachine_impl(
    graph: Graph,
    num_machines: int,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    seed: int | np.random.Generator | None = None,
    partition_seed: int | None = None,
    max_seeds: int | None = None,
    seeds: tuple[int, ...] | None = None,
) -> KMachineDetectionResult:
    """The k-machine pool loop the ``"kmachine"`` backend executes.

    ``seeds`` (facade-only) skips the pool drawing and detects the listed
    seed vertices in order on one shared network.
    """
    parameters = parameters or CDRWParameters()
    partition = RandomVertexPartition(
        graph.num_vertices, num_machines, method="hash", seed=partition_seed
    )
    network = KMachineNetwork(partition)

    per_community: list[KMachineCommunityResult] = []
    results: list[CommunityResult] = []
    for seed_vertex, pool in seed_pool_schedule(
        graph.num_vertices, seed, max_seeds, seeds, results
    ):
        outcome = detect_community_kmachine(
            graph,
            seed_vertex,
            num_machines,
            parameters,
            delta_hint=delta_hint,
            network=network,
        )
        per_community.append(outcome)
        results.append(outcome.community)
        if pool is not None:
            pool.difference_update(outcome.community.community)
            pool.discard(seed_vertex)

    detection = DetectionResult(num_vertices=graph.num_vertices, communities=tuple(results))
    return KMachineDetectionResult(
        detection=detection,
        per_community=tuple(per_community),
        total_cost=network.cost(),
        num_machines=num_machines,
    )
