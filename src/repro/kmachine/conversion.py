"""The Conversion Theorem: predicting k-machine complexity from CONGEST complexity.

Part (a) of the Conversion Theorem of Klauck et al. (SODA 2015) states that a
CONGEST algorithm using ``M`` messages and ``T`` rounds on a graph of maximum
degree ``Δ`` can be simulated in the k-machine model (under the random vertex
partition) in

``Õ(M / k² + Δ·T / k)``

rounds with high probability.  Section III-B of the paper plugs CDRW's
CONGEST complexity into this bound to obtain
``Õ((n²/k² + n/(kr)) (p + q(r−1)))`` rounds, which scales as ``k^{-2}`` for
sparse graphs (the message term dominates) and as ``k^{-1}`` in general (the
``ΔT/k`` term dominates).

The functions here evaluate the bound so experiments can compare the
simulator's measured round counts against the theoretical scaling.
"""

from __future__ import annotations

import math

from ..exceptions import MachineError

__all__ = [
    "conversion_theorem_rounds",
    "cdrw_kmachine_round_bound",
    "dominant_term",
]


def conversion_theorem_rounds(
    messages: float,
    rounds: float,
    max_degree: float,
    num_machines: int,
    include_polylog: bool = False,
    n: int | None = None,
) -> float:
    """Evaluate ``M/k² + Δ·T/k`` (optionally times a ``log n`` factor).

    Parameters
    ----------
    messages, rounds:
        The CONGEST message and round complexity ``M`` and ``T``.
    max_degree:
        The maximum degree ``Δ`` of the input graph.
    num_machines:
        Number of machines ``k``.
    include_polylog:
        Multiply by ``log n`` (requires ``n``) to include the Õ factor.
    """
    if num_machines < 1:
        raise MachineError(f"number of machines must be >= 1, got {num_machines}")
    if messages < 0 or rounds < 0 or max_degree < 0:
        raise MachineError("messages, rounds and max_degree must be non-negative")
    value = messages / num_machines**2 + max_degree * rounds / num_machines
    if include_polylog:
        if n is None or n < 2:
            raise MachineError("include_polylog requires the graph size n >= 2")
        value *= math.log(n)
    return value


def cdrw_kmachine_round_bound(n: int, r: int, p: float, q: float, num_machines: int) -> float:
    """The paper's closed-form k-machine bound ``(n²/k² + n/(kr))(p + q(r−1))``.

    Constants and polylog factors are omitted, as in Section III-B.
    """
    if n < 2 or r < 1 or n % r != 0:
        raise MachineError(f"invalid PPM shape n={n}, r={r}")
    if num_machines < 1:
        raise MachineError(f"number of machines must be >= 1, got {num_machines}")
    mixing = p + q * (r - 1)
    return (n * n / num_machines**2 + n / (num_machines * r)) * mixing


def dominant_term(
    messages: float, rounds: float, max_degree: float, num_machines: int
) -> str:
    """Return which Conversion-Theorem term dominates: ``"messages"`` or ``"degree"``.

    ``"messages"`` (the ``M/k²`` term) dominating is the regime where the
    round complexity scales quadratically in ``1/k``; ``"degree"`` (the
    ``ΔT/k`` term) gives the linear ``1/k`` scaling.
    """
    message_term = messages / num_machines**2
    degree_term = max_degree * rounds / num_machines
    return "messages" if message_term >= degree_term else "degree"
