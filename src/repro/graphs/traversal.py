"""Graph traversal primitives: BFS, balls, connected components and diameter.

The CDRW analysis (Lemma 1) reasons about the ball ``B_ℓ`` of radius ``ℓ``
around the seed vertex — the set of vertices within hop distance ``ℓ`` — and
the distributed algorithm builds a BFS tree of depth ``O(log n)`` rooted at
the seed (Algorithm 1, line 5).  These are the shared-memory counterparts of
the distributed BFS in :mod:`repro.congest.bfs`; integration tests assert
that both produce the same depth labelling.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..exceptions import GraphError
from .graph import Graph

__all__ = [
    "BFSResult",
    "bfs_tree",
    "ball",
    "ball_sizes",
    "connected_components",
    "is_connected",
    "eccentricity",
    "diameter",
    "shortest_path_length",
]

UNREACHED = -1


@dataclass(frozen=True)
class BFSResult:
    """The outcome of a breadth-first search from a root vertex.

    Attributes
    ----------
    root:
        The BFS root.
    distances:
        Hop distance from the root per vertex (``-1`` for unreachable vertices).
    parents:
        BFS-tree parent per vertex (``-1`` for the root and unreachable vertices).
    max_depth:
        Depth cap the search was run with (``None`` = unbounded).
    """

    root: int
    distances: np.ndarray
    parents: np.ndarray
    max_depth: int | None

    def reached(self) -> np.ndarray:
        """Return the sorted array of vertices reached by the search."""
        return np.flatnonzero(self.distances != UNREACHED)

    def depth(self) -> int:
        """Return the depth of the BFS tree (0 when only the root was reached)."""
        reached = self.distances[self.distances != UNREACHED]
        return int(reached.max()) if len(reached) else 0

    def children(self) -> dict[int, list[int]]:
        """Return the tree as a parent -> children adjacency dictionary."""
        tree: dict[int, list[int]] = {}
        for vertex, parent in enumerate(self.parents.tolist()):
            if parent != UNREACHED:
                tree.setdefault(parent, []).append(vertex)
        return tree

    def subtree_order(self) -> list[int]:
        """Return the reached vertices in non-decreasing distance order.

        This is the order in which a convergecast proceeds bottom-up (reversed)
        and a broadcast proceeds top-down.
        """
        reached = self.reached()
        return sorted(reached.tolist(), key=lambda v: int(self.distances[v]))


def bfs_tree(graph: Graph, root: int, max_depth: int | None = None) -> BFSResult:
    """Run a breadth-first search from ``root``.

    Parameters
    ----------
    graph:
        The graph to traverse.
    root:
        Starting vertex.
    max_depth:
        Optional depth cap.  Algorithm 1 builds a BFS tree of depth
        ``O(log n)`` from the seed; pass that cap here to mirror it.
    """
    if root not in graph:
        raise GraphError(f"root {root} is not a vertex of {graph!r}")
    if max_depth is not None and max_depth < 0:
        raise GraphError(f"max_depth must be non-negative, got {max_depth}")

    n = graph.num_vertices
    distances = np.full(n, UNREACHED, dtype=np.int64)
    parents = np.full(n, UNREACHED, dtype=np.int64)
    distances[root] = 0
    queue: deque[int] = deque([root])
    while queue:
        current = queue.popleft()
        current_distance = int(distances[current])
        if max_depth is not None and current_distance >= max_depth:
            continue
        for neighbor in graph.neighbors(current):
            neighbor = int(neighbor)
            if distances[neighbor] == UNREACHED:
                distances[neighbor] = current_distance + 1
                parents[neighbor] = current
                queue.append(neighbor)
    return BFSResult(root=root, distances=distances, parents=parents, max_depth=max_depth)


def ball(graph: Graph, center: int, radius: int) -> frozenset[int]:
    """Return the ball ``B_radius(center)`` — vertices within hop distance ``radius``.

    Lemma 1 of the paper shows that, before mixing, the largest local mixing
    set of an ``ℓ``-step walk on ``G(n, p)`` is the ball ``B_{⌊ℓ/2⌋}``.
    """
    if radius < 0:
        raise GraphError(f"radius must be non-negative, got {radius}")
    result = bfs_tree(graph, center, max_depth=radius)
    return frozenset(int(v) for v in result.reached())


def ball_sizes(graph: Graph, center: int, max_radius: int) -> list[int]:
    """Return ``[|B_0|, |B_1|, ..., |B_max_radius|]`` around ``center``."""
    if max_radius < 0:
        raise GraphError(f"max_radius must be non-negative, got {max_radius}")
    result = bfs_tree(graph, center, max_depth=max_radius)
    distances = result.distances[result.distances != UNREACHED]
    counts = np.bincount(distances, minlength=max_radius + 1)
    return np.cumsum(counts[:max_radius + 1]).tolist()


def connected_components(graph: Graph) -> list[frozenset[int]]:
    """Return the connected components, largest first."""
    n = graph.num_vertices
    seen = np.zeros(n, dtype=bool)
    components: list[frozenset[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        result = bfs_tree(graph, start)
        members = result.reached()
        seen[members] = True
        components.append(frozenset(int(v) for v in members))
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: Graph) -> bool:
    """Return ``True`` when the graph is connected (the empty graph is connected)."""
    if graph.num_vertices <= 1:
        return True
    result = bfs_tree(graph, 0)
    return len(result.reached()) == graph.num_vertices


def eccentricity(graph: Graph, vertex: int) -> int:
    """Return the eccentricity of ``vertex`` within its connected component."""
    result = bfs_tree(graph, vertex)
    return result.depth()


def diameter(graph: Graph, sample_size: int | None = None, seed: int | None = None) -> int:
    """Return the diameter of the graph (largest eccentricity).

    For large graphs an exact diameter costs ``O(nm)``; pass ``sample_size``
    to estimate it from BFS runs at randomly sampled vertices (a lower bound).
    Raises :class:`GraphError` on disconnected graphs because hop distance is
    then undefined between components.
    """
    if graph.num_vertices == 0:
        return 0
    if not is_connected(graph):
        raise GraphError("diameter is undefined for disconnected graphs")
    if sample_size is None or sample_size >= graph.num_vertices:
        candidates: Iterable[int] = range(graph.num_vertices)
    else:
        rng = np.random.default_rng(seed)
        candidates = rng.choice(graph.num_vertices, size=sample_size, replace=False).tolist()
    return max(eccentricity(graph, int(v)) for v in candidates)


def shortest_path_length(graph: Graph, source: int, target: int) -> int:
    """Return the hop distance between two vertices (-1 if unreachable)."""
    result = bfs_tree(graph, source)
    if target not in graph:
        raise GraphError(f"target {target} is not a vertex of {graph!r}")
    return int(result.distances[target])
