"""Reading and writing graphs and partitions.

Two interchange formats are supported:

* a plain **edge list** text format (one ``u v`` pair per line, ``#`` comments,
  with an optional header recording the vertex count so isolated vertices are
  preserved), and
* a **JSON** document bundling a graph with an optional ground-truth partition
  and generator metadata, which is what the experiment harness uses to cache
  generated PPM instances between benchmark runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from ..exceptions import GraphError
from .graph import Graph
from .partition import Partition

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "graph_to_dict",
    "graph_from_dict",
    "write_graph_json",
    "read_graph_json",
]

_HEADER_PREFIX = "# vertices:"


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` as an edge list with a vertex-count header."""
    path = Path(path)
    lines = [f"{_HEADER_PREFIX} {graph.num_vertices}"]
    lines.extend(f"{u} {v}" for u, v in graph.edges())
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(path: str | Path, num_vertices: int | None = None) -> Graph:
    """Read an edge list written by :func:`write_edge_list` (or any ``u v`` file).

    ``num_vertices`` overrides the header / inferred vertex count; when absent
    and no header is present, the count is ``max vertex id + 1``.
    """
    path = Path(path)
    edges: list[tuple[int, int]] = []
    header_vertices: int | None = None
    for line_number, raw_line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith(_HEADER_PREFIX):
            header_vertices = int(line[len(_HEADER_PREFIX):].strip())
            continue
        if line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphError(f"{path}:{line_number}: expected 'u v', got {raw_line!r}")
        edges.append((int(parts[0]), int(parts[1])))

    if num_vertices is None:
        if header_vertices is not None:
            num_vertices = header_vertices
        elif edges:
            num_vertices = max(max(u, v) for u, v in edges) + 1
        else:
            num_vertices = 0
    return Graph(num_vertices, edges)


def graph_to_dict(
    graph: Graph,
    partition: Partition | None = None,
    metadata: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Serialize a graph (and optional partition / metadata) to plain Python types."""
    document: dict[str, Any] = {
        "num_vertices": graph.num_vertices,
        "edges": [[int(u), int(v)] for u, v in graph.edges()],
    }
    if partition is not None:
        if partition.num_vertices != graph.num_vertices:
            raise GraphError(
                "partition covers a different vertex count than the graph "
                f"({partition.num_vertices} vs {graph.num_vertices})"
            )
        document["partition"] = [int(label) for label in partition.labels]
    if metadata is not None:
        document["metadata"] = metadata
    return document


def graph_from_dict(document: dict[str, Any]) -> tuple[Graph, Partition | None, dict[str, Any]]:
    """Inverse of :func:`graph_to_dict`; returns ``(graph, partition, metadata)``."""
    try:
        num_vertices = int(document["num_vertices"])
        edges = [(int(u), int(v)) for u, v in document["edges"]]
    except (KeyError, TypeError, ValueError) as error:
        raise GraphError(f"malformed graph document: {error}") from error
    graph = Graph(num_vertices, edges)
    partition = None
    if "partition" in document and document["partition"] is not None:
        labels = np.asarray(document["partition"], dtype=np.int64)
        if len(labels) != num_vertices:
            raise GraphError(
                f"partition length {len(labels)} does not match vertex count {num_vertices}"
            )
        partition = Partition.from_labels(labels)
    metadata = dict(document.get("metadata", {}))
    return graph, partition, metadata


def write_graph_json(
    path: str | Path,
    graph: Graph,
    partition: Partition | None = None,
    metadata: dict[str, Any] | None = None,
) -> None:
    """Write a graph bundle to a JSON file."""
    document = graph_to_dict(graph, partition=partition, metadata=metadata)
    Path(path).write_text(json.dumps(document), encoding="utf-8")


def read_graph_json(path: str | Path) -> tuple[Graph, Partition | None, dict[str, Any]]:
    """Read a graph bundle written by :func:`write_graph_json`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return graph_from_dict(document)
