"""Reading and writing graphs and partitions.

Two interchange formats are supported:

* a plain **edge list** text format (one ``u v`` pair per line, ``#`` comments,
  with an optional header recording the vertex count so isolated vertices are
  preserved), and
* a **JSON** document bundling a graph with an optional ground-truth partition
  and generator metadata, which is what the experiment harness uses to cache
  generated PPM instances between benchmark runs.
"""

from __future__ import annotations

import io
import json
import re
from pathlib import Path
from typing import Any

import numpy as np

from ..exceptions import GraphError
from .graph import Graph
from .partition import Partition

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "graph_to_dict",
    "graph_from_dict",
    "write_graph_json",
    "read_graph_json",
]

_HEADER_PREFIX = "# vertices:"


#: Matches the vertex-count header line anywhere in the file — like every
#: comment it may be indented (the old per-line reader stripped before
#: matching, and ``loadtxt`` likewise skips indented ``#`` lines).  The
#: value is captured loosely and validated separately so a malformed header
#: still errors instead of being silently read as a plain comment.
_HEADER_PATTERN = re.compile(
    rf"^[ \t]*{re.escape(_HEADER_PREFIX)}(.*)$", flags=re.MULTILINE
)

#: Matches the first line that is neither blank nor a ``#`` comment — one
#: C-speed scan deciding whether the file holds any edges at all (``loadtxt``
#: warns on empty input instead of returning an empty array).
_DATA_LINE_PATTERN = re.compile(r"^[ \t]*[^#\s]", flags=re.MULTILINE)


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` as an edge list with a vertex-count header.

    The body is rendered from the bulk :meth:`~repro.graphs.graph.Graph.edge_array`
    (one C-level ``tolist`` instead of the per-edge CSR-chunk generator).
    """
    path = Path(path)
    lines = [f"{_HEADER_PREFIX} {graph.num_vertices}"]
    lines.extend(f"{u} {v}" for u, v in graph.edge_array().tolist())
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(path: str | Path, num_vertices: int | None = None) -> Graph:
    """Read an edge list written by :func:`write_edge_list` (or any ``u v`` file).

    ``num_vertices`` overrides the header / inferred vertex count; when absent
    and no header is present, the count is ``max vertex id + 1``.  Blank
    lines and ``#`` comments are skipped; columns beyond the first two are
    ignored.  Parsing is one :func:`numpy.loadtxt` pass straight into the
    ``(m, 2)`` array the vectorized :meth:`Graph.from_edge_array`
    constructor consumes — no per-edge Python tuples (the former loop
    dominated million-edge loads; see ``tests/test_graphs_io.py``'s
    slow-marked round trip).
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    header_vertices: int | None = None
    headers = _HEADER_PATTERN.findall(text)
    if headers:
        # Multiple headers: the last one wins, as in the per-line reader.
        try:
            header_vertices = int(headers[-1].strip())
        except ValueError:
            raise GraphError(
                f"{path}: malformed vertex-count header: "
                f"{(_HEADER_PREFIX + headers[-1]).strip()!r}"
            ) from None

    if _DATA_LINE_PATTERN.search(text) is None:
        edge_array = np.empty((0, 2), dtype=np.int64)
    else:
        try:
            edge_array = np.loadtxt(
                io.StringIO(text),
                dtype=np.int64,
                comments="#",
                usecols=(0, 1),
                ndmin=2,
            )
        except (ValueError, IndexError) as error:
            raise GraphError(f"{path}: malformed edge list: {error}") from None

    if num_vertices is None:
        if header_vertices is not None:
            num_vertices = header_vertices
        elif edge_array.size:
            num_vertices = int(edge_array.max()) + 1
        else:
            num_vertices = 0
    return Graph.from_edge_array(num_vertices, edge_array)


def graph_to_dict(
    graph: Graph,
    partition: Partition | None = None,
    metadata: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Serialize a graph (and optional partition / metadata) to plain Python types."""
    document: dict[str, Any] = {
        "num_vertices": graph.num_vertices,
        # Bulk array serialization: edge_array().tolist() emits the same
        # [[u, v], ...] pairs the former per-edge loop built, in one C pass.
        "edges": graph.edge_array().tolist(),
    }
    if partition is not None:
        if partition.num_vertices != graph.num_vertices:
            raise GraphError(
                "partition covers a different vertex count than the graph "
                f"({partition.num_vertices} vs {graph.num_vertices})"
            )
        document["partition"] = partition.labels.tolist()
    if metadata is not None:
        document["metadata"] = metadata
    return document


def graph_from_dict(document: dict[str, Any]) -> tuple[Graph, Partition | None, dict[str, Any]]:
    """Inverse of :func:`graph_to_dict`; returns ``(graph, partition, metadata)``."""
    try:
        num_vertices = int(document["num_vertices"])
        # One bulk conversion onto the vectorized constructor path; the
        # int64 cast truncates floats exactly like the former per-pair
        # ``int()`` loop did.
        edge_array = np.asarray(document["edges"], dtype=np.int64)
    except (KeyError, TypeError, ValueError) as error:
        raise GraphError(f"malformed graph document: {error}") from error
    if edge_array.size == 0:
        edge_array = np.empty((0, 2), dtype=np.int64)
    graph = Graph(num_vertices, edge_array)
    partition = None
    if "partition" in document and document["partition"] is not None:
        labels = np.asarray(document["partition"], dtype=np.int64)
        if len(labels) != num_vertices:
            raise GraphError(
                f"partition length {len(labels)} does not match vertex count {num_vertices}"
            )
        partition = Partition.from_labels(labels)
    metadata = dict(document.get("metadata", {}))
    return graph, partition, metadata


def write_graph_json(
    path: str | Path,
    graph: Graph,
    partition: Partition | None = None,
    metadata: dict[str, Any] | None = None,
) -> None:
    """Write a graph bundle to a JSON file."""
    document = graph_to_dict(graph, partition=partition, metadata=metadata)
    Path(path).write_text(json.dumps(document), encoding="utf-8")


def read_graph_json(path: str | Path) -> tuple[Graph, Partition | None, dict[str, Any]]:
    """Read a graph bundle written by :func:`write_graph_json`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return graph_from_dict(document)
