"""Reading and writing graphs and partitions.

Four interchange formats are supported:

* a plain **edge list** text format (one ``u v`` pair per line, ``#`` comments,
  with an optional header recording the vertex count so isolated vertices are
  preserved),
* a **JSON** document bundling a graph with an optional ground-truth partition
  and generator metadata, which is what the experiment harness uses to cache
  generated PPM instances between benchmark runs,
* a **SNAP-style edge list** (:func:`read_snap_edge_list`): the de-facto
  public-dataset format — ``#`` comment lines, whitespace-separated endpoint
  columns, arbitrary (non-contiguous) vertex ids, optionally gzipped.  Ids
  are remapped to ``0..n-1`` and self loops dropped, feeding the vectorized
  :meth:`Graph.from_edge_array` constructor, and
* a **binary CSR** file (:func:`write_csr_graph` / :func:`read_csr_graph`):
  the adjacency arrays verbatim, 8-byte aligned, so
  :class:`~repro.graphs.storage.MemmapStorage` can map them back read-only
  with zero parsing — the disk tier of the storage-backend abstraction.

:func:`load_graph_file` sniffs a path and dispatches to the right reader;
``repro detect --graph-file`` is a thin wrapper over it.
"""

from __future__ import annotations

import gzip
import io
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..exceptions import GraphError
from .graph import Graph
from .partition import Partition
from .storage import STORAGE_MEMMAP, MemmapStorage, resolve_storage, storage_from_arrays

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "graph_to_dict",
    "graph_from_dict",
    "write_graph_json",
    "read_graph_json",
    "write_csr_graph",
    "write_csr_arrays",
    "read_csr_graph",
    "read_csr_layout",
    "CSRFileLayout",
    "read_snap_edge_list",
    "SnapEdgeList",
    "load_graph_file",
]

_HEADER_PREFIX = "# vertices:"


#: Matches the vertex-count header line anywhere in the file — like every
#: comment it may be indented (the old per-line reader stripped before
#: matching, and ``loadtxt`` likewise skips indented ``#`` lines).  The
#: value is captured loosely and validated separately so a malformed header
#: still errors instead of being silently read as a plain comment.
_HEADER_PATTERN = re.compile(
    rf"^[ \t]*{re.escape(_HEADER_PREFIX)}(.*)$", flags=re.MULTILINE
)

#: Matches the first line that is neither blank nor a ``#`` comment — one
#: C-speed scan deciding whether the file holds any edges at all (``loadtxt``
#: warns on empty input instead of returning an empty array).
_DATA_LINE_PATTERN = re.compile(r"^[ \t]*[^#\s]", flags=re.MULTILINE)


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` as an edge list with a vertex-count header.

    The body is rendered from the bulk :meth:`~repro.graphs.graph.Graph.edge_array`
    (one C-level ``tolist`` instead of the per-edge CSR-chunk generator).
    """
    path = Path(path)
    lines = [f"{_HEADER_PREFIX} {graph.num_vertices}"]
    lines.extend(f"{u} {v}" for u, v in graph.edge_array().tolist())
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(path: str | Path, num_vertices: int | None = None) -> Graph:
    """Read an edge list written by :func:`write_edge_list` (or any ``u v`` file).

    ``num_vertices`` overrides the header / inferred vertex count; when absent
    and no header is present, the count is ``max vertex id + 1``.  Blank
    lines and ``#`` comments are skipped; columns beyond the first two are
    ignored.  Parsing is one :func:`numpy.loadtxt` pass straight into the
    ``(m, 2)`` array the vectorized :meth:`Graph.from_edge_array`
    constructor consumes — no per-edge Python tuples (the former loop
    dominated million-edge loads; see ``tests/test_graphs_io.py``'s
    slow-marked round trip).
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    header_vertices: int | None = None
    headers = _HEADER_PATTERN.findall(text)
    if headers:
        # Multiple headers: the last one wins, as in the per-line reader.
        try:
            header_vertices = int(headers[-1].strip())
        except ValueError:
            raise GraphError(
                f"{path}: malformed vertex-count header: "
                f"{(_HEADER_PREFIX + headers[-1]).strip()!r}"
            ) from None

    if _DATA_LINE_PATTERN.search(text) is None:
        edge_array = np.empty((0, 2), dtype=np.int64)
    else:
        try:
            edge_array = np.loadtxt(
                io.StringIO(text),
                dtype=np.int64,
                comments="#",
                usecols=(0, 1),
                ndmin=2,
            )
        except (ValueError, IndexError) as error:
            raise GraphError(f"{path}: malformed edge list: {error}") from None

    if num_vertices is None:
        if header_vertices is not None:
            num_vertices = header_vertices
        elif edge_array.size:
            num_vertices = int(edge_array.max()) + 1
        else:
            num_vertices = 0
    return Graph.from_edge_array(num_vertices, edge_array)


def graph_to_dict(
    graph: Graph,
    partition: Partition | None = None,
    metadata: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Serialize a graph (and optional partition / metadata) to plain Python types."""
    document: dict[str, Any] = {
        "num_vertices": graph.num_vertices,
        # Bulk array serialization: edge_array().tolist() emits the same
        # [[u, v], ...] pairs the former per-edge loop built, in one C pass.
        "edges": graph.edge_array().tolist(),
    }
    if partition is not None:
        if partition.num_vertices != graph.num_vertices:
            raise GraphError(
                "partition covers a different vertex count than the graph "
                f"({partition.num_vertices} vs {graph.num_vertices})"
            )
        document["partition"] = partition.labels.tolist()
    if metadata is not None:
        document["metadata"] = metadata
    return document


def graph_from_dict(document: dict[str, Any]) -> tuple[Graph, Partition | None, dict[str, Any]]:
    """Inverse of :func:`graph_to_dict`; returns ``(graph, partition, metadata)``."""
    try:
        num_vertices = int(document["num_vertices"])
        # One bulk conversion onto the vectorized constructor path; the
        # int64 cast truncates floats exactly like the former per-pair
        # ``int()`` loop did.
        edge_array = np.asarray(document["edges"], dtype=np.int64)
    except (KeyError, TypeError, ValueError) as error:
        raise GraphError(f"malformed graph document: {error}") from error
    if edge_array.size == 0:
        edge_array = np.empty((0, 2), dtype=np.int64)
    graph = Graph(num_vertices, edge_array)
    partition = None
    if "partition" in document and document["partition"] is not None:
        labels = np.asarray(document["partition"], dtype=np.int64)
        if len(labels) != num_vertices:
            raise GraphError(
                f"partition length {len(labels)} does not match vertex count {num_vertices}"
            )
        partition = Partition.from_labels(labels)
    metadata = dict(document.get("metadata", {}))
    return graph, partition, metadata


def write_graph_json(
    path: str | Path,
    graph: Graph,
    partition: Partition | None = None,
    metadata: dict[str, Any] | None = None,
) -> None:
    """Write a graph bundle to a JSON file."""
    document = graph_to_dict(graph, partition=partition, metadata=metadata)
    Path(path).write_text(json.dumps(document), encoding="utf-8")


def read_graph_json(path: str | Path) -> tuple[Graph, Partition | None, dict[str, Any]]:
    """Read a graph bundle written by :func:`write_graph_json`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return graph_from_dict(document)


# ----------------------------------------------------------------------
# Binary CSR format (the memmap storage backend's on-disk form)
# ----------------------------------------------------------------------
#: File magic of the binary CSR format; also what :func:`load_graph_file`
#: sniffs to recognize the format regardless of the file's extension.
CSR_MAGIC = b"REPROCSR"

#: Format version written into (and required from) the JSON header.
CSR_FORMAT_VERSION = 1

#: Size of the fixed preamble: the 8-byte magic plus the uint64 header length.
_CSR_PREAMBLE_BYTES = 16


@dataclass(frozen=True)
class CSRFileLayout:
    """Where each CSR array lives inside a ``.csr`` file.

    Offsets are absolute byte positions; all three arrays are little-endian
    int64 (``<i8``) and 8-byte aligned, so :class:`numpy.memmap` windows
    over them need no conversion.
    """

    num_vertices: int
    num_arcs: int
    indptr_offset: int
    indices_offset: int
    degrees_offset: int


def write_csr_arrays(
    path: str | Path,
    num_vertices: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
) -> None:
    """Write raw CSR arrays to ``path`` in the binary ``.csr`` format.

    Layout: the 8-byte magic, a little-endian uint64 holding the (padded)
    JSON header length, the JSON header (space-padded to an 8-byte
    boundary), then ``indptr`` / ``indices`` / ``degrees`` back to back as
    raw ``<i8`` — every array offset is a multiple of 8, the alignment
    :class:`~repro.graphs.storage.MemmapStorage` maps them back at.
    """
    num_vertices = int(num_vertices)
    if indptr.shape != (num_vertices + 1,) or degrees.shape != (num_vertices,):
        raise GraphError(
            f"CSR arrays do not describe a graph on {num_vertices} vertices "
            f"(indptr {indptr.shape}, degrees {degrees.shape})"
        )
    if len(indices) != int(indptr[-1]):
        raise GraphError(
            f"indptr[-1] ({int(indptr[-1])}) does not match the arc count ({len(indices)})"
        )
    header = json.dumps(
        {
            "version": CSR_FORMAT_VERSION,
            "num_vertices": num_vertices,
            "num_arcs": len(indices),
            "dtype": "<i8",
        }
    ).encode("ascii")
    padded = header + b" " * (-len(header) % 8)
    with open(path, "wb") as stream:
        stream.write(CSR_MAGIC)
        stream.write(len(padded).to_bytes(8, "little"))
        stream.write(padded)
        for array in (indptr, indices, degrees):
            np.ascontiguousarray(array, dtype=np.dtype("<i8")).tofile(stream)


def write_csr_graph(graph: Graph, path: str | Path) -> None:
    """Write ``graph``'s adjacency to ``path`` in the binary ``.csr`` format.

    The inverse :func:`read_csr_graph` (and the ``memmap`` storage backend)
    reproduce the graph bit-identically — same arrays, hence same floats out
    of every kernel (pinned by ``tests/test_graphs_io.py``).
    """
    indptr, indices, degrees = graph.csr_arrays()
    write_csr_arrays(path, graph.num_vertices, indptr, indices, degrees)


def read_csr_layout(path: str | Path) -> CSRFileLayout:
    """Parse and validate the header of a ``.csr`` file (no array data is read)."""
    path = Path(path)
    with open(path, "rb") as stream:
        preamble = stream.read(_CSR_PREAMBLE_BYTES)
        if len(preamble) < _CSR_PREAMBLE_BYTES or preamble[:8] != CSR_MAGIC:
            raise GraphError(f"{path}: not a {CSR_MAGIC.decode('ascii')} CSR graph file")
        header_bytes = int.from_bytes(preamble[8:], "little")
        raw_header = stream.read(header_bytes)
    if len(raw_header) < header_bytes:
        raise GraphError(f"{path}: truncated CSR header")
    try:
        header = json.loads(raw_header)
        version = int(header["version"])
        num_vertices = int(header["num_vertices"])
        num_arcs = int(header["num_arcs"])
        dtype = str(header["dtype"])
    except (ValueError, KeyError, TypeError) as error:
        raise GraphError(f"{path}: malformed CSR header: {error}") from None
    if version != CSR_FORMAT_VERSION:
        raise GraphError(
            f"{path}: unsupported CSR format version {version} "
            f"(this build reads version {CSR_FORMAT_VERSION})"
        )
    if dtype != "<i8":
        raise GraphError(f"{path}: unsupported CSR array dtype {dtype!r}")
    if num_vertices < 0 or num_arcs < 0:
        raise GraphError(f"{path}: negative sizes in CSR header")
    indptr_offset = _CSR_PREAMBLE_BYTES + header_bytes
    indices_offset = indptr_offset + (num_vertices + 1) * 8
    degrees_offset = indices_offset + num_arcs * 8
    expected_size = degrees_offset + num_vertices * 8
    if path.stat().st_size < expected_size:
        raise GraphError(
            f"{path}: truncated CSR file "
            f"({path.stat().st_size} bytes, header promises {expected_size})"
        )
    return CSRFileLayout(
        num_vertices=num_vertices,
        num_arcs=num_arcs,
        indptr_offset=indptr_offset,
        indices_offset=indices_offset,
        degrees_offset=degrees_offset,
    )


def read_csr_graph(
    path: str | Path, *, storage: str = STORAGE_MEMMAP, validate: bool = True
) -> Graph:
    """Read a ``.csr`` file back into a :class:`Graph`.

    ``storage`` selects where the arrays land: the default ``"memmap"`` maps
    the file read-only without loading it (the graph then streams from the
    page cache); ``"dense"`` / ``"shm"`` load the arrays into RAM or shared
    segments.  ``validate=False`` skips :meth:`Graph.from_csr`'s structural
    checks for files that provably came out of :func:`write_csr_graph`.
    """
    kind = resolve_storage(storage)
    if kind == STORAGE_MEMMAP:
        backing: Any = MemmapStorage.open(path)
        indptr, indices, degrees = backing.arrays()
    else:
        layout = read_csr_layout(path)
        loaded = [
            np.fromfile(path, dtype=np.dtype("<i8"), count=count, offset=offset)
            for offset, count in (
                (layout.indptr_offset, layout.num_vertices + 1),
                (layout.indices_offset, layout.num_arcs),
                (layout.degrees_offset, layout.num_vertices),
            )
        ]
        backing = storage_from_arrays(kind, layout.num_vertices, *loaded)
        indptr, indices, degrees = backing.arrays()
    return Graph.from_csr(
        backing.num_vertices,
        indptr,
        indices,
        degrees=degrees,
        validate=validate,
        storage=backing,
    )


# ----------------------------------------------------------------------
# SNAP-style edge lists (public datasets)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SnapEdgeList:
    """A SNAP-format dataset loaded into the library's vertex numbering.

    ``vertex_ids[new]`` is the original dataset id of library vertex
    ``new`` (sorted ascending, so the remap is deterministic); vertices
    appearing only in dropped self loops are kept as isolated vertices.
    """

    graph: Graph
    vertex_ids: np.ndarray
    num_self_loops: int


def read_snap_edge_list(path: str | Path) -> SnapEdgeList:
    """Read a SNAP-style edge list: ``#`` comments, gzip, arbitrary vertex ids.

    Each non-comment line holds at least two whitespace-separated integer
    columns (extra columns — weights, timestamps — are ignored).  Ids need
    not be contiguous or start at zero: the distinct ids are remapped to
    ``0..n-1`` in ascending order (``vertex_ids`` records the inverse).
    Self loops — present in several SNAP datasets — are dropped and counted;
    duplicate edges collapse in the :class:`Graph` constructor.  Gzipped
    files are detected by content (the two-byte gzip magic), not extension.
    """
    text = _read_maybe_gzip(path)
    if _DATA_LINE_PATTERN.search(text) is None:
        return SnapEdgeList(
            graph=Graph(0, np.empty((0, 2), dtype=np.int64)),
            vertex_ids=np.empty(0, dtype=np.int64),
            num_self_loops=0,
        )
    try:
        edge_array = np.loadtxt(
            io.StringIO(text), dtype=np.int64, comments="#", usecols=(0, 1), ndmin=2
        )
    except (ValueError, IndexError) as error:
        raise GraphError(f"{path}: malformed SNAP edge list: {error}") from None
    vertex_ids = np.unique(edge_array)
    loops = edge_array[:, 0] == edge_array[:, 1]
    remapped = np.searchsorted(vertex_ids, edge_array[~loops])
    return SnapEdgeList(
        graph=Graph.from_edge_array(len(vertex_ids), remapped),
        vertex_ids=vertex_ids,
        num_self_loops=int(np.count_nonzero(loops)),
    )


def _read_maybe_gzip(path: str | Path) -> str:
    """Read a text file, transparently decompressing gzip (sniffed by magic)."""
    with open(path, "rb") as stream:
        magic = stream.read(2)
    if magic == b"\x1f\x8b":
        with gzip.open(path, "rt", encoding="utf-8") as compressed:
            return str(compressed.read())
    return Path(path).read_text(encoding="utf-8")


def load_graph_file(
    path: str | Path, *, storage: str | None = None
) -> tuple[Graph, Partition | None, dict[str, Any]]:
    """Load a graph from ``path``, sniffing the format.

    Dispatch order: the binary CSR magic (mapped through the ``memmap``
    backend unless ``storage`` overrides), then a ``.json`` suffix (graph
    bundle, possibly carrying a ground-truth partition), then text edge
    lists — the repo's own headered format via :func:`read_edge_list` when
    the ``# vertices:`` header is present, SNAP-style (gzip, arbitrary ids)
    otherwise.  Returns ``(graph, partition-or-None, info)`` where ``info``
    records the detected format for reporting.
    """
    path = Path(path)
    with open(path, "rb") as stream:
        magic = stream.read(8)
    if magic == CSR_MAGIC:
        kind = resolve_storage(storage) if storage is not None else STORAGE_MEMMAP
        graph = read_csr_graph(path, storage=kind)
        return graph, None, {"format": "csr", "storage": kind}
    if path.suffix.lower() == ".json":
        graph, partition, metadata = read_graph_json(path)
        info: dict[str, Any] = {"format": "json"}
        if metadata:
            info["metadata"] = metadata
        return graph, partition, info
    if magic[:2] != b"\x1f\x8b" and _HEADER_PATTERN.search(
        Path(path).read_text(encoding="utf-8")
    ):
        return read_edge_list(path), None, {"format": "edge-list"}
    snap = read_snap_edge_list(path)
    return (
        snap.graph,
        None,
        {
            "format": "snap",
            "num_self_loops": snap.num_self_loops,
            "num_source_ids": len(snap.vertex_ids),
        },
    )

