"""The static undirected graph used throughout the library.

The CDRW algorithm and its analysis operate on simple undirected graphs
(no self loops, no parallel edges).  :class:`Graph` stores the adjacency
structure in a compressed sparse row (CSR) layout so that degree lookups,
neighbour iteration and the sparse transition operator used by the random
walk substrate are all cheap, while still exposing a convenient Pythonic
interface (``graph.neighbors(u)``, ``graph.degree(u)``, ``u in graph`` ...).

Vertices are always the integers ``0 .. n-1``; callers that need richer
identifiers can keep their own mapping.  This matches both the CONGEST
simulator (node IDs) and the k-machine random vertex partition (IDs are
hashed to machines).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from ..exceptions import GraphError

__all__ = ["Graph"]


class Graph:
    """An immutable, simple, undirected graph on vertices ``0..n-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``.
    edges:
        Iterable of ``(u, v)`` pairs.  Self loops are rejected; duplicate
        edges (in either orientation) are collapsed.

    Notes
    -----
    The class is intentionally immutable: the CDRW algorithm never modifies
    its input graph, and immutability lets the transition operator, degree
    vector and edge arrays be computed once and shared freely between the
    centralized executor, the CONGEST simulator and the k-machine simulator.
    """

    __slots__ = ("_n", "_indptr", "_indices", "_degrees", "_num_edges", "_adjacency_cache")

    def __init__(self, num_vertices: int, edges: Iterable[tuple[int, int]]):
        if num_vertices < 0:
            raise GraphError(f"number of vertices must be non-negative, got {num_vertices}")
        self._n = int(num_vertices)

        unique: set[tuple[int, int]] = set()
        for u, v in edges:
            u = int(u)
            v = int(v)
            if u == v:
                raise GraphError(f"self loops are not allowed (vertex {u})")
            if not (0 <= u < self._n) or not (0 <= v < self._n):
                raise GraphError(
                    f"edge ({u}, {v}) out of range for a graph on {self._n} vertices"
                )
            unique.add((u, v) if u < v else (v, u))

        self._num_edges = len(unique)
        # Build CSR adjacency from the undirected edge set.
        if unique:
            edge_array = np.asarray(sorted(unique), dtype=np.int64)
            sources = np.concatenate([edge_array[:, 0], edge_array[:, 1]])
            targets = np.concatenate([edge_array[:, 1], edge_array[:, 0]])
        else:
            sources = np.empty(0, dtype=np.int64)
            targets = np.empty(0, dtype=np.int64)

        order = np.lexsort((targets, sources))
        sources = sources[order]
        targets = targets[order]
        counts = np.bincount(sources, minlength=self._n)
        self._degrees = counts.astype(np.int64)
        self._indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self._indices = targets
        self._adjacency_cache: sp.csr_matrix | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_array(cls, num_vertices: int, edge_array: np.ndarray) -> "Graph":
        """Build a graph from an ``(m, 2)`` numpy array of edges."""
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphError(f"edge array must have shape (m, 2), got {edge_array.shape}")
        return cls(num_vertices, (tuple(edge) for edge in edge_array.tolist()))

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Convert a :mod:`networkx` graph whose nodes are ``0..n-1``."""
        nodes = sorted(nx_graph.nodes())
        expected = list(range(len(nodes)))
        if nodes != expected:
            raise GraphError("networkx graph nodes must be exactly 0..n-1")
        return cls(len(nodes), nx_graph.edges())

    def to_networkx(self):
        """Return a :class:`networkx.Graph` copy (for plotting / cross-checks)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self._n))
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """The number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """The number of undirected edges ``m``."""
        return self._num_edges

    @property
    def volume(self) -> int:
        """The volume of the full vertex set, ``µ(V) = 2m``."""
        return 2 * self._num_edges

    def vertices(self) -> range:
        """Return the vertex range ``0..n-1``."""
        return range(self._n)

    def degree(self, vertex: int) -> int:
        """Return the degree ``d(v)`` of ``vertex``."""
        self._check_vertex(vertex)
        return int(self._degrees[vertex])

    def degrees(self) -> np.ndarray:
        """Return the degree vector as a read-only numpy array."""
        view = self._degrees.view()
        view.flags.writeable = False
        return view

    def max_degree(self) -> int:
        """Return the maximum degree ``Δ`` (0 for an empty graph)."""
        if self._n == 0:
            return 0
        return int(self._degrees.max())

    def min_degree(self) -> int:
        """Return the minimum degree (0 for an empty graph)."""
        if self._n == 0:
            return 0
        return int(self._degrees.min())

    def average_degree(self) -> float:
        """Return the average degree ``2m / n`` (0 for an empty graph)."""
        if self._n == 0:
            return 0.0
        return self.volume / self._n

    def neighbors(self, vertex: int) -> np.ndarray:
        """Return the sorted neighbour array of ``vertex`` (read-only view)."""
        self._check_vertex(vertex)
        view = self._indices[self._indptr[vertex]:self._indptr[vertex + 1]]
        view = view.view()
        view.flags.writeable = False
        return view

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when the undirected edge ``(u, v)`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        neighbors = self._indices[self._indptr[u]:self._indptr[u + 1]]
        position = np.searchsorted(neighbors, v)
        return position < len(neighbors) and neighbors[position] == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            for v in self._indices[self._indptr[u]:self._indptr[u + 1]]:
                if u < v:
                    yield (u, int(v))

    def edge_array(self) -> np.ndarray:
        """Return all undirected edges as an ``(m, 2)`` array with ``u < v`` rows."""
        if self._num_edges == 0:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(list(self.edges()), dtype=np.int64)

    # ------------------------------------------------------------------
    # Matrix views
    # ------------------------------------------------------------------
    def adjacency_matrix(self) -> sp.csr_matrix:
        """Return the sparse adjacency matrix ``A`` (cached)."""
        if self._adjacency_cache is None:
            data = np.ones(len(self._indices), dtype=np.float64)
            self._adjacency_cache = sp.csr_matrix(
                (data, self._indices, self._indptr), shape=(self._n, self._n)
            )
        return self._adjacency_cache

    # ------------------------------------------------------------------
    # Set operations used by the analysis
    # ------------------------------------------------------------------
    def subset_volume(self, subset: Iterable[int]) -> int:
        """Return ``µ(S) = Σ_{v ∈ S} d(v)`` for the vertex subset ``S``."""
        indices = self._as_index_array(subset)
        return int(self._degrees[indices].sum())

    def cut_size(self, subset: Iterable[int]) -> int:
        """Return ``|E(S, V\\S)|`` — the number of edges leaving ``subset``."""
        indices = self._as_index_array(subset)
        membership = np.zeros(self._n, dtype=bool)
        membership[indices] = True
        if not membership.any() or membership.all():
            return 0
        # For every directed arc (u -> v) with u in S, count arcs whose head
        # is outside S.  Each undirected cut edge is counted exactly once.
        cut = 0
        for u in indices:
            neighbors = self._indices[self._indptr[u]:self._indptr[u + 1]]
            cut += int(np.count_nonzero(~membership[neighbors]))
        return cut

    def induced_edge_count(self, subset: Iterable[int]) -> int:
        """Return the number of edges with both endpoints in ``subset``."""
        indices = self._as_index_array(subset)
        membership = np.zeros(self._n, dtype=bool)
        membership[indices] = True
        inside_arcs = 0
        for u in indices:
            neighbors = self._indices[self._indptr[u]:self._indptr[u + 1]]
            inside_arcs += int(np.count_nonzero(membership[neighbors]))
        return inside_arcs // 2

    def induced_subgraph(self, subset: Sequence[int]) -> tuple["Graph", dict[int, int]]:
        """Return the subgraph induced by ``subset`` and the old→new vertex map."""
        indices = self._as_index_array(subset)
        mapping = {int(old): new for new, old in enumerate(indices)}
        membership = np.zeros(self._n, dtype=bool)
        membership[indices] = True
        edges = []
        for old_u in indices:
            new_u = mapping[int(old_u)]
            neighbors = self._indices[self._indptr[old_u]:self._indptr[old_u + 1]]
            for old_v in neighbors[membership[neighbors]]:
                if int(old_u) < int(old_v):
                    edges.append((new_u, mapping[int(old_v)]))
        return Graph(len(indices), edges), mapping

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __contains__(self, vertex: int) -> bool:
        return isinstance(vertex, (int, np.integer)) and 0 <= int(vertex) < self._n

    def __len__(self) -> int:
        return self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and self._num_edges == other._num_edges
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash is sufficient
        return object.__hash__(self)

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._num_edges})"

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _check_vertex(self, vertex: int) -> None:
        if not (0 <= int(vertex) < self._n):
            raise GraphError(f"vertex {vertex} out of range for a graph on {self._n} vertices")

    def _as_index_array(self, subset: Iterable[int]) -> np.ndarray:
        indices = np.fromiter((int(v) for v in subset), dtype=np.int64)
        if len(indices) == 0:
            return indices
        if indices.min() < 0 or indices.max() >= self._n:
            raise GraphError("subset contains vertices outside the graph")
        if len(np.unique(indices)) != len(indices):
            raise GraphError("subset contains duplicate vertices")
        return indices
