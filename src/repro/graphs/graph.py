"""The static undirected graph used throughout the library.

The CDRW algorithm and its analysis operate on simple undirected graphs
(no self loops, no parallel edges).  :class:`Graph` stores the adjacency
structure in a compressed sparse row (CSR) layout so that degree lookups,
neighbour iteration and the sparse transition operator used by the random
walk substrate are all cheap, while still exposing a convenient Pythonic
interface (``graph.neighbors(u)``, ``graph.degree(u)``, ``u in graph`` ...).

Vertices are always the integers ``0 .. n-1``; callers that need richer
identifiers can keep their own mapping.  This matches both the CONGEST
simulator (node IDs) and the k-machine random vertex partition (IDs are
hashed to machines).

Construction and the subset kernels are fully vectorized:

* the CSR layout is built from an ``(m, 2)`` int64 array with no Python
  loop — both arc directions are scattered through scipy's C-implemented
  COO→CSR conversion, which collapses duplicate edges (in either
  orientation) and yields the row-sorted structure in near-linear time;
* ``cut_size`` / ``induced_edge_count`` / ``induced_subgraph`` gather the
  concatenated neighbour lists of the subset with one fancy-indexing pass,
  so they run in O(vol(S) + |S|) numpy work instead of a per-vertex loop;
* ``edge_array`` derives the ``u < v`` edge list directly from the
  ``indptr``/``indices`` arrays.

The pre-vectorization scalar kernels are preserved in
:mod:`repro.graphs.reference`; ``tests/test_vectorized_equivalence.py``
asserts the two produce identical results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from ..exceptions import GraphError

if TYPE_CHECKING:
    from .storage import CSRStorage

__all__ = ["Graph"]


class Graph:
    """An immutable, simple, undirected graph on vertices ``0..n-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``.
    edges:
        Iterable of ``(u, v)`` pairs, or an ``(m, 2)`` numpy array (the fast
        path — tuple iterables are converted to an array and take the same
        vectorized route).  Self loops are rejected; duplicate edges (in
        either orientation) are collapsed.

    Notes
    -----
    The class is intentionally immutable: the CDRW algorithm never modifies
    its input graph, and immutability lets the transition operator, degree
    vector and edge arrays be computed once and shared freely between the
    centralized executor, the CONGEST simulator and the k-machine simulator.
    """

    __slots__ = (
        "_n",
        "_indptr",
        "_indices",
        "_degrees",
        "_num_edges",
        "_adjacency_cache",
        "_storage",
    )

    def __init__(
        self, num_vertices: int, edges: Iterable[tuple[int, int]] | np.ndarray
    ) -> None:
        if num_vertices < 0:
            raise GraphError(f"number of vertices must be non-negative, got {num_vertices}")
        self._n = int(num_vertices)
        self._build_csr(_coerce_edge_array(edges))

    def _build_csr(self, edge_array: np.ndarray) -> None:
        """Build the CSR adjacency from a raw ``(m, 2)`` int64 edge array.

        Pure array work, no Python loop: validate all edges at once, scatter
        both arc directions through scipy's C-implemented COO→CSR conversion
        (linear-time counting sort plus per-row index sort), and read the
        deduplicated structure back.  Duplicate edges in either orientation
        collapse because the conversion sums duplicate entries — only the
        structure is kept.  Roughly two orders of magnitude faster than the
        original one-tuple-at-a-time set loop on million-edge inputs
        (see ``benchmarks/bench_graph_kernel.py``).

        The finished arrays are handed to the resolved storage backend
        (:mod:`repro.graphs.storage`): ``dense`` pins them read-only in RAM
        (the default, no copy), ``shm``/``memmap`` move them into shared
        segments or a disk-backed mapping.  The ``REPRO_STORAGE`` variable
        selects the backend process-wide; every kernel reads the arrays
        through the same read-only views regardless.
        """
        n = self._n
        if edge_array.size:
            u = edge_array[:, 0]
            v = edge_array[:, 1]
            loops = u == v
            bad = loops | (u < 0) | (u >= n) | (v < 0) | (v >= n)
            if bad.any():
                first = int(np.argmax(bad))
                if loops[first]:
                    raise GraphError(f"self loops are not allowed (vertex {int(u[first])})")
                raise GraphError(
                    f"edge ({int(u[first])}, {int(v[first])}) out of range "
                    f"for a graph on {n} vertices"
                )
            adjacency = sp.coo_matrix(
                (
                    np.ones(2 * len(u), dtype=np.float64),
                    (np.concatenate([u, v]), np.concatenate([v, u])),
                ),
                shape=(n, n),
            ).tocsr()
            adjacency.sort_indices()
            self._num_edges = int(adjacency.nnz) // 2
            indptr = adjacency.indptr.astype(np.int64)
            indices = adjacency.indices.astype(np.int64)
            degrees = np.diff(indptr)
        else:
            self._num_edges = 0
            indices = np.empty(0, dtype=np.int64)
            indptr = np.zeros(n + 1, dtype=np.int64)
            degrees = np.zeros(n, dtype=np.int64)
        # Imported lazily: storage.py needs Graph for the shm attach path,
        # so a module-level import here would be circular.
        from .storage import resolve_storage, storage_from_arrays

        storage = storage_from_arrays(resolve_storage(None), n, indptr, indices, degrees)
        self._indptr, self._indices, self._degrees = storage.arrays()
        self._storage = storage
        # Only the structure is kept (the data values are duplicate
        # multiplicities); adjacency_matrix() rebuilds a ones-data matrix
        # lazily for the graphs that actually need it.
        self._adjacency_cache: sp.csr_matrix | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_array(cls, num_vertices: int, edge_array: np.ndarray) -> "Graph":
        """Build a graph from an ``(m, 2)`` numpy array of edges.

        The array must have an integer dtype, or a float dtype whose values
        are all finite and exactly integral (a convenience for arrays that
        went through floating-point pipelines); NaN, infinities and
        fractional values are rejected rather than silently truncated.
        """
        array = np.asarray(edge_array)
        if array.ndim != 2 or array.shape[1] != 2:
            raise GraphError(f"edge array must have shape (m, 2), got {array.shape}")
        kind = array.dtype.kind
        if kind == "f":
            _check_finite(array)
            converted = array.astype(np.int64)
            if not (converted == array).all():
                raise GraphError(
                    "edge array contains non-integer values; "
                    "round or cast it explicitly before building a graph"
                )
            array = converted
        elif kind == "u":
            if array.size and array.max() > np.iinfo(np.int64).max:
                raise GraphError("edge array contains values exceeding int64 range")
            array = array.astype(np.int64)
        elif kind == "i":
            array = array.astype(np.int64, copy=False)
        else:
            raise GraphError(f"edge array must have an integer dtype, got {array.dtype}")
        return cls(num_vertices, array)

    @classmethod
    def from_csr(
        cls,
        num_vertices: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        degrees: np.ndarray | None = None,
        validate: bool = True,
        storage: "CSRStorage | None" = None,
    ) -> "Graph":
        """Build a graph directly from prebuilt CSR adjacency arrays.

        The arrays must describe the symmetric arc structure this class
        produces itself: ``indptr`` of shape ``(n + 1,)``, row-sorted
        ``indices`` holding both directions of every undirected edge, and
        (optionally) the per-row ``degrees`` (recomputed from ``indptr`` when
        omitted).  Int64 inputs are adopted **without copying** — the process
        executor uses this to map a shared-memory graph into worker processes
        with zero per-worker rebuild cost — so callers must treat the arrays
        as frozen afterwards (the instance marks its views read-only).

        ``validate=False`` skips the structural checks; reserve it for arrays
        that provably came out of another :class:`Graph` (e.g. a
        shared-memory broadcast of one).

        ``storage`` optionally attaches the
        :class:`~repro.graphs.storage.CSRStorage` whose resources back the
        arrays — a mapped ``.csr`` file, attached shared-memory segments —
        so the backing stays alive (and is released) with the graph.
        """
        if num_vertices < 0:
            raise GraphError(f"number of vertices must be non-negative, got {num_vertices}")
        n = int(num_vertices)
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if degrees is None:
            degrees = np.diff(indptr)
        else:
            degrees = np.ascontiguousarray(degrees, dtype=np.int64)
        if validate:
            if indptr.shape != (n + 1,):
                raise GraphError(
                    f"indptr must have shape ({n + 1},), got {indptr.shape}"
                )
            if indptr[0] != 0 or (np.diff(indptr) < 0).any():
                raise GraphError("indptr must start at 0 and be non-decreasing")
            if int(indptr[-1]) != len(indices):
                raise GraphError(
                    f"indptr[-1] ({int(indptr[-1])}) does not match the arc count "
                    f"({len(indices)})"
                )
            if degrees.shape != (n,) or not np.array_equal(degrees, np.diff(indptr)):
                raise GraphError("degrees do not match the indptr row lengths")
            if len(indices) % 2 != 0:
                raise GraphError(
                    "CSR arc count must be even (each undirected edge stores two arcs)"
                )
            if len(indices):
                if indices.min() < 0 or indices.max() >= n:
                    raise GraphError("indices contain vertices outside the graph")
                rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
                if (rows == indices).any():
                    raise GraphError("self loops are not allowed")
                # Within-row order must be strictly increasing (sorted, no
                # duplicate arcs); decreases are only allowed at row starts.
                decreasing = np.flatnonzero(np.diff(indices) <= 0) + 1
                if not np.isin(decreasing, indptr[1:-1]).all():
                    raise GraphError("indices must be strictly sorted within each row")
        graph = cls.__new__(cls)
        graph._n = n
        graph._indptr = _readonly_view(indptr)
        graph._indices = _readonly_view(indices)
        graph._degrees = _readonly_view(degrees)
        graph._num_edges = len(indices) // 2
        graph._adjacency_cache = None
        graph._storage = storage
        return graph

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(indptr, indices, degrees)`` as read-only views.

        Together with :meth:`from_csr` this is the zero-copy interchange the
        shared-memory process executor uses to broadcast a graph.
        """
        return tuple(
            _readonly_view(array)
            for array in (self._indptr, self._indices, self._degrees)
        )

    @classmethod
    def from_networkx(cls, nx_graph: Any) -> "Graph":
        """Convert a :mod:`networkx` graph whose nodes are ``0..n-1``."""
        nodes = sorted(nx_graph.nodes())
        expected = list(range(len(nodes)))
        if nodes != expected:
            raise GraphError("networkx graph nodes must be exactly 0..n-1")
        return cls(len(nodes), nx_graph.edges())

    def to_networkx(self) -> Any:
        """Return a :class:`networkx.Graph` copy (for plotting / cross-checks)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self._n))
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """The number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """The number of undirected edges ``m``."""
        return self._num_edges

    @property
    def volume(self) -> int:
        """The volume of the full vertex set, ``µ(V) = 2m``."""
        return 2 * self._num_edges

    @property
    def storage_kind(self) -> str:
        """Which storage backend holds the CSR arrays (see :mod:`.storage`).

        Arrays adopted through :meth:`from_csr` without an explicit storage
        object report ``"dense"`` — they are plain in-RAM arrays from this
        graph's point of view, whoever owns them.
        """
        if self._storage is None:
            return "dense"
        return self._storage.kind

    def vertices(self) -> range:
        """Return the vertex range ``0..n-1``."""
        return range(self._n)

    def degree(self, vertex: int) -> int:
        """Return the degree ``d(v)`` of ``vertex``."""
        self._check_vertex(vertex)
        return int(self._degrees[vertex])

    def degrees(self) -> np.ndarray:
        """Return the degree vector as a read-only numpy array."""
        view = self._degrees.view()
        view.flags.writeable = False
        return view

    def max_degree(self) -> int:
        """Return the maximum degree ``Δ`` (0 for an empty graph)."""
        if self._n == 0:
            return 0
        return int(self._degrees.max())

    def min_degree(self) -> int:
        """Return the minimum degree (0 for an empty graph)."""
        if self._n == 0:
            return 0
        return int(self._degrees.min())

    def average_degree(self) -> float:
        """Return the average degree ``2m / n`` (0 for an empty graph)."""
        if self._n == 0:
            return 0.0
        return self.volume / self._n

    def neighbors(self, vertex: int) -> np.ndarray:
        """Return the sorted neighbour array of ``vertex`` (read-only view)."""
        self._check_vertex(vertex)
        view = self._indices[self._indptr[vertex]:self._indptr[vertex + 1]]
        view = view.view()
        view.flags.writeable = False
        return view

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when the undirected edge ``(u, v)`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        neighbors = self._indices[self._indptr[u]:self._indptr[u + 1]]
        position = np.searchsorted(neighbors, v)
        return position < len(neighbors) and neighbors[position] == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected edge once, as ``(u, v)`` with ``u < v``.

        Lazy: edges are derived from the CSR arrays one vertex-chunk at a
        time, so partial iteration never materializes the full edge list
        (use :meth:`edge_array` for the bulk array form).
        """
        chunk = 65536
        for start in range(0, self._n, chunk):
            stop = min(start + chunk, self._n)
            sources = np.repeat(
                np.arange(start, stop, dtype=np.int64), self._degrees[start:stop]
            )
            targets = self._indices[self._indptr[start]:self._indptr[stop]]
            forward = sources < targets
            yield from zip(sources[forward].tolist(), targets[forward].tolist())

    def edge_array(self) -> np.ndarray:
        """Return all undirected edges as an ``(m, 2)`` array with ``u < v`` rows.

        Derived directly from the CSR arrays: every arc whose head exceeds its
        tail is one canonical edge, in (row, column) sorted order.
        """
        if self._num_edges == 0:
            return np.empty((0, 2), dtype=np.int64)
        sources = np.repeat(np.arange(self._n, dtype=np.int64), self._degrees)
        forward = sources < self._indices
        return np.column_stack([sources[forward], self._indices[forward]])

    # ------------------------------------------------------------------
    # Matrix views
    # ------------------------------------------------------------------
    def adjacency_matrix(self) -> sp.csr_matrix:
        """Return the sparse adjacency matrix ``A`` (cached)."""
        if self._adjacency_cache is None:
            data = np.ones(len(self._indices), dtype=np.float64)
            self._adjacency_cache = sp.csr_matrix(
                (data, self._indices, self._indptr), shape=(self._n, self._n)
            )
        return self._adjacency_cache

    # ------------------------------------------------------------------
    # Set operations used by the analysis
    # ------------------------------------------------------------------
    def subset_volume(self, subset: Iterable[int]) -> int:
        """Return ``µ(S) = Σ_{v ∈ S} d(v)`` for the vertex subset ``S``."""
        indices = self._as_index_array(subset)
        return int(self._degrees[indices].sum())

    def cut_size(self, subset: Iterable[int]) -> int:
        """Return ``|E(S, V\\S)|`` — the number of edges leaving ``subset``.

        One gather of the subset's concatenated neighbour lists followed by a
        membership count: O(vol(S) + |S|), no Python loop.
        """
        indices = self._as_index_array(subset)
        membership = np.zeros(self._n, dtype=bool)
        membership[indices] = True
        if not membership.any() or membership.all():
            return 0
        heads = self._indices[self._subset_arc_positions(indices)]
        return int(np.count_nonzero(~membership[heads]))

    def induced_edge_count(self, subset: Iterable[int]) -> int:
        """Return the number of edges with both endpoints in ``subset``.

        Counts inside arcs over the gathered neighbour lists (each undirected
        inside edge contributes two arcs): O(vol(S) + |S|).
        """
        indices = self._as_index_array(subset)
        membership = np.zeros(self._n, dtype=bool)
        membership[indices] = True
        heads = self._indices[self._subset_arc_positions(indices)]
        return int(np.count_nonzero(membership[heads])) // 2

    def induced_subgraph(self, subset: Sequence[int]) -> tuple["Graph", dict[int, int]]:
        """Return the subgraph induced by ``subset`` and the old→new vertex map.

        New vertex IDs follow the order of ``subset``.  The edge extraction is
        one gather over the subset's arcs plus a relabelling table lookup —
        O(vol(S) + |S|) — and the result is assembled through the vectorized
        array constructor.
        """
        indices = self._as_index_array(subset)
        mapping = {int(old): new for new, old in enumerate(indices)}
        relabel = np.full(self._n, -1, dtype=np.int64)
        relabel[indices] = np.arange(len(indices), dtype=np.int64)
        positions = self._subset_arc_positions(indices)
        heads = self._indices[positions]
        tails = np.repeat(indices, self._degrees[indices])
        # Keep each inside edge once, oriented by the *old* IDs as the scalar
        # implementation did; the constructor canonicalizes orientation anyway.
        keep = (relabel[heads] >= 0) & (tails < heads)
        sub_edges = np.column_stack([relabel[tails[keep]], relabel[heads[keep]]])
        return Graph(len(indices), sub_edges), mapping

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __contains__(self, vertex: int) -> bool:
        return isinstance(vertex, (int, np.integer)) and 0 <= int(vertex) < self._n

    def __len__(self) -> int:
        return self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and self._num_edges == other._num_edges
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash is sufficient
        return object.__hash__(self)

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._num_edges})"

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _check_vertex(self, vertex: int) -> None:
        if not (0 <= int(vertex) < self._n):
            raise GraphError(f"vertex {vertex} out of range for a graph on {self._n} vertices")

    def _as_index_array(self, subset: Iterable[int]) -> np.ndarray:
        if isinstance(subset, np.ndarray) and subset.dtype.kind in "iu":
            if subset.ndim != 1:
                raise GraphError(
                    f"subset array must be one-dimensional, got shape {subset.shape}"
                )
            indices = subset.astype(np.int64, copy=False)
        else:
            indices = np.fromiter((int(v) for v in subset), dtype=np.int64)
        if len(indices) == 0:
            return indices
        if indices.min() < 0 or indices.max() >= self._n:
            raise GraphError("subset contains vertices outside the graph")
        if len(np.unique(indices)) != len(indices):
            raise GraphError("subset contains duplicate vertices")
        return indices

    def _subset_arc_positions(self, indices: np.ndarray) -> np.ndarray:
        """Positions (into ``_indices``) of every arc leaving the given rows.

        Vectorized concatenation of the CSR row slices: for subset rows with
        degrees ``d_i`` this returns ``Σ d_i`` positions without a Python loop.
        """
        counts = self._degrees[indices]
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        starts = self._indptr[indices]
        offsets = np.concatenate([[0], np.cumsum(counts[:-1])])
        return np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, counts)


def _readonly_view(array: np.ndarray) -> np.ndarray:
    """Return a read-only view of ``array`` (the base array is left untouched)."""
    view = array.view()
    view.flags.writeable = False
    return view


def _check_finite(array: np.ndarray) -> None:
    """Reject NaN and infinities in a float edge array with a clear error."""
    if np.isnan(array).any():
        raise GraphError("edge array contains NaN")
    if not np.isfinite(array).all():
        raise GraphError("edge array contains non-finite values")


def _coerce_edge_array(edges: Iterable[tuple[int, int]] | np.ndarray) -> np.ndarray:
    """Convert edge input to a raw ``(m, 2)`` int64 array (permissive path).

    Numpy arrays pass through with an int64 cast; other iterables are
    materialized and converted in one shot, mirroring the truncating ``int()``
    semantics of the original tuple-loop constructor.  Strict validation
    (NaN / integrality) lives in :meth:`Graph.from_edge_array`.
    """
    if isinstance(edges, np.ndarray):
        array = edges
    else:
        rows = edges if isinstance(edges, (list, tuple)) else list(edges)
        if not rows:
            return np.empty((0, 2), dtype=np.int64)
        try:
            array = np.asarray(rows)
        except (ValueError, TypeError) as error:
            raise GraphError(f"edges could not be converted to an array: {error}") from None
    if array.ndim != 2 or array.shape[1] != 2:
        # Zero *rows* means "no edges" however it is spelled (shape (0,),
        # (0, 5), ...), matching the old iterable constructor which simply
        # never entered its loop; rows of the wrong width are still an error.
        if array.shape[0] == 0:
            return np.empty((0, 2), dtype=np.int64)
        raise GraphError(f"edge array must have shape (m, 2), got {array.shape}")
    if array.dtype.kind not in "iu":
        if array.dtype.kind == "f":
            _check_finite(array)
        try:
            array = array.astype(np.int64)  # truncates floats, like int()
        except (ValueError, TypeError, OverflowError) as error:
            raise GraphError(f"edges could not be converted to integers: {error}") from None
        return array
    return array.astype(np.int64, copy=False)
