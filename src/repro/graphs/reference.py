"""Scalar reference kernels — the pre-vectorization graph implementations.

The CSR construction and the subset operations of :class:`~repro.graphs.graph.Graph`
were originally written as per-vertex Python loops.  When the hot paths were
vectorized, the original kernels were preserved here, for two reasons:

* **equivalence testing** — ``tests/test_vectorized_equivalence.py`` asserts
  that the vectorized kernels produce results identical to these references
  on randomized and adversarial inputs, and
* **benchmark baselines** — ``benchmarks/bench_graph_kernel.py`` measures the
  vectorized speedup against these functions.

The functions intentionally mirror the original code line for line (including
its validation and tie-breaking behaviour); do not "improve" them — their
value is being a faithful snapshot of the scalar semantics.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TYPE_CHECKING

import numpy as np

from ..exceptions import GraphError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .graph import Graph

__all__ = [
    "scalar_csr_arrays",
    "scalar_cut_size",
    "scalar_induced_edge_count",
    "scalar_induced_subgraph_edges",
    "scalar_edge_array",
]


def scalar_csr_arrays(
    num_vertices: int, edges: Iterable[tuple[int, int]]
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """Build CSR adjacency the original way: one tuple at a time through a set.

    Returns ``(num_edges, degrees, indptr, indices)`` — exactly the arrays the
    original ``Graph.__init__`` computed.
    """
    n = int(num_vertices)
    if n < 0:
        raise GraphError(f"number of vertices must be non-negative, got {num_vertices}")
    unique: set[tuple[int, int]] = set()
    for u, v in edges:
        u = int(u)
        v = int(v)
        if u == v:
            raise GraphError(f"self loops are not allowed (vertex {u})")
        if not (0 <= u < n) or not (0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) out of range for a graph on {n} vertices")
        unique.add((u, v) if u < v else (v, u))

    num_edges = len(unique)
    if unique:
        edge_array = np.asarray(sorted(unique), dtype=np.int64)
        sources = np.concatenate([edge_array[:, 0], edge_array[:, 1]])
        targets = np.concatenate([edge_array[:, 1], edge_array[:, 0]])
    else:
        sources = np.empty(0, dtype=np.int64)
        targets = np.empty(0, dtype=np.int64)

    order = np.lexsort((targets, sources))
    sources = sources[order]
    targets = targets[order]
    counts = np.bincount(sources, minlength=n)
    degrees = counts.astype(np.int64)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return num_edges, degrees, indptr, targets


def _membership(graph: "Graph", indices: np.ndarray) -> np.ndarray:
    membership = np.zeros(graph.num_vertices, dtype=bool)
    membership[indices] = True
    return membership


def scalar_cut_size(graph: "Graph", subset: Iterable[int]) -> int:
    """``|E(S, V\\S)|`` computed with the original per-vertex loop."""
    indices = np.fromiter((int(v) for v in subset), dtype=np.int64)
    membership = _membership(graph, indices)
    if not membership.any() or membership.all():
        return 0
    cut = 0
    for u in indices:
        cut += int(np.count_nonzero(~membership[graph.neighbors(int(u))]))
    return cut


def scalar_induced_edge_count(graph: "Graph", subset: Iterable[int]) -> int:
    """Edges inside ``subset`` computed with the original per-vertex loop."""
    indices = np.fromiter((int(v) for v in subset), dtype=np.int64)
    membership = _membership(graph, indices)
    inside_arcs = 0
    for u in indices:
        inside_arcs += int(np.count_nonzero(membership[graph.neighbors(int(u))]))
    return inside_arcs // 2


def scalar_induced_subgraph_edges(
    graph: "Graph", subset: Sequence[int]
) -> tuple[int, list[tuple[int, int]], dict[int, int]]:
    """The original induced-subgraph edge extraction (relabelled edge list).

    Returns ``(num_sub_vertices, relabelled_edges, old_to_new_mapping)``; the
    caller can feed these straight into a ``Graph`` constructor.
    """
    indices = np.fromiter((int(v) for v in subset), dtype=np.int64)
    mapping = {int(old): new for new, old in enumerate(indices)}
    membership = _membership(graph, indices)
    edges: list[tuple[int, int]] = []
    for old_u in indices:
        new_u = mapping[int(old_u)]
        neighbors = graph.neighbors(int(old_u))
        for old_v in neighbors[membership[neighbors]]:
            if int(old_u) < int(old_v):
                edges.append((new_u, mapping[int(old_v)]))
    return len(indices), edges, mapping


def scalar_edge_array(graph: "Graph") -> np.ndarray:
    """``(m, 2)`` edge array built by materializing the Python edge generator."""
    edges = []
    for u in range(graph.num_vertices):
        for v in graph.neighbors(u):
            if u < v:
                edges.append((u, int(v)))
    if not edges:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(edges, dtype=np.int64)
