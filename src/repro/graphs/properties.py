"""Structural graph properties used in the paper's definitions and analysis.

This module implements the quantities from Section I-C of the paper:

* volume ``µ(S) = Σ_{v∈S} d(v)``,
* conductance ``φ(S) = |E(S, V\\S)| / min(µ(S), µ(V\\S))`` and the graph
  conductance ``Φ_G = min_S φ(S)`` (we provide the analytic PPM value, a
  partition-based value, and a spectral/sweep estimator since the exact
  minimisation is NP-hard),
* the average-volume approximation ``µ'(S) = (2m/n)·|S|`` that Algorithm 1
  uses so nodes can evaluate the mixing condition locally,
* Newman–Girvan modularity of a partition, and
* expected degree / edge-count formulas for PPM graphs that the experiment
  section quotes (e.g. "a partition has in expectation e_in = C(n/r, 2)·p
  intra and e_out = (n/r)(n − n/r)·q inter community edges").
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..exceptions import GraphError
from ..utils import safe_ratio
from .graph import Graph
from .partition import Partition

__all__ = [
    "subset_volume",
    "average_volume",
    "conductance",
    "partition_conductance",
    "graph_conductance_estimate",
    "ppm_expected_conductance",
    "ppm_expected_degree",
    "ppm_expected_intra_edges",
    "ppm_expected_inter_edges",
    "modularity",
    "edge_density",
    "mixing_parameter",
]


def subset_volume(graph: Graph, subset: Iterable[int]) -> int:
    """Return ``µ(S)``, the sum of degrees of the vertices in ``subset``."""
    return graph.subset_volume(subset)


def average_volume(graph: Graph, subset_size: int) -> float:
    """Return the paper's localized volume proxy ``µ'(S) = (2m/n)·|S|``.

    Algorithm 1 replaces the true volume ``µ(S)`` (which a node cannot know
    without learning the whole set) with this average-degree approximation so
    each node can compute its ``x_u`` value locally from ``|S|`` alone.
    """
    if subset_size < 0:
        raise GraphError(f"subset size must be non-negative, got {subset_size}")
    if graph.num_vertices == 0:
        return 0.0
    return graph.volume / graph.num_vertices * subset_size


def conductance(graph: Graph, subset: Iterable[int]) -> float:
    """Return the conductance ``φ(S)`` of a vertex subset.

    ``φ(S) = |E(S, V\\S)| / min(µ(S), µ(V\\S))``.  By convention the
    conductance of the empty set and of the full vertex set is 0.
    """
    subset = list(subset)
    if not subset:
        return 0.0
    cut = graph.cut_size(subset)
    volume_inside = graph.subset_volume(subset)
    volume_outside = graph.volume - volume_inside
    denominator = min(volume_inside, volume_outside)
    return safe_ratio(cut, denominator, default=0.0)


def partition_conductance(graph: Graph, partition: Partition) -> float:
    """Return ``min_i φ(C_i)`` over the communities of ``partition``.

    For a ground-truth PPM partition this is (an upper bound on) the graph
    conductance ``Φ_G``, which is what the paper uses as the stopping
    parameter ``δ``.
    """
    values = [conductance(graph, community) for community in partition.communities()]
    if not values:
        return 0.0
    return min(values)


def graph_conductance_estimate(graph: Graph, num_eigenvalues: int = 2) -> float:
    """Estimate ``Φ_G`` with a Fiedler-vector sweep cut.

    Computing the exact conductance is NP-hard; the classical sweep-cut over
    the second eigenvector of the normalised Laplacian gives a set whose
    conductance is within the Cheeger bound of ``Φ_G``.  The paper assumes
    ``Φ_G`` is given or computed by a separate distributed algorithm [28];
    this estimator plays that role when the analytic value is unavailable.
    """
    n = graph.num_vertices
    if n < 3 or graph.num_edges == 0:
        return 0.0
    degrees = graph.degrees().astype(np.float64)
    if np.any(degrees == 0):
        # Isolated vertices give conductance 0 trivially.
        return 0.0
    adjacency = graph.adjacency_matrix()
    inv_sqrt_degree = 1.0 / np.sqrt(degrees)
    # Normalized adjacency D^{-1/2} A D^{-1/2}; its second eigenvector is the
    # Fiedler direction of the normalised Laplacian.
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    d_inv_sqrt = sp.diags(inv_sqrt_degree)
    normalized = d_inv_sqrt @ adjacency @ d_inv_sqrt
    k = min(max(2, num_eigenvalues), n - 1)
    try:
        _, vectors = spla.eigsh(normalized, k=k, which="LA")
    except (spla.ArpackNoConvergence, ValueError):
        dense = normalized.toarray()
        _, dense_vectors = np.linalg.eigh(dense)
        vectors = dense_vectors[:, -k:]
    fiedler = vectors[:, -2] * inv_sqrt_degree
    order = np.argsort(fiedler)

    best = 1.0
    membership = np.zeros(n, dtype=bool)
    cut = 0
    volume_inside = 0
    total_volume = graph.volume
    indptr = graph.adjacency_matrix().indptr
    indices = graph.adjacency_matrix().indices
    for rank, vertex in enumerate(order[:-1]):
        vertex = int(vertex)
        neighbors = indices[indptr[vertex]:indptr[vertex + 1]]
        inside_neighbors = int(np.count_nonzero(membership[neighbors]))
        degree = int(degrees[vertex])
        cut += degree - 2 * inside_neighbors
        volume_inside += degree
        membership[vertex] = True
        denominator = min(volume_inside, total_volume - volume_inside)
        if denominator > 0:
            best = min(best, cut / denominator)
    return float(best)


# ----------------------------------------------------------------------
# Analytic PPM quantities quoted in the paper
# ----------------------------------------------------------------------
def ppm_expected_degree(n: int, num_blocks: int, p: float, q: float) -> float:
    """Expected degree of a PPM vertex: ``p·(n/r − 1) + q·(n − n/r)``.

    The paper uses the slightly looser ``p·n/r + q·(n − n/r)`` in its
    asymptotic arguments; we keep the exact finite-``n`` value.
    """
    _validate_ppm(n, num_blocks, p, q)
    block_size = n / num_blocks
    return p * (block_size - 1) + q * (n - block_size)


def ppm_expected_intra_edges(n: int, num_blocks: int, p: float) -> float:
    """Expected intra-community edges of one block: ``C(n/r, 2)·p``."""
    _validate_ppm(n, num_blocks, p, 0.0)
    block_size = n / num_blocks
    return block_size * (block_size - 1) / 2.0 * p


def ppm_expected_inter_edges(n: int, num_blocks: int, q: float) -> float:
    """Expected inter-community edges incident to one block: ``(n/r)(n − n/r)·q``."""
    _validate_ppm(n, num_blocks, 0.0, q)
    block_size = n / num_blocks
    return block_size * (n - block_size) * q


def ppm_expected_conductance(n: int, num_blocks: int, p: float, q: float) -> float:
    """Expected conductance of one PPM block.

    ``φ(C) ≈ q(n − n/r) / (p(n/r) + q(n − n/r))`` — the fraction of a block
    vertex's edges that leave the block.  The paper sets the stopping
    parameter ``δ = Φ_G`` to exactly this quantity (Section III-A, analysis on
    Gnpq graphs).  For a single block (``r = 1``) the conductance is 0.
    """
    _validate_ppm(n, num_blocks, p, q)
    if num_blocks == 1:
        return 0.0
    block_size = n / num_blocks
    outgoing = q * (n - block_size)
    total = p * block_size + outgoing
    return safe_ratio(outgoing, total, default=0.0)


def mixing_parameter(n: int, num_blocks: int, p: float, q: float) -> float:
    """Return the per-step escape probability ``q(r−1) / (p + q(r−1))``.

    Lemma 3 of the paper: the probability that a single random-walk step
    leaves the current block.  Useful for checking the theoretical regime
    ``q = o(p / (r log(n/r)))``.
    """
    _validate_ppm(n, num_blocks, p, q)
    if num_blocks == 1:
        return 0.0
    numerator = q * (num_blocks - 1)
    return safe_ratio(numerator, p + numerator, default=0.0)


def edge_density(graph: Graph) -> float:
    """Return ``m / C(n, 2)``, the empirical edge probability."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return graph.num_edges / (n * (n - 1) / 2.0)


def modularity(graph: Graph, partition: Partition) -> float:
    """Newman–Girvan modularity of a partition.

    ``Q = Σ_c [ m_c/m − (µ(C_c) / 2m)² ]`` where ``m_c`` is the number of
    edges inside community ``c``.  Unassigned vertices contribute nothing.
    """
    m = graph.num_edges
    if m == 0:
        return 0.0
    total = 0.0
    for community in partition.communities():
        internal = graph.induced_edge_count(community)
        volume = graph.subset_volume(community)
        total += internal / m - (volume / (2.0 * m)) ** 2
    return total


def _validate_ppm(n: int, num_blocks: int, p: float, q: float) -> None:
    if n < 1:
        raise GraphError(f"n must be >= 1, got {n}")
    if num_blocks < 1:
        raise GraphError(f"number of blocks must be >= 1, got {num_blocks}")
    if n % num_blocks != 0:
        raise GraphError(f"n={n} must be divisible by r={num_blocks}")
    for name, value in (("p", p), ("q", q)):
        if not (0.0 <= value <= 1.0):
            raise GraphError(f"{name} must be in [0, 1], got {value}")
