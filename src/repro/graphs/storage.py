"""Pluggable storage backends for the CSR arrays of a :class:`Graph`.

:class:`~repro.graphs.graph.Graph` is a *view* over three int64 arrays —
``indptr`` / ``indices`` / ``degrees`` — and every kernel in the library
reaches them only through :meth:`~repro.graphs.graph.Graph.csr_arrays` /
:meth:`~repro.graphs.graph.Graph.from_csr`.  This module is the one place
that decides **where those arrays live**:

``dense``
    Ordinary in-RAM numpy arrays (the default).  Zero overhead; the storage
    object only pins the arrays read-only.
``shm``
    :mod:`multiprocessing.shared_memory` segments.  This is the broadcast
    path of the process execution tier: the owner copies the arrays into
    named segments once and hands workers a picklable
    :class:`SharedCSRHandle`; each worker maps the segments and rebuilds the
    graph through the zero-copy ``from_csr`` interchange.
``memmap``
    A disk-backed CSR file (the ``.csr`` format of :mod:`repro.graphs.io`)
    mapped read-only with :class:`numpy.memmap`, so graphs larger than RAM
    stream from the page cache instead of living on the heap.

``resolve_storage`` follows the same ``None`` → environment → default
cascade as :func:`repro.execution.resolve_workers`: the ``REPRO_STORAGE``
variable routes *every* graph construction through a backend, which is how
CI runs the full test suite with the graph on memmap storage without a
single test changing.

All backends return **read-only** arrays.  Kernels never write into graph
storage (a memmap precondition), and the read-only flag turns any future
violation into an immediate ``ValueError`` instead of silent corruption.

Lint rule REP107 (:mod:`repro.analysis.rules`) confines ``SharedMemory``
and ``np.memmap`` construction to this module, so no other layer can grow a
private storage path.
"""

from __future__ import annotations

import os
import tempfile
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from ..exceptions import GraphError
from .graph import Graph

__all__ = [
    "STORAGE_DENSE",
    "STORAGE_SHM",
    "STORAGE_MEMMAP",
    "STORAGE_ENV_VAR",
    "resolve_storage",
    "CSRStorage",
    "DenseStorage",
    "SharedCSRStorage",
    "SharedCSRHandle",
    "AttachedCSR",
    "MemmapStorage",
    "storage_from_arrays",
]

STORAGE_ENV_VAR = "REPRO_STORAGE"

STORAGE_DENSE = "dense"
STORAGE_SHM = "shm"
STORAGE_MEMMAP = "memmap"

_STORAGE_KINDS = (STORAGE_DENSE, STORAGE_SHM, STORAGE_MEMMAP)


def resolve_storage(storage: str | None = None) -> str:
    """Resolve a storage-backend name to ``dense`` / ``shm`` / ``memmap``.

    ``None`` falls back to the ``REPRO_STORAGE`` environment variable and
    then to ``dense`` — the same cascade :func:`repro.execution.resolve_workers`
    uses for the thread count, so one exported variable reroutes every graph
    construction in a process (CI uses this for the memmap test leg).
    """
    if storage is None:
        storage = os.environ.get(STORAGE_ENV_VAR, "").strip() or STORAGE_DENSE
    name = storage.lower()
    if name not in _STORAGE_KINDS:
        raise GraphError(
            f"unknown graph storage backend {storage!r}; "
            f"expected one of {', '.join(_STORAGE_KINDS)}"
        )
    return name


def _readonly(array: np.ndarray) -> np.ndarray:
    """Mark ``array`` itself read-only and return it (backends own their arrays)."""
    array.flags.writeable = False
    return array


class CSRStorage:
    """Base class of the storage backends: a home for three read-only arrays.

    Subclasses implement :meth:`arrays` (returning ``(indptr, indices,
    degrees)`` with ``writeable=False``) and :meth:`close` (releasing
    whatever OS resource backs them — a no-op for plain RAM).  Instances are
    usable as context managers; :class:`Graph` keeps its storage alive for
    the graph's lifetime via the ``_storage`` slot.
    """

    kind: str = "abstract"

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        raise NotImplementedError

    def close(self) -> None:
        """Release the backing resource (idempotent; default no-op)."""

    def __enter__(self) -> "CSRStorage":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class DenseStorage(CSRStorage):
    """Plain in-RAM arrays — the default backend, with zero indirection.

    The constructor takes ownership of the arrays and pins them read-only in
    place (no copy), so a freshly built CSR costs nothing extra to wrap.
    """

    kind = STORAGE_DENSE

    def __init__(
        self, num_vertices: int, indptr: np.ndarray, indices: np.ndarray, degrees: np.ndarray
    ) -> None:
        self.num_vertices = int(num_vertices)
        self.num_arcs = len(indices)
        self._arrays = tuple(_readonly(array) for array in (indptr, indices, degrees))

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        indptr, indices, degrees = self._arrays
        return indptr, indices, degrees


# ----------------------------------------------------------------------
# Shared-memory segments (the process tier's broadcast path)
# ----------------------------------------------------------------------
def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment (cleanup stays with the creator).

    ``SharedMemory(name=...)`` re-registers the segment with the resource
    tracker even on pure attach (bpo-39959).  Pool workers — fork or spawn —
    inherit the *parent's* tracker process, whose registry is a per-name
    set, so the extra registrations collapse into the creator's entry and
    the creator's ``unlink`` (in :meth:`SharedCSRStorage.close`) retires it;
    explicitly unregistering here would instead strip the shared entry out
    from under the creator.  Only :class:`SharedCSRStorage` may unlink.
    """
    return shared_memory.SharedMemory(name=name)


def _release_segments(segments: list[shared_memory.SharedMemory]) -> None:
    """Detach and unlink every segment in ``segments``, consuming the list.

    Shared by :meth:`SharedCSRStorage.close` and the :func:`weakref.finalize`
    guard; popping from the one list both call with makes the release
    idempotent regardless of which path runs first.
    """
    while segments:
        segment = segments.pop()
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


@dataclass
class AttachedCSR(CSRStorage):
    """A worker-side view of broadcast CSR arrays plus the segments backing it.

    The :class:`Graph` arrays alias the shared segments directly, so the
    segments must stay open for the graph's lifetime; :meth:`close` detaches
    them (the creator, not the attacher, unlinks).
    """

    graph: Graph
    segments: tuple[shared_memory.SharedMemory, ...]

    kind = STORAGE_SHM

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.graph.csr_arrays()

    def close(self) -> None:
        for segment in self.segments:
            segment.close()


@dataclass(frozen=True)
class SharedCSRHandle:
    """A picklable descriptor of a broadcast graph: segment names and shapes.

    This is the only graph-related object that crosses the process boundary;
    :meth:`attach` rebuilds the full :class:`Graph` in the attaching process
    with zero copies (the CSR arrays are ndarray views over the mapped
    segments, adopted by :meth:`Graph.from_csr` as-is).
    """

    num_vertices: int
    num_arcs: int
    indptr_name: str
    indices_name: str
    degrees_name: str

    def attach(self) -> AttachedCSR:
        """Map the segments and return the reconstructed read-only graph."""
        segments: list[shared_memory.SharedMemory] = []
        try:
            arrays = []
            for name, shape in (
                (self.indptr_name, (self.num_vertices + 1,)),
                (self.indices_name, (self.num_arcs,)),
                (self.degrees_name, (self.num_vertices,)),
            ):
                segment = _attach_segment(name)
                segments.append(segment)
                arrays.append(np.ndarray(shape, dtype=np.int64, buffer=segment.buf))
            indptr, indices, degrees = arrays
            graph = Graph.from_csr(
                self.num_vertices, indptr, indices, degrees=degrees, validate=False
            )
        except BaseException:
            for segment in segments:
                segment.close()
            raise
        return AttachedCSR(graph=graph, segments=tuple(segments))


class SharedCSRStorage(CSRStorage):
    """Parent-side owner of CSR arrays broadcast into shared memory.

    Creates one segment per array, copies the data in once, and exposes the
    picklable :attr:`handle` workers attach to.  The owner is responsible
    for the segments' lifetime: :meth:`close` detaches *and unlinks* them
    (idempotent).  Usable as a context manager.

    A :func:`weakref.finalize` guard backs :meth:`close`: if the owner is
    garbage-collected or the interpreter exits without ``close()`` having
    run (e.g. the owner died between broadcast and cleanup), the segments
    are still unlinked.  ``finalize`` fires at most once and ``close()``
    invokes the same finalizer, so there is no double-unlink; forked pool
    workers exit via ``os._exit`` and never run finalizers, so the "only
    the creator unlinks" contract of :func:`_attach_segment` holds.
    """

    kind = STORAGE_SHM

    def __init__(
        self, num_vertices: int, indptr: np.ndarray, indices: np.ndarray, degrees: np.ndarray
    ) -> None:
        self.num_vertices = int(num_vertices)
        self.num_arcs = len(indices)
        self._segments: list[shared_memory.SharedMemory] = []
        # Registered before the segments exist: _release_segments drains
        # whatever the shared list holds at fire time, so a partially
        # constructed broadcast is cleaned up too.
        self._finalizer = weakref.finalize(self, _release_segments, self._segments)
        try:
            views = [self._create_and_fill(array) for array in (indptr, indices, degrees)]
        except BaseException:
            self.close()
            raise
        self._arrays = tuple(_readonly(view) for view in views)
        self.handle = SharedCSRHandle(
            num_vertices=self.num_vertices,
            num_arcs=self.num_arcs,
            indptr_name=self._segments[0].name,
            indices_name=self._segments[1].name,
            degrees_name=self._segments[2].name,
        )

    @classmethod
    def from_graph(cls, graph: Graph) -> "SharedCSRStorage":
        """Broadcast an existing graph's CSR arrays (the session/pool path)."""
        indptr, indices, degrees = graph.csr_arrays()
        return cls(graph.num_vertices, indptr, indices, degrees)

    def _create_and_fill(self, array: np.ndarray) -> np.ndarray:
        # Zero-byte segments are rejected by the OS; an empty array still
        # gets a 1-byte segment (the handle's shapes carry the real lengths).
        segment = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        self._segments.append(segment)
        view = np.ndarray(array.shape, dtype=np.int64, buffer=segment.buf)
        view[...] = array
        return view

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        indptr, indices, degrees = self._arrays
        return indptr, indices, degrees

    def close(self) -> None:
        """Detach and unlink every segment (safe to call more than once)."""
        self._finalizer()

    def __enter__(self) -> "SharedCSRStorage":
        return self


# ----------------------------------------------------------------------
# Disk-backed CSR (np.memmap over the io.py .csr format)
# ----------------------------------------------------------------------
def _unlink_file(path: str) -> None:
    """Best-effort deletion of a temporary backing file (finalize target)."""
    try:
        os.unlink(path)
    except FileNotFoundError:  # pragma: no cover - already removed
        pass


class MemmapStorage(CSRStorage):
    """CSR arrays mapped read-only from a ``.csr`` file on disk.

    The file layout is the binary format of
    :func:`repro.graphs.io.write_csr_graph`; each array is an
    :class:`numpy.memmap` window into it (``mode="r"``, so the arrays are
    read-only by construction — the precondition the read-only hardening of
    every kernel exists for).  Two ownership modes:

    * :meth:`open` maps a caller-provided file and never deletes it — the
      ``repro detect --graph-file`` / :func:`~repro.graphs.io.read_csr_graph`
      path;
    * :meth:`materialize` spills freshly built arrays to a temporary file
      and deletes it when the storage is garbage-collected or closed — the
      ``REPRO_STORAGE=memmap`` construction route.  POSIX keeps the mapping
      valid after the unlink, so early finalization can never corrupt a
      live graph.
    """

    kind = STORAGE_MEMMAP

    def __init__(self, path: str | Path, *, _owns_file: bool = False) -> None:
        from .io import read_csr_layout

        self._path = str(path)
        layout = read_csr_layout(self._path)
        self.num_vertices = layout.num_vertices
        self.num_arcs = layout.num_arcs
        if _owns_file:
            self._finalizer: weakref.finalize | None = weakref.finalize(
                self, _unlink_file, self._path
            )
        else:
            self._finalizer = None
        self._arrays = tuple(
            self._map(offset, length)
            for offset, length in (
                (layout.indptr_offset, layout.num_vertices + 1),
                (layout.indices_offset, layout.num_arcs),
                (layout.degrees_offset, layout.num_vertices),
            )
        )

    def _map(self, offset: int, length: int) -> np.ndarray:
        if length == 0:
            # mmap rejects zero-length windows; an empty array needs no file
            # backing anyway.
            return _readonly(np.empty(0, dtype=np.int64))
        window = np.memmap(
            self._path, dtype=np.dtype("<i8"), mode="r", offset=offset, shape=(length,)
        )
        return np.asarray(window)

    @classmethod
    def open(cls, path: str | Path) -> "MemmapStorage":
        """Map an existing ``.csr`` file (the caller keeps the file)."""
        return cls(path)

    @classmethod
    def materialize(
        cls, num_vertices: int, indptr: np.ndarray, indices: np.ndarray, degrees: np.ndarray
    ) -> "MemmapStorage":
        """Spill freshly built arrays to a temporary file and map it back.

        Used by ``REPRO_STORAGE=memmap``: the heap copies are dropped as
        soon as construction returns, leaving only the page-cache-backed
        mappings.  The temporary file is deleted when the storage (and with
        it the owning graph) goes away.
        """
        from .io import write_csr_arrays

        handle, path = tempfile.mkstemp(prefix="repro-graph-", suffix=".csr")
        os.close(handle)
        try:
            write_csr_arrays(path, num_vertices, indptr, indices, degrees)
        except BaseException:
            _unlink_file(path)
            raise
        return cls(path, _owns_file=True)

    @property
    def path(self) -> str:
        """The backing ``.csr`` file."""
        return self._path

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        indptr, indices, degrees = self._arrays
        return indptr, indices, degrees

    def close(self) -> None:
        """Delete the backing file when this storage owns it (idempotent)."""
        if self._finalizer is not None:
            self._finalizer()


def storage_from_arrays(
    kind: str,
    num_vertices: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
) -> CSRStorage:
    """Materialize freshly built CSR arrays into the named backend.

    This is the single dispatch point :meth:`Graph._build_csr` (and the
    ``.csr`` readers of :mod:`repro.graphs.io`) route through; ``kind`` must
    already be resolved (see :func:`resolve_storage`).
    """
    if kind == STORAGE_DENSE:
        return DenseStorage(num_vertices, indptr, indices, degrees)
    if kind == STORAGE_SHM:
        return SharedCSRStorage(num_vertices, indptr, indices, degrees)
    if kind == STORAGE_MEMMAP:
        return MemmapStorage.materialize(num_vertices, indptr, indices, degrees)
    raise GraphError(f"unknown graph storage backend {kind!r}")
