"""Random graph generators used by the paper's evaluation.

The paper evaluates CDRW on two families of synthetic graphs:

* the Erdős–Rényi random graph ``G(n, p)`` (Section I-B.1), used in Figure 2
  to show that a single random graph is detected as one community, and
* the symmetric planted partition model ``G(n, p, q)`` (PPM, a special case of
  the stochastic block model) with ``r`` equal-sized blocks, used in
  Figures 1, 3 and 4.

We additionally provide the general (possibly asymmetric) stochastic block
model with an arbitrary block connectivity matrix, and random regular graphs
which are handy for validating the spectral bounds (Equations 1-2 of the
paper) in tests.

All generators are vectorised: edges of an ``G(n, p)`` block are sampled by
drawing the number of edges from a binomial distribution and then sampling
that many distinct vertex pairs, which is exact and much faster than testing
each of the ``n(n-1)/2`` pairs individually for the sparse regimes the paper
studies (``p = Θ(log n / n)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import GeneratorError
from ..utils import as_rng
from .graph import Graph
from .partition import Partition

__all__ = [
    "gnp_random_graph",
    "planted_partition_graph",
    "stochastic_block_model_graph",
    "random_regular_graph",
    "PlantedPartition",
    "connectivity_threshold",
    "sparse_intra_probability",
    "dense_intra_probability",
]


@dataclass(frozen=True)
class PlantedPartition:
    """A generated PPM/SBM graph bundled with its ground-truth partition.

    Attributes
    ----------
    graph:
        The generated :class:`~repro.graphs.graph.Graph`.
    partition:
        Ground-truth block membership as a :class:`~repro.graphs.partition.Partition`.
    intra_probability:
        The within-block edge probability ``p`` (``None`` for a general SBM
        where blocks may use different probabilities).
    inter_probability:
        The between-block edge probability ``q`` (``None`` for a general SBM).
    """

    graph: Graph
    partition: Partition
    intra_probability: float | None
    inter_probability: float | None

    @property
    def num_blocks(self) -> int:
        """The number of ground-truth blocks ``r``."""
        return self.partition.num_communities


def connectivity_threshold(n: int) -> float:
    """Return the ``G(n, p)`` connectivity threshold ``ln(n)/n``.

    The paper repeatedly parameterises experiments relative to this threshold
    (``p = c·log n / n`` with ``c > 1``).
    """
    if n < 2:
        raise GeneratorError(f"connectivity threshold needs n >= 2, got {n}")
    return math.log(n) / n


def sparse_intra_probability(n: int, factor: float = 2.0) -> float:
    """The paper's sparse setting ``p = factor · log(n)/n`` (default ``2 log n / n``)."""
    return min(1.0, factor * connectivity_threshold(n))


def dense_intra_probability(n: int, factor: float = 2.0) -> float:
    """The paper's denser setting ``p = factor · log²(n)/n`` (default ``2 log² n / n``)."""
    if n < 2:
        raise GeneratorError(f"dense probability needs n >= 2, got {n}")
    return min(1.0, factor * math.log(n) ** 2 / n)


# ----------------------------------------------------------------------
# Pair sampling helpers
# ----------------------------------------------------------------------
_NO_EDGES = np.empty((0, 2), dtype=np.int64)


def _sample_within_block_edges(
    block: np.ndarray, p: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample G(|block|, p) edges among the vertex IDs in ``block``.

    Returns an ``(k, 2)`` int64 array — the count is drawn from a binomial
    and the pairs are decoded from linear upper-triangle indices, so no
    per-pair Python loop runs at any density.
    """
    size = len(block)
    total_pairs = size * (size - 1) // 2
    if total_pairs == 0 or p <= 0.0:
        return _NO_EDGES
    if p >= 1.0:
        i, j = np.triu_indices(size, k=1)
        return np.column_stack([block[i], block[j]]).astype(np.int64, copy=False)
    count = rng.binomial(total_pairs, p)
    if count == 0:
        return _NO_EDGES
    # Sample `count` distinct pair indices without replacement, then decode the
    # linear index into an (i, j) pair with i < j.
    chosen = rng.choice(total_pairs, size=count, replace=False)
    i, j = _decode_pair_indices(chosen, size)
    return np.column_stack([block[i], block[j]]).astype(np.int64, copy=False)


def _sample_between_block_edges(
    block_a: np.ndarray, block_b: np.ndarray, q: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample bipartite edges between two disjoint blocks, each with probability q.

    Returns an ``(k, 2)`` int64 array, decoded from linear indices over the
    ``|A|×|B|`` pair grid without a Python loop.
    """
    total_pairs = len(block_a) * len(block_b)
    if total_pairs == 0 or q <= 0.0:
        return _NO_EDGES
    if q >= 1.0:
        u = np.repeat(block_a, len(block_b))
        v = np.tile(block_b, len(block_a))
        return np.column_stack([u, v]).astype(np.int64, copy=False)
    count = rng.binomial(total_pairs, q)
    if count == 0:
        return _NO_EDGES
    chosen = rng.choice(total_pairs, size=count, replace=False)
    rows = chosen // len(block_b)
    cols = chosen % len(block_b)
    return np.column_stack([block_a[rows], block_b[cols]]).astype(np.int64, copy=False)


def _decode_pair_indices(linear: np.ndarray, size: int) -> tuple[np.ndarray, np.ndarray]:
    """Decode linear indices over the upper triangle of a ``size``×``size`` matrix.

    Index ``k`` corresponds to the pair ``(i, j)`` with ``i < j`` in row-major
    order of the strictly-upper triangle.
    """
    # Row i starts at offset i*size - i*(i+1)/2 - i ... solve with the quadratic formula.
    linear = linear.astype(np.float64)
    i = np.floor(
        (2 * size - 1 - np.sqrt((2 * size - 1) ** 2 - 8 * linear)) / 2
    ).astype(np.int64)
    row_start = i * (size - 1) - i * (i - 1) // 2
    j = (linear.astype(np.int64) - row_start) + i + 1
    return i, j


# ----------------------------------------------------------------------
# Public generators
# ----------------------------------------------------------------------
def gnp_random_graph(
    n: int,
    p: float,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Generate an Erdős–Rényi random graph ``G(n, p)``.

    Each of the ``n(n-1)/2`` possible edges is present independently with
    probability ``p``.
    """
    _validate_probability("p", p)
    if n < 0:
        raise GeneratorError(f"number of vertices must be non-negative, got {n}")
    rng = as_rng(seed)
    vertices = np.arange(n, dtype=np.int64)
    edges = _sample_within_block_edges(vertices, p, rng)
    return Graph.from_edge_array(n, edges)


def planted_partition_graph(
    n: int,
    num_blocks: int,
    p: float,
    q: float,
    seed: int | np.random.Generator | None = None,
) -> PlantedPartition:
    """Generate a symmetric planted partition graph ``G(n, p, q)`` with ``r`` blocks.

    The vertex set is split into ``r = num_blocks`` consecutive blocks of equal
    size ``n/r`` (``n`` must be divisible by ``r``).  Two vertices in the same
    block are adjacent independently with probability ``p``; vertices in
    different blocks are adjacent with probability ``q``.  This is exactly the
    ``Gnpq`` benchmark of the paper (Section I-B.1).

    Returns the graph together with the ground-truth :class:`Partition`.
    """
    _validate_probability("p", p)
    _validate_probability("q", q)
    if num_blocks < 1:
        raise GeneratorError(f"number of blocks must be >= 1, got {num_blocks}")
    if n < num_blocks:
        raise GeneratorError(f"need at least one vertex per block: n={n}, r={num_blocks}")
    if n % num_blocks != 0:
        raise GeneratorError(
            f"the symmetric PPM requires equal-size blocks: n={n} is not divisible by r={num_blocks}"
        )
    rng = as_rng(seed)
    block_size = n // num_blocks
    blocks = [
        np.arange(i * block_size, (i + 1) * block_size, dtype=np.int64)
        for i in range(num_blocks)
    ]

    chunks: list[np.ndarray] = []
    for block in blocks:
        chunks.append(_sample_within_block_edges(block, p, rng))
    for i in range(num_blocks):
        for j in range(i + 1, num_blocks):
            chunks.append(_sample_between_block_edges(blocks[i], blocks[j], q, rng))

    graph = Graph.from_edge_array(n, np.concatenate(chunks, axis=0))
    labels = np.repeat(np.arange(num_blocks, dtype=np.int64), block_size)
    partition = Partition.from_labels(labels)
    return PlantedPartition(
        graph=graph, partition=partition, intra_probability=p, inter_probability=q
    )


def stochastic_block_model_graph(
    block_sizes: list[int],
    probability_matrix: np.ndarray | list[list[float]],
    seed: int | np.random.Generator | None = None,
) -> PlantedPartition:
    """Generate a general stochastic block model graph.

    Parameters
    ----------
    block_sizes:
        Size of each block; blocks occupy consecutive vertex ranges.
    probability_matrix:
        Symmetric ``r × r`` matrix ``P`` where ``P[i][j]`` is the probability
        of an edge between a vertex of block ``i`` and a vertex of block ``j``.
    """
    sizes = [int(s) for s in block_sizes]
    if not sizes or any(s < 1 for s in sizes):
        raise GeneratorError(f"block sizes must all be >= 1, got {block_sizes}")
    matrix = np.asarray(probability_matrix, dtype=np.float64)
    r = len(sizes)
    if matrix.shape != (r, r):
        raise GeneratorError(
            f"probability matrix shape {matrix.shape} does not match {r} blocks"
        )
    if not np.allclose(matrix, matrix.T):
        raise GeneratorError("probability matrix must be symmetric")
    if matrix.min() < 0.0 or matrix.max() > 1.0:
        raise GeneratorError("probabilities must lie in [0, 1]")

    rng = as_rng(seed)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    n = int(offsets[-1])
    blocks = [np.arange(offsets[i], offsets[i + 1], dtype=np.int64) for i in range(r)]

    chunks: list[np.ndarray] = []
    for i in range(r):
        chunks.append(_sample_within_block_edges(blocks[i], float(matrix[i, i]), rng))
        for j in range(i + 1, r):
            chunks.append(_sample_between_block_edges(blocks[i], blocks[j], float(matrix[i, j]), rng))

    graph = Graph.from_edge_array(n, np.concatenate(chunks, axis=0))
    labels = np.concatenate(
        [np.full(sizes[i], i, dtype=np.int64) for i in range(r)]
    )
    partition = Partition.from_labels(labels)
    intra = float(matrix[0, 0]) if np.allclose(np.diag(matrix), matrix[0, 0]) else None
    off_diagonal = matrix[~np.eye(r, dtype=bool)] if r > 1 else np.array([])
    inter = (
        float(off_diagonal[0])
        if off_diagonal.size and np.allclose(off_diagonal, off_diagonal[0])
        else None
    )
    return PlantedPartition(
        graph=graph, partition=partition, intra_probability=intra, inter_probability=inter
    )


def random_regular_graph(
    n: int,
    degree: int,
    seed: int | np.random.Generator | None = None,
    max_attempts: int = 100,
) -> Graph:
    """Generate a random ``degree``-regular simple graph via the pairing model.

    Random regular graphs are used by the paper's analysis (Equation 2 bounds
    the second eigenvalue of a random d-regular graph); we use them in tests
    to validate the spectral machinery.
    """
    if degree < 0 or degree >= n:
        raise GeneratorError(f"degree must satisfy 0 <= d < n, got d={degree}, n={n}")
    if (n * degree) % 2 != 0:
        raise GeneratorError(f"n*degree must be even, got n={n}, d={degree}")
    if degree == 0:
        return Graph(n, [])

    # The pairing (configuration) model with plain rejection sampling has a
    # vanishing acceptance probability for non-trivial degrees, so we rely on
    # networkx's implementation of the Steger–Wormald style generator, which
    # repairs collisions instead of rejecting whole pairings.
    import networkx as nx

    rng = as_rng(seed)
    last_error: Exception | None = None
    for _ in range(max_attempts):
        try:
            nx_graph = nx.random_regular_graph(degree, n, seed=int(rng.integers(2**31 - 1)))
            return Graph(n, nx_graph.edges())
        except nx.NetworkXError as error:  # pragma: no cover - extremely rare
            last_error = error
    raise GeneratorError(
        f"failed to generate a simple {degree}-regular graph on {n} vertices "
        f"after {max_attempts} attempts: {last_error}"
    )


def _validate_probability(name: str, value: float) -> None:
    if not (0.0 <= value <= 1.0):
        raise GeneratorError(f"{name} must be a probability in [0, 1], got {value}")
