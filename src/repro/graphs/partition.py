"""Vertex partitions: ground-truth communities and detected communities.

The paper's accuracy metrics (precision, recall, F-score — Section IV) are
defined against the ground-truth blocks of the planted partition model, while
the CDRW algorithm emits a set of detected communities one seed at a time.
:class:`Partition` represents a *disjoint* labelling of (a subset of) the
vertex set and supports both roles:

* ground truth: every vertex belongs to exactly one block, and
* detected output: communities are disjoint by construction of Algorithm 1
  (each detected community is removed from the ``pool``), but — because a
  detected community can spill across ground-truth boundaries — a vertex may
  end up unassigned or assigned to a community seeded from a different block.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..exceptions import PartitionError

__all__ = ["Partition"]


class Partition:
    """A disjoint assignment of vertices to communities.

    A partition is stored as a label vector over ``0..n-1`` where the label
    ``-1`` means "unassigned".  Community IDs are normalised to ``0..k-1`` in
    first-appearance order.
    """

    __slots__ = ("_labels", "_communities")

    UNASSIGNED = -1

    def __init__(self, labels: Sequence[int] | np.ndarray):
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 1:
            raise PartitionError(f"labels must be a 1-D sequence, got shape {labels.shape}")
        if len(labels) and labels.min() < -1:
            raise PartitionError("labels must be >= -1 (-1 marks unassigned vertices)")
        self._labels = self._normalise(labels)
        self._communities = self._build_communities(self._labels)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_labels(cls, labels: Sequence[int] | np.ndarray) -> "Partition":
        """Build a partition from a per-vertex label vector."""
        return cls(labels)

    @classmethod
    def from_communities(
        cls, communities: Iterable[Iterable[int]], num_vertices: int
    ) -> "Partition":
        """Build a partition from explicit vertex sets.

        The sets must be pairwise disjoint; vertices not contained in any set
        are left unassigned.
        """
        labels = np.full(num_vertices, cls.UNASSIGNED, dtype=np.int64)
        for community_id, community in enumerate(communities):
            for vertex in community:
                vertex = int(vertex)
                if not (0 <= vertex < num_vertices):
                    raise PartitionError(
                        f"vertex {vertex} out of range for {num_vertices} vertices"
                    )
                if labels[vertex] != cls.UNASSIGNED:
                    raise PartitionError(
                        f"vertex {vertex} appears in more than one community"
                    )
                labels[vertex] = community_id
        return cls(labels)

    @classmethod
    def singletons(cls, num_vertices: int) -> "Partition":
        """Return the partition where every vertex is its own community."""
        return cls(np.arange(num_vertices, dtype=np.int64))

    @classmethod
    def single_community(cls, num_vertices: int) -> "Partition":
        """Return the partition with all vertices in one community."""
        return cls(np.zeros(num_vertices, dtype=np.int64))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the label vector (assigned or not)."""
        return len(self._labels)

    @property
    def num_communities(self) -> int:
        """Number of non-empty communities."""
        return len(self._communities)

    @property
    def labels(self) -> np.ndarray:
        """The per-vertex label vector (read-only view, ``-1`` = unassigned)."""
        view = self._labels.view()
        view.flags.writeable = False
        return view

    def communities(self) -> list[frozenset[int]]:
        """Return the list of communities as frozensets, ordered by community ID."""
        return list(self._communities)

    def community_of(self, vertex: int) -> int:
        """Return the community ID of ``vertex`` (``-1`` when unassigned)."""
        self._check_vertex(vertex)
        return int(self._labels[vertex])

    def members(self, community_id: int) -> frozenset[int]:
        """Return the vertex set of community ``community_id``."""
        if not (0 <= community_id < len(self._communities)):
            raise PartitionError(
                f"community {community_id} does not exist (have {len(self._communities)})"
            )
        return self._communities[community_id]

    def community_containing(self, vertex: int) -> frozenset[int]:
        """Return the vertex set of the community containing ``vertex``.

        Raises :class:`PartitionError` when the vertex is unassigned.
        """
        label = self.community_of(vertex)
        if label == self.UNASSIGNED:
            raise PartitionError(f"vertex {vertex} is not assigned to any community")
        return self._communities[label]

    def sizes(self) -> list[int]:
        """Return the community sizes ordered by community ID."""
        return [len(c) for c in self._communities]

    def assigned_vertices(self) -> np.ndarray:
        """Return the sorted array of vertices that belong to some community."""
        return np.flatnonzero(self._labels != self.UNASSIGNED)

    def unassigned_vertices(self) -> np.ndarray:
        """Return the sorted array of vertices not assigned to any community."""
        return np.flatnonzero(self._labels == self.UNASSIGNED)

    def is_complete(self) -> bool:
        """Return ``True`` when every vertex is assigned to a community."""
        return bool(np.all(self._labels != self.UNASSIGNED))

    def as_membership_dict(self) -> dict[int, int]:
        """Return ``{vertex: community_id}`` for all assigned vertices."""
        return {
            int(v): int(self._labels[v])
            for v in np.flatnonzero(self._labels != self.UNASSIGNED)
        }

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def agrees_with(self, other: "Partition") -> bool:
        """Return ``True`` when both partitions induce the same vertex grouping.

        Community IDs are allowed to differ; only the grouping matters.
        """
        if self.num_vertices != other.num_vertices:
            return False
        return set(self._communities) == set(other._communities) and np.array_equal(
            self._labels == self.UNASSIGNED, other._labels == other.UNASSIGNED
        )

    def restricted_to(self, vertices: Iterable[int]) -> "Partition":
        """Return a copy where only ``vertices`` keep their assignment."""
        keep = np.zeros(self.num_vertices, dtype=bool)
        for vertex in vertices:
            self._check_vertex(int(vertex))
            keep[int(vertex)] = True
        labels = np.where(keep, self._labels, self.UNASSIGNED)
        return Partition(labels)

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[frozenset[int]]:
        return iter(self._communities)

    def __len__(self) -> int:
        return len(self._communities)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return np.array_equal(self._labels, other._labels)

    def __hash__(self) -> int:
        return hash(self._labels.tobytes())

    def __repr__(self) -> str:
        return (
            f"Partition(n={self.num_vertices}, communities={self.num_communities}, "
            f"sizes={self.sizes()})"
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _normalise(labels: np.ndarray) -> np.ndarray:
        """Renumber community IDs to 0..k-1 in order of first appearance."""
        normalised = np.full(len(labels), Partition.UNASSIGNED, dtype=np.int64)
        mapping: dict[int, int] = {}
        for index, label in enumerate(labels.tolist()):
            if label == Partition.UNASSIGNED:
                continue
            if label not in mapping:
                mapping[label] = len(mapping)
            normalised[index] = mapping[label]
        return normalised

    @staticmethod
    def _build_communities(labels: np.ndarray) -> list[frozenset[int]]:
        count = int(labels.max()) + 1 if len(labels) and labels.max() >= 0 else 0
        members: list[list[int]] = [[] for _ in range(count)]
        for vertex, label in enumerate(labels.tolist()):
            if label != Partition.UNASSIGNED:
                members[label].append(vertex)
        return [frozenset(m) for m in members]

    def _check_vertex(self, vertex: int) -> None:
        if not (0 <= int(vertex) < self.num_vertices):
            raise PartitionError(
                f"vertex {vertex} out of range for {self.num_vertices} vertices"
            )
