"""Unified detection engine: one ``detect()`` facade over every execution backend.

The CDRW algorithm has one definition but many executors — the scalar pool
loop, the batched multi-seed executor, the parallel shared-walk variant, the
CONGEST message-level simulation, the k-machine simulation, and the
related-work baselines.  Historically each was its own entry point with its
own ad-hoc signature of ``seed``/``workers``/``dtype``/``batch_size`` knobs.
This module makes the executors *backends* behind a single stable surface:

* a **registry** (:func:`register_backend` / :func:`get_backend` /
  :func:`available_backends`) mapping names — ``"scalar"``, ``"batched"``,
  ``"parallel"``, ``"congest"``, ``"kmachine"`` and the related-work methods
  as ``"baseline:<name>"`` — to :class:`Backend` entries, so a new executor
  (distributed, GPU, streaming) is a registry entry instead of an eighth
  bespoke function;
* a frozen :class:`RunConfig` dataclass unifying every *execution* knob (rng
  seed, explicit seed vertices, ``workers``, ``dtype``, ``batch_size``, the
  seed-spreading policy, machine counts, capture flags) next to the existing
  *algorithmic* :class:`~repro.core.parameters.CDRWParameters`;
* the :func:`detect` facade — ``detect(graph, backend="batched",
  params=..., config=...)`` — which resolves the backend, times the run and
  wraps the outcome in a :class:`RunReport`;
* :class:`RunReport`, a structured, JSON-serializable record bundling the
  :class:`~repro.core.result.DetectionResult`, per-phase cost reports (which
  sum — ``sum(report.phase_costs.values())`` — to the backend's total
  cost), wall-clock timings, and backend metadata.

The seven legacy entry points (``detect_community``, ``detect_communities``,
``detect_community_batch``, ``detect_communities_batched``,
``detect_communities_parallel``, ``detect_communities_congest``,
``detect_communities_kmachine``) survive as thin shims that route through
this registry with **identical** outputs — same RNG draw sequences, same
communities, same cost reports — asserted by ``tests/test_api.py``.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field, fields, replace
from typing import TYPE_CHECKING, Any, Callable, Mapping

import numpy as np

from .baselines.averaging import averaging_dynamics
from .baselines.clementi import clementi_two_communities
from .baselines.label_propagation import label_propagation
from .baselines.spectral import spectral_clustering
from .baselines.walktrap import walktrap_communities
from .congest.network import CostReport
from .core.mixing_set import LargestMixingSet
from .execution import EXECUTOR_PROCESS, EXECUTOR_THREAD, resolve_executor
from .core.parameters import CDRWParameters
from .core.result import CommunityResult, DetectionResult
from .exceptions import BackendError
from .graphs.graph import Graph
from .graphs.partition import Partition
from .kmachine.simulator import KMachineCost

if TYPE_CHECKING:
    from .session import DetectionSession

__all__ = [
    "Backend",
    "BackendOutcome",
    "RunConfig",
    "RunReport",
    "available_backends",
    "detect",
    "get_backend",
    "register_backend",
    "split_batched_report",
    "unregister_backend",
]


# ----------------------------------------------------------------------
# Run configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunConfig:
    """Execution knobs shared by every backend, one immutable object.

    Algorithmic parameters (thresholds, schedules, δ) stay in
    :class:`~repro.core.parameters.CDRWParameters`; this class holds only
    *how* a detection is executed.  Backends read the fields they understand
    and ignore the rest, so one config can be reused across backends.

    Attributes
    ----------
    seed:
        RNG seed (or an existing :class:`numpy.random.Generator`) driving the
        pool draws / baseline randomness.  Generators are accepted for
        call-site compatibility but are not JSON-serializable (serialized as
        ``None``).
    seeds:
        Optional explicit seed vertices.  When set, pool drawing is skipped
        and the listed seeds are processed in order (scalar, batched, congest
        and kmachine backends).
    max_seeds:
        Optional cap on the number of seeds processed.
    batch_size:
        Seeds per batched pass (batched backend; ``1`` reproduces the scalar
        pool loop RNG-exactly).
    workers:
        Worker count of the execution tier: threads for the batched kernels
        on the ``"thread"`` executor, worker processes on the ``"process"``
        executor (``None`` → the ``REPRO_WORKERS`` environment override,
        default serial; ``0`` → all cores).  Results are identical for every
        value on either tier.
    executor:
        Execution tier of the ``batched`` and ``parallel`` backends:
        ``"thread"`` (in-process batched kernels, the default) or
        ``"process"`` (seed shards on a worker-process pool sharing the CSR
        graph through :mod:`multiprocessing.shared_memory` — see
        :mod:`repro.execution_process`).  ``None`` defers to the
        ``REPRO_EXECUTOR`` environment override, default ``"thread"``.
        Everything the run *computes* — detections, cost totals, artifacts —
        is identical across tiers; the report fields that *describe* the run
        (``config``, wall-clock ``timings``, executor metadata) naturally
        name the tier that produced them.
    dtype:
        Precision of the batched mixing-set scan: ``"float64"`` (exact,
        default) or ``"float32"`` (fast path, ≈-close only).
    num_communities:
        The community-count estimate ``r``: the number of simultaneously
        started seeds of the parallel backend, and the cluster count of the
        ``baseline:spectral`` / ``baseline:walktrap`` backends.
    seed_min_distance:
        Minimum pairwise hop distance between spread seeds (parallel
        backend's seed-spreading policy).
    overlap_merge_threshold:
        Jaccard overlap above which two parallel detections are considered
        duplicates of the same block.
    num_machines:
        Machine count ``k`` of the kmachine backend.
    partition_seed:
        Seed of the kmachine random vertex partition.
    count_only:
        CONGEST backend: charge the identical round/message schedule without
        materialising per-hop message objects (``False`` only on small
        graphs).
    capture_history:
        Whether the per-step mixing-set history traces are built at all.
        With the default ``True`` every
        :class:`~repro.core.result.CommunityResult` carries its full trace
        and :meth:`RunReport.to_dict` serializes it (the bulk of a
        serialized report).  ``False`` skips constructing the traces
        end-to-end on the scalar, batched and parallel backends — the
        detect loops never accumulate them and process-tier workers never
        build or pickle them — so each result's ``history`` is empty;
        the detected communities, walk lengths, stop reasons, δ and every
        cost total are unchanged (the stopping rule consumes each step's
        mixing set directly, never the accumulated list).  The congest,
        kmachine and baseline backends ignore the flag at run time (their
        native results carry no per-step traces to skip) but still honor
        it at serialization time.
    capture_distributions:
        Batched backend only: store each community's final walk distribution
        in :attr:`RunReport.artifacts` under ``"final_distributions"`` (one
        row per detected community, aligned with ``detection.communities``).
        Opt-in — the artefact is ``n`` floats per community.
    """

    seed: int | np.random.Generator | None = None
    seeds: tuple[int, ...] | None = None
    max_seeds: int | None = None
    batch_size: int = 8
    workers: int | None = None
    executor: str | None = None
    dtype: str = "float64"
    num_communities: int | None = None
    seed_min_distance: int = 2
    overlap_merge_threshold: float = 0.5
    num_machines: int = 4
    partition_seed: int | None = None
    count_only: bool = True
    capture_history: bool = True
    capture_distributions: bool = False

    def __post_init__(self) -> None:
        if self.seeds is not None:
            object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if self.dtype not in ("float64", "float32"):
            raise BackendError(
                f"dtype must be 'float64' or 'float32', got {self.dtype!r}"
            )
        if self.executor is not None and self.executor not in (
            EXECUTOR_THREAD,
            EXECUTOR_PROCESS,
        ):
            raise BackendError(
                f"executor must be '{EXECUTOR_THREAD}' or '{EXECUTOR_PROCESS}' "
                f"(or None for the REPRO_EXECUTOR default), got {self.executor!r}"
            )

    def with_overrides(self, **changes: object) -> "RunConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """Return a JSON-safe dict (external Generator seeds become ``None``)."""
        data = asdict(self)
        if not (self.seed is None or isinstance(self.seed, int)):
            data["seed"] = None
        if self.seeds is not None:
            data["seeds"] = list(self.seeds)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        if kwargs.get("seeds") is not None:
            kwargs["seeds"] = tuple(kwargs["seeds"])
        return cls(**kwargs)


# ----------------------------------------------------------------------
# Backend protocol and registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BackendOutcome:
    """What a backend runner hands back to the :func:`detect` facade.

    Attributes
    ----------
    detection:
        The detected communities (always present, every backend).
    phase_costs:
        Named per-phase cost reports; values support ``+`` and ``sum`` so
        the facade can aggregate them (:class:`~repro.congest.network.CostReport`
        or :class:`~repro.kmachine.simulator.KMachineCost`).  Empty for
        purely local backends.
    timings:
        Backend-internal wall-clock phases (the facade adds
        ``total_seconds``).
    extras:
        JSON-safe backend metadata (e.g. BFS depths, convergence flags).
    artifacts:
        JSON-safe opt-in payloads (e.g. the final walk distributions when
        ``config.capture_distributions`` is set); carried into
        :attr:`RunReport.artifacts` and serialized with the report.
    native:
        The backend's full native result object (e.g.
        ``CongestDetectionResult``), for callers that need more than the
        unified view.  Not serialized.
    """

    detection: DetectionResult
    phase_costs: dict[str, CostReport | KMachineCost] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    extras: dict[str, object] = field(default_factory=dict)
    artifacts: dict[str, object] = field(default_factory=dict)
    native: object = None


Runner = Callable[
    [Graph, CDRWParameters | None, RunConfig, float | None], BackendOutcome
]


@dataclass(frozen=True)
class Backend:
    """A registered detection backend: a name, a description, and a runner.

    ``supports_session`` marks runners that accept the extra ``session``
    keyword argument of the resident-service path
    (:class:`~repro.session.DetectionSession`); the facade only forwards a
    session to such backends, so legacy four-argument runners keep working
    unchanged.
    """

    name: str
    description: str
    runner: Runner
    supports_session: bool = False

    def run(
        self,
        graph: Graph,
        params: CDRWParameters | None = None,
        config: RunConfig | None = None,
        delta_hint: float | None = None,
    ) -> BackendOutcome:
        """Execute this backend (without the facade's report wrapping)."""
        return self.runner(graph, params, config or RunConfig(), delta_hint)


_registry: dict[str, Backend] = {}


def register_backend(
    name: str,
    runner: Runner,
    description: str = "",
    replace_existing: bool = False,
    supports_session: bool = False,
) -> Backend:
    """Register a detection backend under ``name`` and return its entry.

    ``supports_session`` declares that ``runner`` accepts the keyword-only
    ``session`` argument (see :class:`Backend`).  Raises
    :class:`~repro.exceptions.BackendError` when the name is already taken,
    unless ``replace_existing`` is set.
    """
    if not name or not isinstance(name, str):
        raise BackendError(f"backend name must be a non-empty string, got {name!r}")
    if name in _registry and not replace_existing:
        raise BackendError(
            f"backend {name!r} is already registered; pass replace_existing=True "
            f"to override it"
        )
    backend = Backend(
        name=name,
        description=description,
        runner=runner,
        supports_session=supports_session,
    )
    _registry[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (raises when unknown)."""
    if name not in _registry:
        raise BackendError(_unknown_backend_message(name))
    del _registry[name]


def get_backend(name: str) -> Backend:
    """Return the registered backend ``name``.

    The error for an unknown name lists every registered backend, so a typo
    is a one-round-trip fix.
    """
    try:
        return _registry[name]
    except KeyError:
        raise BackendError(_unknown_backend_message(name)) from None


def available_backends() -> tuple[str, ...]:
    """Return the registered backend names, sorted."""
    return tuple(sorted(_registry))


def _unknown_backend_message(name: str) -> str:
    known = ", ".join(sorted(_registry)) or "(none)"
    return f"unknown backend {name!r}; available backends: {known}"


# ----------------------------------------------------------------------
# Run report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunReport:
    """Structured record of one :func:`detect` run.

    Attributes
    ----------
    backend:
        Name of the backend that ran.
    detection:
        The unified detection result.
    phase_costs:
        Named per-phase cost reports; ``sum(report.phase_costs.values())``
        (see :attr:`total_cost`) reproduces the backend's aggregate cost.
    timings:
        Wall-clock timings; always contains ``"total_seconds"``.
    metadata:
        JSON-safe context: graph size, backend description, backend extras.
    config:
        The :class:`RunConfig` the run used.
    params:
        The :class:`~repro.core.parameters.CDRWParameters` the run used
        (``None`` = paper defaults resolved inside the backend).
    artifacts:
        Opt-in JSON-safe payloads beyond the detection itself; currently
        ``"final_distributions"`` (one per-vertex probability row per
        detected community) when ``config.capture_distributions`` is set.
        Serialized and round-tripped exactly.
    native_result:
        The backend's native result object (excluded from comparison and
        serialization; ``None`` after a JSON round trip).
    """

    backend: str
    detection: DetectionResult
    phase_costs: dict[str, CostReport | KMachineCost]
    timings: dict[str, float]
    metadata: dict[str, object]
    config: RunConfig
    params: CDRWParameters | None
    artifacts: dict[str, object] = field(default_factory=dict)
    native_result: object = field(default=None, compare=False, repr=False)

    @property
    def total_cost(self) -> CostReport | KMachineCost | None:
        """Sum of the per-phase cost reports (``None`` for cost-free backends)."""
        if not self.phase_costs:
            return None
        return sum(self.phase_costs.values())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Return a JSON-safe dict; inverse of :meth:`from_dict`.

        The per-step mixing-set histories are included only when
        ``config.capture_history`` is set (the default) — they dominate the
        serialized size on long walks.
        """
        return {
            "backend": self.backend,
            "config": self.config.to_dict(),
            "params": None if self.params is None else asdict(self.params),
            "timings": dict(self.timings),
            "metadata": dict(self.metadata),
            "artifacts": dict(self.artifacts),
            "phase_costs": {
                name: _cost_to_dict(cost) for name, cost in self.phase_costs.items()
            },
            "total_cost": (
                None if self.total_cost is None else _cost_to_dict(self.total_cost)
            ),
            "detection": _detection_to_dict(
                self.detection, include_history=self.config.capture_history
            ),
        }

    def to_json(self, **dumps_kwargs: Any) -> str:
        """Serialize the report to a JSON string."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output.

        The round trip is exact (``from_dict(report.to_dict()) == report``)
        when the config's ``seed`` is an int/None and ``capture_history`` is
        on; ``native_result`` is not serialized and comes back ``None``.
        """
        params = data.get("params")
        return cls(
            backend=data["backend"],
            detection=_detection_from_dict(data["detection"]),
            phase_costs={
                name: _cost_from_dict(cost)
                for name, cost in data.get("phase_costs", {}).items()
            },
            timings=dict(data.get("timings", {})),
            metadata=dict(data.get("metadata", {})),
            config=RunConfig.from_dict(data.get("config", {})),
            params=None if params is None else CDRWParameters(**params),
            artifacts=dict(data.get("artifacts", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Rebuild a report from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def split_batched_report(report: RunReport) -> tuple[RunReport, ...]:
    """Split an explicit-seed batched report into one report per seed.

    Per-seed results are independent of batch composition (the PR 1/2
    kernel contracts), so slicing a wave report is exact: each returned
    report carries the same detection payload — community, cost totals,
    its row of ``final_distributions`` — that a one-shot single-seed call
    would have computed, bit for bit.  This is what lets a coalescing
    front end (:class:`repro.service.DetectionService`) answer many
    single-seed requests from one ``detect_batch`` wave.

    Only cost-free explicit-seed reports split this way: the report must
    have ``config.seeds`` set, no ``phase_costs`` (the simulator backends
    charge per *run*, which has no per-seed decomposition), and one
    community per requested seed, in request order.
    """
    if report.phase_costs:
        raise BackendError(
            f"cannot split a {report.backend!r} report with phase costs: "
            f"simulated communication is charged per run, not per seed"
        )
    seeds = report.config.seeds
    if seeds is None:
        raise BackendError(
            "cannot split a pool-mode report: config.seeds is not set, so "
            "there is no per-request decomposition to recover"
        )
    communities = report.detection.communities
    if len(communities) != len(seeds):
        raise BackendError(
            f"cannot split report: {len(seeds)} requested seeds but "
            f"{len(communities)} detected communities"
        )
    finals_obj = report.artifacts.get("final_distributions")
    finals: list[object] | None = None
    if finals_obj is not None:
        if not isinstance(finals_obj, list) or len(finals_obj) != len(seeds):
            raise BackendError(
                f"cannot split report: final_distributions does not carry "
                f"one row per requested seed ({len(seeds)} seeds)"
            )
        finals = finals_obj
    singles: list[RunReport] = []
    for position, (seed_vertex, community) in enumerate(zip(seeds, communities)):
        if community.seed != seed_vertex:
            raise BackendError(
                f"cannot split report: community {position} answers seed "
                f"{community.seed}, expected {seed_vertex} (results are not "
                f"in request order)"
            )
        artifacts: dict[str, object] = {}
        if finals is not None:
            artifacts["final_distributions"] = [finals[position]]
        singles.append(
            replace(
                report,
                detection=DetectionResult(
                    num_vertices=report.detection.num_vertices,
                    communities=(community,),
                ),
                config=report.config.with_overrides(seeds=(seed_vertex,)),
                timings=dict(report.timings),
                metadata=dict(report.metadata),
                artifacts=artifacts,
                native_result=None,
            )
        )
    return tuple(singles)


def _cost_to_dict(cost: CostReport | KMachineCost) -> dict:
    if isinstance(cost, CostReport):
        return {
            "kind": "congest",
            "rounds": cost.rounds,
            "messages": cost.messages,
            "messages_by_kind": dict(cost.messages_by_kind),
        }
    if isinstance(cost, KMachineCost):
        return {
            "kind": "kmachine",
            "rounds": cost.rounds,
            "inter_machine_messages": cost.inter_machine_messages,
            "local_messages": cost.local_messages,
            "congest_rounds_routed": cost.congest_rounds_routed,
        }
    raise BackendError(f"cannot serialize cost report of type {type(cost).__name__}")


def _cost_from_dict(data: Mapping) -> CostReport | KMachineCost:
    kind = data.get("kind")
    if kind == "congest":
        return CostReport(
            rounds=data["rounds"],
            messages=data["messages"],
            messages_by_kind=dict(data.get("messages_by_kind", {})),
        )
    if kind == "kmachine":
        return KMachineCost(
            rounds=data["rounds"],
            inter_machine_messages=data["inter_machine_messages"],
            local_messages=data["local_messages"],
            congest_rounds_routed=data["congest_rounds_routed"],
        )
    raise BackendError(f"cannot deserialize cost report of kind {kind!r}")


def _detection_to_dict(detection: DetectionResult, include_history: bool) -> dict:
    communities = []
    for result in detection.communities:
        entry = {
            "seed": result.seed,
            "community": sorted(result.community),
            "walk_length": result.walk_length,
            "stop_reason": result.stop_reason,
            "delta": result.delta,
        }
        if include_history:
            entry["history"] = [
                {
                    "walk_length": item.walk_length,
                    "size": item.size,
                    "members": sorted(item.members),
                    "deficit": item.deficit,
                    "mass": item.mass,
                    "sizes_examined": item.sizes_examined,
                }
                for item in result.history
            ]
        communities.append(entry)
    return {"num_vertices": detection.num_vertices, "communities": communities}


def _detection_from_dict(data: Mapping) -> DetectionResult:
    communities = []
    for entry in data.get("communities", ()):
        history = tuple(
            LargestMixingSet(
                walk_length=item["walk_length"],
                size=item["size"],
                members=frozenset(item["members"]),
                deficit=item["deficit"],
                mass=item["mass"],
                sizes_examined=item["sizes_examined"],
            )
            for item in entry.get("history", ())
        )
        communities.append(
            CommunityResult(
                seed=entry["seed"],
                community=frozenset(entry["community"]),
                walk_length=entry["walk_length"],
                history=history,
                stop_reason=entry["stop_reason"],
                delta=entry["delta"],
            )
        )
    return DetectionResult(
        num_vertices=data["num_vertices"], communities=tuple(communities)
    )


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
def detect(
    graph: Graph,
    backend: str = "batched",
    params: CDRWParameters | None = None,
    config: RunConfig | None = None,
    delta_hint: float | None = None,
    session: "DetectionSession | None" = None,
    **overrides: object,
) -> RunReport:
    """Detect communities of ``graph`` with the named backend.

    This is the single entry point the CLI, the experiments, the benchmarks
    and the examples run through.  ``params`` carries the algorithmic knobs
    (:class:`~repro.core.parameters.CDRWParameters`), ``config`` the
    execution knobs (:class:`RunConfig`); keyword ``overrides`` are applied
    on top of ``config`` for one-off tweaks, e.g.
    ``detect(g, "batched", seed=7, batch_size=16)``.

    ``session`` routes the run through a resident
    :class:`~repro.session.DetectionSession` holding ``graph``: the graph
    broadcast, worker pool and derived operators are reused across calls
    instead of rebuilt, with the computed payload bit-identical to the
    session-free run.  The session must have been created for this exact
    ``graph`` object, and the backend must support sessions (``"batched"``
    and ``"parallel"``).  ``params`` / ``config`` / ``delta_hint`` default
    to the session's own when omitted.

    Returns a :class:`RunReport`; the detected communities are identical to
    what the corresponding legacy entry point produces for the same knobs
    (RNG-sequence-preserving — asserted by ``tests/test_api.py``).
    """
    entry = get_backend(backend)
    if session is not None:
        if session.closed:
            raise BackendError("the detection session is closed")
        if graph is not session.graph:
            raise BackendError(
                "detect(session=...) requires the session's own graph object: "
                "a session's broadcast and caches are keyed to one graph"
            )
        if not entry.supports_session:
            raise BackendError(
                f"backend {entry.name!r} does not support resident sessions; "
                f"session-capable backends are registered with "
                f"supports_session=True"
            )
        if params is None:
            params = session.params
        if config is None:
            config = session.config
        if delta_hint is None:
            delta_hint = session.delta_hint
    resolved = config or RunConfig()
    if overrides:
        resolved = resolved.with_overrides(**overrides)
    start = time.perf_counter()
    if session is not None:
        outcome = entry.runner(graph, params, resolved, delta_hint, session=session)
    else:
        outcome = entry.runner(graph, params, resolved, delta_hint)
    elapsed = time.perf_counter() - start
    timings = {"total_seconds": elapsed}
    timings.update(outcome.timings)
    metadata: dict[str, object] = {
        "backend_description": entry.description,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
    }
    metadata.update(outcome.extras)
    return RunReport(
        backend=entry.name,
        detection=outcome.detection,
        phase_costs=dict(outcome.phase_costs),
        timings=timings,
        metadata=metadata,
        config=resolved,
        params=params,
        artifacts=dict(outcome.artifacts),
        native_result=outcome.native,
    )


# ----------------------------------------------------------------------
# Built-in backends
# ----------------------------------------------------------------------
def _scalar_runner(
    graph: Graph,
    params: CDRWParameters | None,
    config: RunConfig,
    delta_hint: float | None,
) -> BackendOutcome:
    from .core.cdrw import _detect_communities_impl, _detect_community_impl

    if config.seeds is not None:
        seed_list = list(config.seeds)
        if config.max_seeds is not None:
            seed_list = seed_list[: config.max_seeds]
        communities = tuple(
            _detect_community_impl(
                graph, s, params, delta_hint, capture_history=config.capture_history
            )
            for s in seed_list
        )
        detection = DetectionResult(
            num_vertices=graph.num_vertices, communities=communities
        )
    else:
        detection = _detect_communities_impl(
            graph,
            params,
            delta_hint,
            seed=config.seed,
            max_seeds=config.max_seeds,
            capture_history=config.capture_history,
        )
    return BackendOutcome(detection=detection)


def _distribution_rows(finals: np.ndarray) -> list[list[float]]:
    """Serialize an ``(n, k)`` final-distribution matrix as one row per community.

    ``ndarray.tolist()`` emits the exact doubles, and ``json`` round-trips
    finite doubles exactly, so rebuilding the matrix from a (possibly
    serialized) report reproduces it bit for bit.
    """
    return [finals[:, index].tolist() for index in range(finals.shape[1])]


def _batched_runner(
    graph: Graph,
    params: CDRWParameters | None,
    config: RunConfig,
    delta_hint: float | None,
    *,
    session: "DetectionSession | None" = None,
) -> BackendOutcome:
    if session is not None:
        return session._run_batched(params, config, delta_hint)
    executor = resolve_executor(config.executor)
    if executor == EXECUTOR_PROCESS:
        from .execution_process import detect_batched_process

        outcome = detect_batched_process(
            graph,
            params,
            delta_hint,
            seed=config.seed,
            max_seeds=config.max_seeds,
            batch_size=config.batch_size,
            seeds=config.seeds,
            workers=config.workers,
            dtype=config.dtype,
            capture_distributions=config.capture_distributions,
            capture_history=config.capture_history,
        )
        artifacts: dict[str, object] = {}
        finals = None
        if config.capture_distributions and outcome.final_distributions is not None:
            finals = outcome.final_distributions
            artifacts["final_distributions"] = _distribution_rows(finals)
        return BackendOutcome(
            detection=outcome.detection,
            timings=dict(outcome.timings),
            extras=dict(outcome.extras),
            artifacts=artifacts,
            native=finals,
        )

    from .core.batched import _detect_communities_batched_impl

    result = _detect_communities_batched_impl(
        graph,
        params,
        delta_hint,
        seed=config.seed,
        max_seeds=config.max_seeds,
        batch_size=config.batch_size,
        seeds=config.seeds,
        workers=config.workers,
        dtype=np.dtype(config.dtype),
        capture_distributions=config.capture_distributions,
        capture_history=config.capture_history,
    )
    artifacts = {}
    finals = None
    if config.capture_distributions:
        detection, finals = result
        artifacts["final_distributions"] = _distribution_rows(finals)
    else:
        detection = result
    # The raw (n, k) matrix rides along as the (unserialized) native result
    # so in-memory consumers — detect_community_batch — read it back without
    # re-parsing the list artifact.
    return BackendOutcome(
        detection=detection,
        extras={"executor": executor},
        artifacts=artifacts,
        native=finals,
    )


def _sharded_runner(
    graph: Graph,
    params: CDRWParameters | None,
    config: RunConfig,
    delta_hint: float | None,
) -> BackendOutcome:
    from .execution_sharded import detect_batched_sharded

    outcome = detect_batched_sharded(
        graph,
        params,
        delta_hint,
        seed=config.seed,
        max_seeds=config.max_seeds,
        batch_size=config.batch_size,
        seeds=config.seeds,
        workers=config.workers,
        partition_seed=config.partition_seed,
        dtype=config.dtype,
        capture_distributions=config.capture_distributions,
        capture_history=config.capture_history,
    )
    artifacts: dict[str, object] = {}
    finals = None
    if config.capture_distributions and outcome.final_distributions is not None:
        finals = outcome.final_distributions
        artifacts["final_distributions"] = _distribution_rows(finals)
    return BackendOutcome(
        detection=outcome.detection,
        timings=dict(outcome.timings),
        extras=dict(outcome.extras),
        artifacts=artifacts,
        native=finals,
    )


def _parallel_runner(
    graph: Graph,
    params: CDRWParameters | None,
    config: RunConfig,
    delta_hint: float | None,
    *,
    session: "DetectionSession | None" = None,
) -> BackendOutcome:
    if config.num_communities is None:
        raise BackendError(
            "the 'parallel' backend needs the community-count estimate r: "
            "pass config=RunConfig(num_communities=...)"
        )
    if session is not None:
        return session._run_parallel(params, config, delta_hint)
    executor = resolve_executor(config.executor)
    if executor == EXECUTOR_PROCESS:
        from .execution_process import detect_parallel_process

        outcome = detect_parallel_process(
            graph,
            config.num_communities,
            params,
            delta_hint,
            seed=config.seed,
            overlap_merge_threshold=config.overlap_merge_threshold,
            seed_min_distance=config.seed_min_distance,
            workers=config.workers,
            capture_history=config.capture_history,
        )
        return BackendOutcome(
            detection=outcome.detection,
            timings=dict(outcome.timings),
            extras=dict(outcome.extras),
        )

    from .core.parallel import _detect_communities_parallel_impl

    detection = _detect_communities_parallel_impl(
        graph,
        config.num_communities,
        params,
        delta_hint,
        seed=config.seed,
        overlap_merge_threshold=config.overlap_merge_threshold,
        seed_min_distance=config.seed_min_distance,
        workers=config.workers,
        capture_history=config.capture_history,
    )
    return BackendOutcome(detection=detection, extras={"executor": executor})


def _congest_runner(
    graph: Graph,
    params: CDRWParameters | None,
    config: RunConfig,
    delta_hint: float | None,
) -> BackendOutcome:
    from .congest.cdrw_congest import _detect_communities_congest_impl

    result = _detect_communities_congest_impl(
        graph,
        params,
        delta_hint,
        seed=config.seed,
        max_seeds=config.max_seeds,
        count_only=config.count_only,
        seeds=config.seeds,
    )
    phase_costs = {
        f"community_{index}": item.cost
        for index, item in enumerate(result.per_community)
    }
    extras = {
        "bfs_depths": [item.bfs_depth for item in result.per_community],
    }
    return BackendOutcome(
        detection=result.detection,
        phase_costs=phase_costs,
        extras=extras,
        native=result,
    )


def _kmachine_runner(
    graph: Graph,
    params: CDRWParameters | None,
    config: RunConfig,
    delta_hint: float | None,
) -> BackendOutcome:
    from .kmachine.cdrw_kmachine import _detect_communities_kmachine_impl

    result = _detect_communities_kmachine_impl(
        graph,
        config.num_machines,
        params,
        delta_hint,
        seed=config.seed,
        partition_seed=config.partition_seed,
        max_seeds=config.max_seeds,
        seeds=config.seeds,
    )
    phase_costs = {
        f"community_{index}": item.cost
        for index, item in enumerate(result.per_community)
    }
    extras = {"num_machines": result.num_machines}
    return BackendOutcome(
        detection=result.detection,
        phase_costs=phase_costs,
        extras=extras,
        native=result,
    )


def _partition_detection(
    partition: Partition, num_vertices: int, stop_reason: str
) -> DetectionResult:
    """Wrap a baseline's disjoint partition as a :class:`DetectionResult`.

    Baselines have no seed vertices or walk traces; each community is
    reported with its smallest member as the nominal seed so the unified
    result type (and every metric built on it) applies unchanged.
    """
    communities = tuple(
        CommunityResult(
            seed=min(members),
            community=members,
            walk_length=0,
            history=(),
            stop_reason=stop_reason,
            delta=0.0,
        )
        for members in partition.communities()
        if members
    )
    return DetectionResult(num_vertices=num_vertices, communities=communities)


def _make_baseline_runner(method: str) -> Runner:
    def run(
        graph: Graph,
        params: CDRWParameters | None,
        config: RunConfig,
        delta_hint: float | None,
    ) -> BackendOutcome:
        extras: dict[str, object] = {}
        if method == "label_propagation":
            native = label_propagation(graph, seed=config.seed)
            extras["converged"] = bool(native.converged)
        elif method == "averaging_dynamics":
            native = averaging_dynamics(graph, seed=config.seed)
        elif method == "clementi":
            native = clementi_two_communities(graph, seed=config.seed)
        elif method in ("spectral", "walktrap"):
            if config.num_communities is None:
                raise BackendError(
                    f"the 'baseline:{method}' backend needs the cluster count: "
                    f"pass config=RunConfig(num_communities=...)"
                )
            if method == "spectral":
                native = spectral_clustering(
                    graph, config.num_communities, seed=config.seed
                )
            else:
                native = walktrap_communities(graph, config.num_communities)
        else:  # pragma: no cover - the registration loop enumerates methods
            raise BackendError(f"unhandled baseline method {method!r}")
        detection = _partition_detection(
            native.partition, graph.num_vertices, stop_reason=f"baseline:{method}"
        )
        return BackendOutcome(detection=detection, extras=extras, native=native)

    return run


_BUILTIN_BACKENDS: tuple[tuple[str, str, Runner], ...] = (
    (
        "scalar",
        "sequential pool loop of Algorithm 1 (one walk per seed)",
        _scalar_runner,
    ),
    (
        "batched",
        "multi-seed batches on one shared SpMM walk (RNG-identical at batch_size=1)",
        _batched_runner,
    ),
    (
        "sharded",
        "row-sharded walk across worker processes, each holding one vertex partition",
        _sharded_runner,
    ),
    (
        "parallel",
        "r spread seeds on one shared walk with overlap resolution",
        _parallel_runner,
    ),
    (
        "congest",
        "message-level CONGEST simulation with round/message accounting",
        _congest_runner,
    ),
    (
        "kmachine",
        "k-machine simulation of the CONGEST algorithm (Conversion Theorem)",
        _kmachine_runner,
    ),
)

_BASELINE_METHODS: tuple[str, ...] = (
    "label_propagation",
    "averaging_dynamics",
    "clementi",
    "spectral",
    "walktrap",
)


_SESSION_BACKENDS: frozenset[str] = frozenset({"batched", "parallel"})


def _register_builtins() -> None:
    for name, description, runner in _BUILTIN_BACKENDS:
        register_backend(
            name,
            runner,
            description=description,
            supports_session=name in _SESSION_BACKENDS,
        )
    for method in _BASELINE_METHODS:
        register_backend(
            f"baseline:{method}",
            _make_baseline_runner(method),
            description=f"related-work baseline: {method.replace('_', ' ')}",
        )


_register_builtins()
