"""Out-of-process execution tier: seed shards on a shared-memory process pool.

The thread tier (:mod:`repro.execution`) scales the batched kernels as far as
scipy/numpy release the GIL; pure-Python portions of the detection loop (the
stopping rule, history bookkeeping, candidate scheduling) stay serialized.
This module is the tier past that limit, mirroring the paper's k-machine
deployment in-process: ``k`` worker *processes*, each running the unchanged
batched detection kernel on its own shard of the seed pool.

The design has three parts:

* **One graph broadcast, zero per-task pickling.**  :class:`SharedGraph`
  copies the CSR arrays (``indptr`` / ``indices`` / ``degrees``) into
  :mod:`multiprocessing.shared_memory` segments once; every worker attaches
  the segments read-only at pool start-up and rebuilds the :class:`Graph`
  through the zero-copy :meth:`~repro.graphs.graph.Graph.from_csr`
  constructor.  Tasks then carry only seed lists and parameters — the graph
  never crosses a pipe.
* **Deterministic sharding.**  A batch of seeds is split into contiguous
  shards with the same :func:`~repro.execution.block_ranges` partition the
  thread tier uses — a pure function of ``(count, workers)``, never of
  timing — and shard results are merged back in shard order.  Every
  per-seed :class:`~repro.core.result.CommunityResult` is *identical* to
  the serial facade's because the batched kernels guarantee per-column
  results independent of batch composition (the PR 1 bit-identical-walk and
  PR 2 exact-search contracts).
* **Parent-side RNG.**  All randomness — pool draws, seed spreading — runs
  in the parent with the exact draw sequence of the serial implementation;
  worker shards are pure functions of ``(graph, seeds, parameters, δ)``
  (the walk is a deterministic power iteration, not a sampled trajectory),
  so no seed state needs to be split across processes and results cannot
  depend on scheduling.  The stopping parameter δ is resolved once in the
  parent and shipped resolved (``resolve_delta`` is idempotent on its own
  output), so workers skip the spectral conductance estimate.

Worker processes run the batched kernels with ``workers=1`` — process-level
parallelism replaces thread-level parallelism rather than multiplying it —
which is bit-identical by the thread tier's own guarantee.

The tier is selected through ``RunConfig(executor="process")`` (or the
``REPRO_EXECUTOR`` environment override) on the ``batched`` and ``parallel``
backends of :mod:`repro.api`; ``tests/test_process_executor.py`` pins the
computed report payload — detections, cost totals, artifacts, serialized
form — against the serial facade at several worker counts (the fields that
describe the run itself — config, wall-clock timings, executor metadata —
naturally differ).
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ProcessPoolExecutor, wait
from dataclasses import dataclass, field

import multiprocessing

import numpy as np

from .core.parameters import CDRWParameters
from .core.result import CommunityResult, DetectionResult
from .exceptions import AlgorithmError, ReproError
from .graphs.graph import Graph
from .graphs.storage import AttachedCSR, SharedCSRHandle, SharedCSRStorage
from .utils import as_rng

from .core.batched import _detect_community_batch_impl, _pool_loop
from .core.parallel import _merge_and_resolve, select_spread_seeds
from .execution import block_ranges, resolve_workers

__all__ = [
    "SharedGraph",
    "SharedGraphHandle",
    "AttachedGraph",
    "ProcessGraphPool",
    "ProcessOutcome",
    "detect_batched_process",
    "detect_parallel_process",
]


def _preferred_context() -> multiprocessing.context.BaseContext:
    """Return the ``fork`` context on Linux, ``spawn`` everywhere else.

    Fork keeps worker start-up at a few milliseconds (no interpreter boot,
    no re-import).  It is gated on the platform, not on mere availability:
    macOS *has* fork but CPython made ``spawn`` its default there
    (bpo-33725) because forking after any thread has started — Accelerate's
    BLAS pool from a prior numpy call, or this repo's own shared thread
    pool — can abort the child.  Everything this module ships across the
    process boundary — the handle, the shard tasks, the worker entry points
    — is module-level and picklable, so spawn works unchanged.
    """
    if sys.platform.startswith("linux"):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


# ----------------------------------------------------------------------
# Shared-memory graph broadcast
# ----------------------------------------------------------------------
# The segment machinery lives in the storage layer now
# (:mod:`repro.graphs.storage`): broadcasting a graph is just materializing
# its CSR arrays on the ``shm`` storage backend, which also serves
# ``REPRO_STORAGE=shm`` graph construction.  The historical names are kept
# as aliases so the session and the tests keep reading naturally.
AttachedGraph = AttachedCSR
SharedGraphHandle = SharedCSRHandle


class SharedGraph(SharedCSRStorage):
    """Parent-side owner of a graph broadcast into shared memory.

    A thin :class:`Graph`-taking constructor over
    :class:`~repro.graphs.storage.SharedCSRStorage`, which owns the segment
    creation, the picklable :attr:`handle` and the
    :func:`weakref.finalize`-backed unlink guarantee (see its docstring for
    the lifetime contract).
    """

    def __init__(self, graph: Graph) -> None:
        indptr, indices, degrees = graph.csr_arrays()
        super().__init__(graph.num_vertices, indptr, indices, degrees)


# ----------------------------------------------------------------------
# Worker-process entry points
# ----------------------------------------------------------------------
#: Set by :func:`_init_worker` when the pool starts; holds the attached graph
#: (and its segments, keeping them mapped) for the life of the worker.
_worker_attachment: AttachedGraph | None = None


def _init_worker(handle: SharedGraphHandle) -> None:
    global _worker_attachment
    _worker_attachment = handle.attach()


@dataclass(frozen=True)
class _ShardTask:
    """One worker task: a contiguous shard of a seed batch.

    ``capture_history=False`` tells the worker to skip building the per-seed
    mixing-set histories entirely, so throughput-only runs never construct —
    or pickle back across the pipe — :class:`LargestMixingSet` traces.
    """

    seeds: tuple[int, ...]
    parameters: CDRWParameters | None
    delta_hint: float | None
    capture_distributions: bool
    dtype: str
    capture_history: bool = True


@dataclass(frozen=True)
class _ShardResult:
    results: tuple[CommunityResult, ...]
    finals: np.ndarray | None
    seconds: float


def _run_shard(task: _ShardTask) -> _ShardResult:
    if _worker_attachment is None:
        raise ReproError("worker process was not initialised with a shared graph")
    start = time.perf_counter()
    outcome = _detect_community_batch_impl(
        _worker_attachment.graph,
        list(task.seeds),
        task.parameters,
        task.delta_hint,
        capture_distributions=task.capture_distributions,
        workers=1,
        dtype=np.dtype(task.dtype),
        capture_history=task.capture_history,
    )
    if task.capture_distributions:
        results, finals = outcome
    else:
        results, finals = outcome, None
    return _ShardResult(
        results=tuple(results), finals=finals, seconds=time.perf_counter() - start
    )


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class ProcessGraphPool:
    """Worker processes sharing one read-only broadcast graph.

    One-shot runs create the pool per detection (fork start-up is
    milliseconds): the graph is broadcast, ``workers`` processes attach it,
    seed batches are sharded with :func:`~repro.execution.block_ranges` and
    merged in shard order.  :meth:`close` tears down the workers and — when
    the pool owns the broadcast — unlinks the segments.

    A resident :class:`~repro.session.DetectionSession` instead broadcasts
    the graph once and passes the :class:`SharedGraph` in via ``shared``;
    the pool then only manages the executor and leaves the segments' lifetime
    with the session (``close()`` shuts the workers down but does not
    unlink), so the executor can be rebuilt — e.g. for a different worker
    count — without a re-broadcast.
    """

    def __init__(
        self,
        graph: Graph,
        workers: int | None = None,
        mp_context: multiprocessing.context.BaseContext | None = None,
        *,
        shared: SharedGraph | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self._owns_shared = shared is None
        self._shared = SharedGraph(graph) if shared is None else shared
        try:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=mp_context or _preferred_context(),
                initializer=_init_worker,
                initargs=(self._shared.handle,),
            )
        except BaseException:
            if self._owns_shared:
                self._shared.close()
            raise
        self.tasks_issued = 0
        self._task_seconds: list[float] = []

    def run_seeds(
        self,
        seeds: list[int],
        parameters: CDRWParameters | None,
        delta_hint: float | None,
        *,
        batch_size: int,
        capture_distributions: bool = False,
        dtype: str = "float64",
        capture_history: bool = True,
    ) -> tuple[list[CommunityResult], np.ndarray | None]:
        """Detect every seed in ``seeds``, sharded across the worker processes.

        The list is split into ``max(workers, ⌈len/batch_size⌉)`` contiguous
        shards — every worker busy, no shard wider than ``batch_size`` — and
        the merged results are identical to one serial batch over the same
        list (per-seed results do not depend on batch composition).  With
        ``capture_distributions`` the second return value holds the merged
        ``(n, len(seeds))`` final-distribution matrix, columns in seed order.

        Accounting (``tasks_issued`` / the per-shard timings) records
        exactly the shards that ran to completion — ``tasks_issued ==
        len(shard timings)`` always.  When a shard raises, the outstanding
        futures are cancelled and awaited first, the shards that did finish
        are still recorded, and only then does the worker's exception
        propagate, so a poisoned shard leaves the pool consistent and
        reusable.
        """
        if not seeds:
            finals = (
                np.zeros((self._shared.handle.num_vertices, 0), dtype=np.float64)
                if capture_distributions
                else None
            )
            return [], finals
        num_shards = max(self.workers, -(-len(seeds) // max(1, batch_size)))
        futures = []
        for start, stop in block_ranges(len(seeds), num_shards):
            task = _ShardTask(
                seeds=tuple(seeds[start:stop]),
                parameters=parameters,
                delta_hint=delta_hint,
                capture_distributions=capture_distributions,
                dtype=dtype,
                capture_history=capture_history,
            )
            futures.append(self._executor.submit(_run_shard, task))
        try:
            shards = [future.result() for future in futures]
        except BaseException:
            # A raising shard must not leave stragglers running against a
            # pool the caller may tear down, nor half-recorded accounting:
            # cancel what has not started, await what has, then record the
            # shards that completed successfully before re-raising.
            for future in futures:
                future.cancel()
            wait(futures)
            for future in futures:
                if future.done() and not future.cancelled() and future.exception() is None:
                    self._record(future.result())
            raise
        results: list[CommunityResult] = []
        final_chunks: list[np.ndarray] = []
        for shard in shards:
            results.extend(shard.results)
            if shard.finals is not None:
                final_chunks.append(shard.finals)
            self._record(shard)
        finals = np.hstack(final_chunks) if final_chunks else None
        return results, finals

    def _record(self, shard: _ShardResult) -> None:
        self._task_seconds.append(shard.seconds)
        self.tasks_issued += 1

    def mark(self) -> int:
        """Snapshot the accounting position for per-call reporting.

        Returns the number of completed shards recorded so far; pass it to
        :meth:`shard_timings` (and subtract it from :attr:`tasks_issued`)
        to report only the shards of one resident-session call.
        """
        return len(self._task_seconds)

    #: Per-shard timing keys are emitted individually up to this many shards;
    #: past it (long pool-mode runs) only the aggregates are reported, so a
    #: report's timing dict stays bounded.
    MAX_SHARD_TIMING_KEYS = 16

    def shard_timings(self, since: int = 0) -> dict[str, float]:
        """Wall-clock seconds per shard, in submission order, plus aggregates.

        ``shard_<i>_seconds`` is the busy time of the *i*-th shard task this
        pool ran (across every batch, in submission order — not a worker ID:
        the executor assigns tasks to whichever worker is free).
        ``shard_seconds_total`` / ``shard_seconds_max`` summarise the same
        numbers and are always present; the per-shard keys are dropped past
        :data:`MAX_SHARD_TIMING_KEYS` shards.  ``since`` (a :meth:`mark`
        snapshot) restricts the report to the shards recorded after it, with
        indices re-based to 0 — a session call's timing dict then has the
        same shape as a one-shot run's.
        """
        recorded = self._task_seconds[since:]
        timings = {
            "shard_seconds_total": float(sum(recorded)),
            "shard_seconds_max": float(max(recorded, default=0.0)),
        }
        if len(recorded) <= self.MAX_SHARD_TIMING_KEYS:
            for index, seconds in enumerate(recorded):
                timings[f"shard_{index}_seconds"] = seconds
        return timings

    def close(self) -> None:
        self._executor.shutdown(wait=True)
        if self._owns_shared:
            self._shared.close()

    def __enter__(self) -> "ProcessGraphPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Backend implementations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProcessOutcome:
    """What the process tier hands back to the :mod:`repro.api` runners."""

    detection: DetectionResult
    final_distributions: np.ndarray | None = None
    timings: dict[str, float] = field(default_factory=dict)
    extras: dict[str, object] = field(default_factory=dict)


def _serial_outcome(
    detection: DetectionResult, finals: np.ndarray | None
) -> ProcessOutcome:
    """Wrap an inline (no-pool) run — taken for edgeless/empty graphs only."""
    return ProcessOutcome(
        detection=detection,
        final_distributions=finals,
        extras={"executor": "process", "worker_processes": 0, "process_tasks": 0},
    )


def _pool_outcome(
    pool: ProcessGraphPool,
    detection: DetectionResult,
    finals: np.ndarray | None,
    since: int = 0,
) -> ProcessOutcome:
    """``since`` (a :meth:`ProcessGraphPool.mark` snapshot) restricts the
    timings and task count to the shards of one call on a persistent pool;
    one-shot runs use the default 0 (the pool's whole history)."""
    return ProcessOutcome(
        detection=detection,
        final_distributions=finals,
        timings=pool.shard_timings(since=since),
        extras={
            "executor": "process",
            "worker_processes": pool.workers,
            "process_tasks": pool.tasks_issued - since,
        },
    )


def _validate_batched_seeds(
    graph: Graph,
    seeds: tuple[int, ...] | list[int] | None,
    max_seeds: int | None,
    batch_size: int,
) -> list[int] | None:
    """Shared argument validation for the one-shot and session entry points.

    Returns the truncated explicit seed list, or ``None`` in pool mode.
    """
    if batch_size < 1:
        raise AlgorithmError(f"batch_size must be >= 1, got {batch_size}")
    if seeds is None:
        return None
    explicit = [int(s) for s in seeds]
    if max_seeds is not None:
        explicit = explicit[:max_seeds]
    for seed_vertex in explicit:
        if seed_vertex not in graph:
            raise AlgorithmError(
                f"seed vertex {seed_vertex} is not a vertex of {graph!r}"
            )
    return explicit


def _is_trivial(graph: Graph, explicit: list[int] | None, seeds_given: bool) -> bool:
    """Whether the run needs no pool: edgeless/empty graph or an empty seed list."""
    return (
        graph.num_edges == 0
        or graph.num_vertices == 0
        or (seeds_given and not explicit)
    )


def _trivial_batched_outcome(
    graph: Graph,
    parameters: CDRWParameters,
    delta_hint: float | None,
    *,
    seed: int | np.random.Generator | None,
    max_seeds: int | None,
    batch_size: int,
    explicit: list[int] | None,
    seeds_given: bool,
    dtype: str,
    capture_distributions: bool,
    capture_history: bool,
) -> ProcessOutcome:
    """The inline no-pool path for trivial runs (see :func:`_is_trivial`).

    Edgeless / empty runs hit the scalar fast path per seed; spinning up a
    pool would only add start-up latency.  Results are identical by the
    batch guarantee.
    """
    from .core.batched import _detect_communities_batched_impl

    outcome = _detect_communities_batched_impl(
        graph,
        parameters,
        delta_hint,
        seed=seed,
        max_seeds=max_seeds,
        batch_size=batch_size,
        seeds=explicit if seeds_given else None,
        workers=1,
        dtype=np.dtype(dtype),
        capture_distributions=capture_distributions,
        capture_history=capture_history,
    )
    if capture_distributions:
        detection, finals = outcome
    else:
        detection, finals = outcome, None
    return _serial_outcome(detection, finals)


def _run_batched_on_pool(
    pool: ProcessGraphPool,
    graph: Graph,
    parameters: CDRWParameters,
    delta: float,
    *,
    explicit: list[int] | None,
    seed: int | np.random.Generator | None,
    max_seeds: int | None,
    batch_size: int,
    capture_distributions: bool,
    dtype: str,
    capture_history: bool,
) -> tuple[list[CommunityResult], np.ndarray | None]:
    """Run one batched detection on an already-open pool (δ pre-resolved).

    Shared by the one-shot entry point and the resident session, so a
    session call executes exactly the sharding a one-shot run would.
    """
    if explicit is not None:
        return pool.run_seeds(
            explicit,
            parameters,
            delta,
            batch_size=batch_size,
            capture_distributions=capture_distributions,
            dtype=dtype,
            capture_history=capture_history,
        )
    return _pool_mode(
        pool,
        graph,
        parameters,
        delta,
        seed=seed,
        max_seeds=max_seeds,
        batch_size=batch_size,
        capture_distributions=capture_distributions,
        dtype=dtype,
        capture_history=capture_history,
    )


def detect_batched_process(
    graph: Graph,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    *,
    seed: int | np.random.Generator | None = None,
    max_seeds: int | None = None,
    batch_size: int = 8,
    seeds: tuple[int, ...] | list[int] | None = None,
    workers: int | None = None,
    dtype: str = "float64",
    capture_distributions: bool = False,
    capture_history: bool = True,
    mp_context: multiprocessing.context.BaseContext | None = None,
) -> ProcessOutcome:
    """The ``"batched"`` backend on the process tier.

    Detections (and, when captured, final distributions) are identical to
    :func:`repro.core.batched._detect_communities_batched_impl` with the same
    knobs: explicit seed lists are sharded directly; pool mode keeps the
    draw loop — and therefore the exact RNG draw sequence — in the parent
    and shards each round's batch.
    """
    parameters = parameters or CDRWParameters()
    explicit = _validate_batched_seeds(graph, seeds, max_seeds, batch_size)

    if _is_trivial(graph, explicit, seeds is not None):
        return _trivial_batched_outcome(
            graph,
            parameters,
            delta_hint,
            seed=seed,
            max_seeds=max_seeds,
            batch_size=batch_size,
            explicit=explicit,
            seeds_given=seeds is not None,
            dtype=dtype,
            capture_distributions=capture_distributions,
            capture_history=capture_history,
        )

    delta = parameters.resolve_delta(graph, delta_hint)
    with ProcessGraphPool(graph, workers, mp_context) as pool:
        results, finals = _run_batched_on_pool(
            pool,
            graph,
            parameters,
            delta,
            explicit=explicit,
            seed=seed,
            max_seeds=max_seeds,
            batch_size=batch_size,
            capture_distributions=capture_distributions,
            dtype=dtype,
            capture_history=capture_history,
        )
        detection = DetectionResult(
            num_vertices=graph.num_vertices, communities=tuple(results)
        )
        return _pool_outcome(pool, detection, finals)


def _pool_mode(
    pool: ProcessGraphPool,
    graph: Graph,
    parameters: CDRWParameters,
    delta: float,
    *,
    seed: int | np.random.Generator | None,
    max_seeds: int | None,
    batch_size: int,
    capture_distributions: bool,
    dtype: str,
    capture_history: bool = True,
) -> tuple[list[CommunityResult], np.ndarray | None]:
    """Algorithm 1's pool loop with each round's batch sharded across workers.

    The loop itself is the *same* :func:`~repro.core.batched._pool_loop` the
    serial impl runs — the draws happen in the parent against the same
    shrinking membership mask with the same generator, only each round's
    batch executes on the worker pool — so the drawn seed sequence (and with
    it every detection) matches the serial facade exactly
    (``tests/test_process_executor.py`` pins it).
    """
    final_chunks: list[np.ndarray] = []

    def run_batch(round_seeds: list[int]) -> list[CommunityResult]:
        round_results, round_finals = pool.run_seeds(
            round_seeds,
            parameters,
            delta,
            batch_size=batch_size,
            capture_distributions=capture_distributions,
            dtype=dtype,
            capture_history=capture_history,
        )
        if round_finals is not None:
            final_chunks.append(round_finals)
        return round_results

    results = _pool_loop(graph, as_rng(seed), batch_size, max_seeds, run_batch)
    if not capture_distributions:
        return results, None
    finals = (
        np.hstack(final_chunks)
        if final_chunks
        else np.zeros((graph.num_vertices, 0), dtype=np.float64)
    )
    return results, finals


def _validate_parallel_args(num_communities: int, overlap_merge_threshold: float) -> None:
    """Shared argument validation for the one-shot and session entry points."""
    if num_communities < 1:
        raise AlgorithmError(f"num_communities must be >= 1, got {num_communities}")
    if not (0.0 < overlap_merge_threshold <= 1.0):
        raise AlgorithmError(
            f"overlap_merge_threshold must be in (0, 1], got {overlap_merge_threshold}"
        )


def _run_parallel_on_pool(
    pool: ProcessGraphPool,
    graph: Graph,
    parameters: CDRWParameters,
    delta: float,
    spread: list[int],
    overlap_merge_threshold: float,
    capture_history: bool = True,
) -> DetectionResult:
    """Shard the ``r`` spread-seed detections on an open pool and resolve.

    Shared by the one-shot entry point and the resident session; the
    duplicate-merge / overlap-resolution steps run in the parent through the
    same :func:`~repro.core.parallel._merge_and_resolve` the thread tier
    uses, so the resolved communities are identical to the serial facade's.
    """
    raw_results, distributions = pool.run_seeds(
        spread,
        parameters,
        delta,
        batch_size=len(spread),
        capture_distributions=True,
        capture_history=capture_history,
    )
    resolved = _merge_and_resolve(
        list(raw_results), distributions, overlap_merge_threshold
    )
    return DetectionResult(num_vertices=graph.num_vertices, communities=tuple(resolved))


def detect_parallel_process(
    graph: Graph,
    num_communities: int,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    *,
    seed: int | np.random.Generator | None = None,
    overlap_merge_threshold: float = 0.5,
    seed_min_distance: int = 2,
    workers: int | None = None,
    capture_history: bool = True,
    mp_context: multiprocessing.context.BaseContext | None = None,
) -> ProcessOutcome:
    """The ``"parallel"`` backend on the process tier.

    Seed spreading runs in the parent (same draws as the serial path), the
    ``r`` detections are sharded across the workers with their final
    distributions captured, and the duplicate-merge / overlap-resolution
    steps run in the parent (see :func:`_run_parallel_on_pool`) — so the
    resolved communities are identical to the serial facade's.
    """
    _validate_parallel_args(num_communities, overlap_merge_threshold)
    parameters = parameters or CDRWParameters()
    rng = as_rng(seed)

    spread = select_spread_seeds(
        graph, num_communities, min_distance=seed_min_distance, seed=rng
    )
    if graph.num_edges == 0:
        raw_results, distributions = _detect_community_batch_impl(
            graph,
            spread,
            parameters,
            delta_hint,
            capture_distributions=True,
            workers=1,
            capture_history=capture_history,
        )
        resolved = _merge_and_resolve(
            list(raw_results), distributions, overlap_merge_threshold
        )
        detection = DetectionResult(
            num_vertices=graph.num_vertices, communities=tuple(resolved)
        )
        return _serial_outcome(detection, None)

    delta = parameters.resolve_delta(graph, delta_hint)
    with ProcessGraphPool(graph, workers, mp_context) as pool:
        detection = _run_parallel_on_pool(
            pool,
            graph,
            parameters,
            delta,
            spread,
            overlap_merge_threshold,
            capture_history=capture_history,
        )
        return _pool_outcome(pool, detection, None)
