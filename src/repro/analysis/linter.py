"""File discovery, rule execution and the ``repro lint`` front end.

``lint_paths`` walks the given files/directories (skipping ``__pycache__``
and hidden directories), parses each ``*.py`` file once, runs every
applicable rule, drops diagnostics silenced by ``# repro-lint:`` directives,
and returns the remainder in deterministic report order.  ``main`` is the
command-line entry point shared by ``repro lint`` and
``python -m repro.analysis``: it prints one ``path:line:col: CODE message``
line per finding and exits nonzero when anything (including a syntax error)
was found.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .diagnostics import Diagnostic, Suppressions
from .model import build_project_model
from .rules import FileContext, ProjectRule, Rule, all_rules, rule_ledger

from . import concurrency as _concurrency  # noqa: F401  (registers REP2xx)

__all__ = ["LintResult", "lint_file", "lint_paths", "main"]

#: Code used for files that fail to parse — not a rule (it cannot be
#: suppressed away meaningfully), but reported through the same channel.
SYNTAX_ERROR_CODE = "REP000"


@dataclass
class LintResult:
    """The outcome of one lint run: diagnostics plus file accounting."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run found nothing."""
        return not self.diagnostics


def _is_test_file(parts: tuple[str, ...]) -> bool:
    name = parts[-1]
    return (
        "tests" in parts[:-1]
        or name.startswith("test_")
        or name == "conftest.py"
    )


def _iter_python_files(paths: Sequence[str | Path]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.parts
                if any(
                    part == "__pycache__" or part.startswith(".") for part in parts
                ):
                    continue
                yield candidate
        else:
            yield path


def _parse_context(
    path: Path,
) -> tuple[FileContext | None, Suppressions | None, Diagnostic | None]:
    """Parse one file into its rule context, or a ``REP000`` diagnostic."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return (
            None,
            None,
            Diagnostic(
                path=str(path),
                line=error.lineno or 1,
                column=error.offset or 1,
                code=SYNTAX_ERROR_CODE,
                message=f"syntax error: {error.msg}",
            ),
        )
    parts = tuple(part for part in path.parts if part not in (".", ""))
    context = FileContext(
        path=str(path),
        parts=parts,
        tree=tree,
        source=source,
        is_test=_is_test_file(parts),
    )
    return context, Suppressions.from_source(source), None


def _run_project_rules(
    rules: Sequence[ProjectRule],
    scoped: Sequence[tuple[FileContext, Suppressions]],
) -> list[Diagnostic]:
    """Build one model over the in-scope files, run every project rule.

    A project rule's diagnostics may land in any modeled file (a lock-order
    cycle has edges in several); each is filtered through the suppression
    directives of the file it points at.
    """
    if not rules or not scoped:
        return []
    model = build_project_model([context for context, _ in scoped])
    suppressions_by_path = {context.path: supp for context, supp in scoped}
    diagnostics: list[Diagnostic] = []
    for rule in rules:
        for diagnostic in rule.check_project(model):
            suppressions = suppressions_by_path.get(diagnostic.path)
            if suppressions is None or not suppressions.is_suppressed(
                diagnostic.line, diagnostic.code
            ):
                diagnostics.append(diagnostic)
    return diagnostics


def _split_rules(
    rules: Sequence[Rule] | None,
) -> tuple[list[Rule], list[ProjectRule]]:
    file_rules: list[Rule] = []
    project_rules: list[ProjectRule] = []
    for rule in rules if rules is not None else all_rules():
        if isinstance(rule, ProjectRule):
            project_rules.append(rule)
        else:
            file_rules.append(rule)
    return file_rules, project_rules


def lint_file(
    path: str | Path, rules: Sequence[Rule] | None = None
) -> list[Diagnostic]:
    """Lint one file and return its (unsuppressed) diagnostics, sorted.

    Project (REP2xx) rules run over a model built from this single file —
    enough for self-contained fixtures; cross-file edges need
    :func:`lint_paths`.
    """
    path = Path(path)
    context, suppressions, parse_error = _parse_context(path)
    if parse_error is not None:
        return [parse_error]
    assert context is not None and suppressions is not None
    file_rules, project_rules = _split_rules(rules)
    diagnostics: list[Diagnostic] = []
    for rule in file_rules:
        if not rule.applies_to(context):
            continue
        for diagnostic in rule.check(context):
            if not suppressions.is_suppressed(diagnostic.line, diagnostic.code):
                diagnostics.append(diagnostic)
    applicable = [rule for rule in project_rules if rule.applies_to(context)]
    diagnostics.extend(_run_project_rules(applicable, [(context, suppressions)]))
    return sorted(diagnostics)


def lint_paths(
    paths: Sequence[str | Path], rules: Sequence[Rule] | None = None
) -> LintResult:
    """Lint every ``*.py`` file under ``paths`` and return the result.

    Per-file rules run file by file; the project (REP2xx) rules then run
    once over a model spanning every in-scope file of the run, so
    cross-file properties (lock-order cycles through call edges, requires
    contracts across modules) are visible.  Diagnostics come back sorted by
    (path, line, column, code), so output is stable across runs and
    filesystems.
    """
    file_rules, project_rules = _split_rules(rules)
    result = LintResult()
    seen: set[Path] = set()
    scoped: list[tuple[FileContext, Suppressions]] = []
    for path in _iter_python_files(paths):
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        result.files_checked += 1
        context, suppressions, parse_error = _parse_context(path)
        if parse_error is not None:
            result.diagnostics.append(parse_error)
            continue
        assert context is not None and suppressions is not None
        for rule in file_rules:
            if not rule.applies_to(context):
                continue
            for diagnostic in rule.check(context):
                if not suppressions.is_suppressed(
                    diagnostic.line, diagnostic.code
                ):
                    result.diagnostics.append(diagnostic)
        if any(rule.applies_to(context) for rule in project_rules):
            scoped.append((context, suppressions))
    result.diagnostics.extend(_run_project_rules(project_rules, scoped))
    result.diagnostics.sort()
    return result


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro lint`` / ``python -m repro.analysis``.

    Returns 0 when the tree is clean, 1 when any diagnostic was emitted,
    and 2 for usage errors (e.g. a path that does not exist).
    """
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based invariant checker for the detection engine: machine-"
            "checks the coding rules the bit-identical-results guarantee "
            "rests on (see CONTRIBUTING.md for the rule ledger)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    arguments = parser.parse_args(argv)

    if arguments.list_rules:
        print(f"{'code':<8} {'name':<26} summary")
        for code, name, summary, history in rule_ledger():
            print(f"{code:<8} {name:<26} {summary}")
            if history:
                print(f"{'':8} {'':26} history: {history}")
        return 0

    missing = [path for path in arguments.paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(f"repro lint: no such file or directory: {path}", file=sys.stderr)
        return 2

    result = lint_paths(arguments.paths)
    for diagnostic in result.diagnostics:
        print(diagnostic.format())
    if result.diagnostics:
        count = len(result.diagnostics)
        print(
            f"repro lint: {count} diagnostic{'s' if count != 1 else ''} in "
            f"{result.files_checked} file{'s' if result.files_checked != 1 else ''}",
            file=sys.stderr,
        )
        return 1
    return 0
