"""``python -m repro.analysis`` — the ``repro lint`` front end without install."""

import sys

from .linter import main

if __name__ == "__main__":
    sys.exit(main())
