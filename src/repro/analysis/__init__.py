"""Static analysis for the detection engine: the ``repro lint`` framework.

The engine's headline guarantee — *bit-identical results on every backend,
worker count and executor* — rests on a handful of coding invariants
(generator-passed RNG, exact integer round accounting, shared-memory
finalizers, facade-only backend access, explicit kernel dtypes, picklable
worker tasks) that used to be enforced only by convention and after-the-fact
regression tests.  This package machine-checks them on every push:

* :mod:`repro.analysis.diagnostics` — the :class:`Diagnostic` record and the
  inline ``# repro-lint: disable=<code>`` suppression parser;
* :mod:`repro.analysis.rules` — the :class:`Rule` base class, the rule
  registry, and the repo-specific rules (``REP101`` … ``REP106``), each
  grounded in a real past bug class (see ``CONTRIBUTING.md``);
* :mod:`repro.analysis.linter` — file discovery, rule execution and the
  ``repro lint`` command-line front end (also ``python -m repro.analysis``).

The linter is self-applied: ``repro lint src/ tests/`` must exit 0 on the
repository's own tree, and CI fails the build on any diagnostic.
"""

from __future__ import annotations

from .diagnostics import Diagnostic, Suppressions
from .linter import LintResult, lint_file, lint_paths, main
from .rules import Rule, all_rules, get_rule, register_rule

__all__ = [
    "Diagnostic",
    "LintResult",
    "Rule",
    "Suppressions",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "main",
    "register_rule",
]
