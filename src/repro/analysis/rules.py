"""The repo-specific lint rules and their registry.

Each rule is an :class:`ast.NodeVisitor`-style check with a stable code, a
one-line summary, and a rationale naming the historical bug class it guards
against (the long-form ledger lives in ``CONTRIBUTING.md``).  Rules are
registered with :func:`register_rule` and discovered through
:func:`all_rules`; a rule applies to a file when the file's path matches the
rule's ``packages`` scope (``None`` = everywhere) and, for rules with
``include_tests = False``, the file is not a test module.

The shipped rules:

========  ===========================================================
``REP101``  RNG discipline — no ``random`` module, no legacy
            ``np.random.*`` global-state API; randomness flows through
            :class:`numpy.random.Generator` objects.
``REP102``  Exact round accounting — no float ``log2`` in congest /
            k-machine / random-walk round and step counts; use
            :func:`repro.utils.ceil_log2`.
``REP103``  Shared-memory hygiene — every ``SharedMemory(create=True)``
            needs a ``weakref.finalize`` registration in the same class.
``REP104``  Registry discipline — backend ``*_impl`` functions are only
            imported by the engine internals and tests; everything else
            goes through :func:`repro.api.detect`.
``REP105``  Kernel dtype discipline — ``np.zeros/empty/ones/full`` in the
            kernel packages must pass an explicit ``dtype=``.
``REP106``  Picklable worker tasks — callables handed to a pool
            ``.submit()`` must be module-level (no lambdas, no closures).
``REP107``  Storage-layer confinement — ``SharedMemory`` and
            ``np.memmap`` construction lives in ``graphs/storage.py``
            only; everything else goes through the storage backends.
``REP108``  Non-blocking event loop — no ``time.sleep``, bare
            ``.result()`` or synchronous socket/file I/O inside
            ``async def`` bodies in the service package.
========  ===========================================================
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

from .diagnostics import Diagnostic

if TYPE_CHECKING:
    from .model import ProjectModel

__all__ = [
    "FileContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
    "register_rule",
]


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one source file.

    Attributes
    ----------
    path:
        The path as it should appear in diagnostics.
    parts:
        The path split into components (used for package scoping).
    tree:
        The parsed module.
    source:
        The raw source text.
    is_test:
        Whether the file is a test module (under a ``tests`` directory, or
        named ``test_*.py`` / ``conftest.py``).
    """

    path: str
    parts: tuple[str, ...]
    tree: ast.Module
    source: str
    is_test: bool


class Rule:
    """Base class of one lint rule.

    Subclasses set the class attributes and implement :meth:`check`, which
    yields :class:`~repro.analysis.diagnostics.Diagnostic` records.  The
    :meth:`report` helper anchors a diagnostic to an AST node with the
    rule's own code.
    """

    #: Stable diagnostic code, e.g. ``"REP101"``.
    code: str = ""
    #: Short kebab-case name, shown by ``repro lint --list-rules``.
    name: str = ""
    #: One-line summary of the enforced invariant.
    summary: str = ""
    #: The historical bug class that motivated the rule — one sentence,
    #: printed by ``repro lint --list-rules`` as the rule's ledger entry.
    history: str = ""
    #: Directory names scoping the rule (``None`` = every file).  A file is
    #: in scope when any of its parent directories matches an entry.
    packages: tuple[str, ...] | None = None
    #: Whether the rule also applies to test modules.
    include_tests: bool = True

    def applies_to(self, context: FileContext) -> bool:
        """Return whether this rule should run on ``context``'s file."""
        if context.is_test and not self.include_tests:
            return False
        if self.packages is None:
            return True
        directories = context.parts[:-1]
        return any(package in directories for package in self.packages)

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        """Yield the diagnostics of this rule for one file."""
        raise NotImplementedError

    def report(self, context: FileContext, node: ast.AST, message: str) -> Diagnostic:
        """Build a diagnostic for ``node`` with this rule's code."""
        return Diagnostic(
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


class ProjectRule(Rule):
    """Base class of the whole-project (REP2xx) concurrency rules.

    Unlike :class:`Rule`, a project rule does not look at one file at a
    time: the linter first builds a :class:`~repro.analysis.model.
    ProjectModel` over every in-scope file of the run, then calls
    :meth:`check_project` once.  Diagnostics may therefore point at any
    file of the model (a lock-order cycle names edges in two classes), and
    the linter routes each one through *its own file's* suppression
    directives.

    Scope: the concurrent packages only — ``service.py``,
    ``service_net.py``, ``session.py``, ``execution*.py`` and the storage
    tier ``storage.py`` — and never test modules.  The per-file
    :meth:`Rule.check` is intentionally a no-op.
    """

    include_tests = False

    #: Module basenames (regex) the concurrency tier models and checks.
    scope_pattern = re.compile(r"^(service|service_net|session|execution\w*|storage)\.py$")

    def applies_to(self, context: FileContext) -> bool:
        if context.is_test:
            return False
        return bool(self.scope_pattern.match(context.parts[-1]))

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        return iter(())

    def check_project(self, model: "ProjectModel") -> Iterator[Diagnostic]:
        """Yield the diagnostics of this rule over the whole project model."""
        raise NotImplementedError


_registry: dict[str, Rule] = {}


def register_rule(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator registering a rule under its ``code``.

    Codes are unique; re-registering one raises ``ValueError`` (tests that
    need a scratch registry instantiate rules directly instead).
    """
    if not rule_class.code:
        raise ValueError(f"rule {rule_class.__name__} has no code")
    if rule_class.code in _registry:
        raise ValueError(f"duplicate rule code {rule_class.code!r}")
    _registry[rule_class.code] = rule_class()
    return rule_class


def all_rules() -> tuple[Rule, ...]:
    """Return every registered rule, sorted by code."""
    return tuple(_registry[code] for code in sorted(_registry))


def get_rule(code: str) -> Rule:
    """Return the registered rule with ``code`` (raises ``KeyError``)."""
    return _registry[code.upper()]


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
_NUMPY_ALIASES = ("np", "numpy")


def _numpy_attribute(node: ast.AST, attribute: str) -> bool:
    """Return whether ``node`` is ``np.<attribute>`` / ``numpy.<attribute>``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attribute
        and isinstance(node.value, ast.Name)
        and node.value.id in _NUMPY_ALIASES
    )


def _walk_with_class(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, ast.ClassDef | None]]:
    """Yield ``(node, enclosing_class)`` pairs for every node in ``tree``."""

    def visit(node: ast.AST, enclosing: ast.ClassDef | None) -> Iterator[
        tuple[ast.AST, ast.ClassDef | None]
    ]:
        for child in ast.iter_child_nodes(node):
            yield child, enclosing
            yield from visit(
                child, child if isinstance(child, ast.ClassDef) else enclosing
            )

    yield from visit(tree, None)


# ----------------------------------------------------------------------
# REP101 — RNG discipline
# ----------------------------------------------------------------------
#: The modern Generator-based surface of ``numpy.random``; everything else
#: on the module (``seed``, ``rand``, ``randint`` …) is hidden global state.
_GENERATOR_API = frozenset(
    {
        "Generator",
        "default_rng",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


@register_rule
class RngDisciplineRule(Rule):
    """All randomness flows through a passed :class:`numpy.random.Generator`.

    The stdlib ``random`` module and the legacy ``np.random.*`` global-state
    API (``np.random.seed`` / ``rand`` / ``randint`` …) draw from hidden
    process-wide state, which breaks the engine's bit-identical-replay
    guarantee the moment two executors (threads, worker processes, resident
    sessions) interleave draws.  Only the Generator construction surface
    (``default_rng``, ``Generator``, ``SeedSequence``, the bit generators)
    is allowed; call sites receive a generator, they never reach for global
    state.
    """

    code = "REP101"
    name = "rng-discipline"
    summary = (
        "no `random` module and no legacy `np.random.*` global-state API; "
        "pass a numpy.random.Generator"
    )
    history = (
        "global RNG state made runs irreproducible the moment two "
        "executors interleaved draws; the PR 4 facade made every draw "
        "flow through an explicit Generator"
    )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.report(
                            context,
                            node,
                            "the stdlib `random` module draws from hidden global "
                            "state; use a passed numpy.random.Generator",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    yield self.report(
                        context,
                        node,
                        "the stdlib `random` module draws from hidden global "
                        "state; use a passed numpy.random.Generator",
                    )
                elif node.level == 0 and node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _GENERATOR_API:
                            yield self.report(
                                context,
                                node,
                                f"legacy numpy.random.{alias.name} uses global "
                                "state; use a passed numpy.random.Generator",
                            )
            elif isinstance(node, ast.Attribute):
                value = node.value
                if (
                    isinstance(value, ast.Attribute)
                    and value.attr == "random"
                    and isinstance(value.value, ast.Name)
                    and value.value.id in _NUMPY_ALIASES
                    and node.attr not in _GENERATOR_API
                ):
                    yield self.report(
                        context,
                        node,
                        f"legacy np.random.{node.attr} uses global state; use a "
                        "passed numpy.random.Generator",
                    )


# ----------------------------------------------------------------------
# REP102 — exact round accounting
# ----------------------------------------------------------------------
@register_rule
class ExactLog2Rule(Rule):
    """Round/step counts use exact integer ``ceil_log2``, never float ``log2``.

    ``ceil(log2(float(n)))`` misrounds near powers of two once ``n`` is
    large (the float ``log2`` of ``2**k + 1`` can round down to exactly
    ``k``), silently undercharging a round.  The PR 3 cost-accounting sweep
    replaced every binary-search round charge with the bit-length based
    :func:`repro.utils.ceil_log2`; this rule keeps float ``log2`` out of the
    congest / k-machine / random-walk count code for good.
    """

    code = "REP102"
    name = "exact-log2"
    summary = (
        "no float `log2` in congest/kmachine/randomwalk round accounting; "
        "use repro.utils.ceil_log2"
    )
    history = (
        "ceil(log2(float(n))) rounded down at 2**k + 1 and undercharged a "
        "round; the PR 3 cost-accounting sweep replaced every such charge"
    )
    packages = ("congest", "kmachine", "randomwalk")
    include_tests = False

    _MESSAGE = (
        "float log2 misrounds near powers of two; use repro.utils.ceil_log2 "
        "for integer round/step accounting"
    )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Attribute) and node.attr == "log2":
                value = node.value
                if isinstance(value, ast.Name) and value.id in (
                    "math",
                    *_NUMPY_ALIASES,
                ):
                    yield self.report(context, node, self._MESSAGE)
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module in ("math", "numpy"):
                    for alias in node.names:
                        if alias.name == "log2":
                            yield self.report(context, node, self._MESSAGE)


# ----------------------------------------------------------------------
# REP103 — shared-memory hygiene
# ----------------------------------------------------------------------
@register_rule
class SharedMemoryFinalizerRule(Rule):
    """Every owned shared-memory segment is backed by a ``weakref.finalize``.

    PR 6 fixed a ``SharedGraph`` leak where abandoning the owner (without
    calling ``close()``) left the ``SharedMemory(create=True)`` segments
    allocated until reboot.  The repaired pattern registers a
    ``weakref.finalize`` guard in the owning class so garbage collection and
    interpreter exit unlink the segments; this rule requires every
    ``SharedMemory(create=True)`` call to live in a class that registers
    such a finalizer.
    """

    code = "REP103"
    name = "shared-memory-finalizer"
    summary = (
        "every SharedMemory(create=True) needs a weakref.finalize "
        "registration in the same class"
    )
    history = (
        "the PR 6 segment leak: sessions that never reached close() left "
        "shared-memory segments allocated until reboot"
    )
    include_tests = False

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        finalizing_classes: set[ast.ClassDef] = set()
        creators: list[tuple[ast.Call, ast.ClassDef | None]] = []
        for node, enclosing in _walk_with_class(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if self._is_finalize(node.func) and enclosing is not None:
                finalizing_classes.add(enclosing)
            if self._creates_segment(node):
                creators.append((node, enclosing))
        for call, enclosing in creators:
            if enclosing is None:
                yield self.report(
                    context,
                    call,
                    "SharedMemory(create=True) outside a class: segment "
                    "ownership needs a class registering weakref.finalize",
                )
            elif enclosing not in finalizing_classes:
                yield self.report(
                    context,
                    call,
                    f"class {enclosing.name} creates a SharedMemory segment "
                    "but registers no weakref.finalize guard; abandoned "
                    "owners would leak the segment until reboot",
                )

    @staticmethod
    def _is_finalize(func: ast.AST) -> bool:
        if isinstance(func, ast.Attribute) and func.attr == "finalize":
            value = func.value
            return isinstance(value, ast.Name) and value.id == "weakref"
        return isinstance(func, ast.Name) and func.id == "finalize"

    @staticmethod
    def _creates_segment(call: ast.Call) -> bool:
        func = call.func
        named = (
            isinstance(func, ast.Name) and func.id == "SharedMemory"
        ) or (isinstance(func, ast.Attribute) and func.attr == "SharedMemory")
        if not named:
            return False
        return any(
            keyword.arg == "create"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in call.keywords
        )


# ----------------------------------------------------------------------
# REP104 — registry discipline
# ----------------------------------------------------------------------
#: Module-private backend entry points follow the ``_…_impl`` convention
#: (``_detect_communities_batched_impl`` & co).
_IMPL_NAME_RE = re.compile(r"^_\w*_impl$")

#: Engine-internal modules allowed to bypass the facade: the facade itself,
#: the resident session, the process and sharded tiers, and the core
#: package the implementations live in.
_ENGINE_FILES = frozenset(
    {"api.py", "session.py", "execution_process.py", "execution_sharded.py"}
)
_ENGINE_PACKAGES = ("core",)


@register_rule
class RegistryDisciplineRule(Rule):
    """Backend ``*_impl`` functions are reached only through the registry.

    PR 4 collapsed seven ad-hoc entry points into the ``detect()`` facade
    with module-private ``_…_impl`` functions behind it; every caller that
    bypasses the registry re-creates the pre-facade drift this redesign
    removed (bespoke knob handling, missed report metadata, RNG-sequence
    skew).  Only the engine internals (``api.py``, ``session.py``,
    ``execution_process.py``, the ``core`` package) and tests may import or
    reference ``_…_impl`` names.
    """

    code = "REP104"
    name = "registry-discipline"
    summary = (
        "no `_…_impl` imports outside the engine internals and tests; "
        "go through repro.api.detect"
    )
    history = (
        "pre-facade callers drifted: bespoke knob handling, missed report "
        "metadata and RNG-sequence skew the PR 4 registry redesign removed"
    )

    def applies_to(self, context: FileContext) -> bool:
        if context.is_test:
            return False
        directories = context.parts[:-1]
        if context.parts[-1] in _ENGINE_FILES and "repro" in directories:
            return False
        if any(package in directories for package in _ENGINE_PACKAGES):
            return False
        return True

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if _IMPL_NAME_RE.match(alias.name):
                        yield self.report(
                            context,
                            node,
                            f"{alias.name} is a module-private backend "
                            "implementation; call repro.api.detect (or the "
                            "public shim) instead",
                        )
            elif isinstance(node, ast.Attribute) and _IMPL_NAME_RE.match(node.attr):
                yield self.report(
                    context,
                    node,
                    f"{node.attr} is a module-private backend implementation; "
                    "call repro.api.detect (or the public shim) instead",
                )


# ----------------------------------------------------------------------
# REP105 — kernel dtype discipline
# ----------------------------------------------------------------------
_ALLOCATORS = frozenset({"zeros", "empty", "ones", "full"})


@register_rule
class ExplicitDtypeRule(Rule):
    """Kernel allocations always pass an explicit ``dtype=``.

    The equivalence suites pin kernels bit-for-bit across executors, so an
    allocation that silently inherits numpy's defaults (``float64`` today,
    platform-dependent for integer fills via ``np.full``) is an invariant
    waiting to drift — e.g. a future ``dtype`` axis (the planned float32
    walk) flipping a forgotten buffer.  Every ``np.zeros`` / ``np.empty`` /
    ``np.ones`` / ``np.full`` in the kernel packages states its dtype.
    """

    code = "REP105"
    name = "explicit-dtype"
    summary = "np.zeros/empty/ones/full in kernel packages must pass dtype="
    history = (
        "implicit float64 buffers are a dtype-axis drift waiting to happen; "
        "pinned when the float32 search fast path landed in PR 3"
    )
    packages = (
        "randomwalk",
        "core",
        "graphs",
        "congest",
        "kmachine",
        "baselines",
    )
    include_tests = False

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _ALLOCATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in _NUMPY_ALIASES
            ):
                continue
            if any(keyword.arg == "dtype" for keyword in node.keywords):
                continue
            # Positional dtype: np.zeros(shape, dtype) / np.full(shape, fill,
            # dtype) — accepted, though the keyword form is the house style.
            positional_dtype = 3 if func.attr == "full" else 2
            if len(node.args) >= positional_dtype:
                continue
            yield self.report(
                context,
                node,
                f"np.{func.attr} without an explicit dtype= inherits numpy's "
                "default and can drift across kernels; state the dtype",
            )


# ----------------------------------------------------------------------
# REP106 — picklable worker tasks
# ----------------------------------------------------------------------
@register_rule
class PicklableTaskRule(Rule):
    """Callables handed to a pool ``.submit()`` are module-level.

    The process tier pickles every submitted task; lambdas and closures
    (functions defined inside another function) fail to pickle — but only
    at run time, only on the ``process`` executor, and only on the first
    submission, which is exactly how such a bug escapes a thread-tier test
    run.  Submitting a module-level function (or a bound method of a
    picklable object, which this rule permits) works on both tiers.
    """

    code = "REP106"
    name = "picklable-task"
    summary = "callables passed to pool .submit() must be module-level"
    history = (
        "lambdas submitted to the process tier fail to pickle only at run "
        "time on the first submission — exactly how a thread-tier test run "
        "misses it"
    )
    include_tests = False

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        nested_names = self._nested_function_names(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "submit"):
                continue
            if not node.args:
                continue
            task = node.args[0]
            if isinstance(task, ast.Lambda):
                yield self.report(
                    context,
                    task,
                    "lambda submitted to a pool: lambdas do not pickle on the "
                    "process executor; submit a module-level function",
                )
            elif isinstance(task, ast.Name) and task.id in nested_names:
                yield self.report(
                    context,
                    task,
                    f"{task.id} is defined inside another function and will "
                    "not pickle on the process executor; hoist it to module "
                    "level",
                )

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> frozenset[str]:
        """Names of functions defined inside another function."""
        nested: set[str] = set()

        def visit(node: ast.AST, inside_function: bool) -> None:
            for child in ast.iter_child_nodes(node):
                is_function = isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
                if is_function and inside_function:
                    nested.add(child.name)
                visit(child, inside_function or is_function)

        visit(tree, False)
        return frozenset(nested)


# ----------------------------------------------------------------------
# REP107 — storage-layer confinement
# ----------------------------------------------------------------------
#: The one module allowed to construct raw storage primitives.
_STORAGE_FILE = "storage.py"
_STORAGE_PACKAGE = "graphs"


@register_rule
class StorageLayerRule(Rule):
    """Raw storage primitives are constructed only in ``graphs/storage.py``.

    The storage-backend abstraction exists so that exactly one module owns
    the failure modes of raw segments and mappings: finalizer-based unlink
    (REP103), the bpo-39959 tracker opt-out, zero-length mapping fallbacks,
    read-only pinning.  A ``SharedMemory(...)`` or ``np.memmap(...)`` call
    anywhere else re-opens those holes one at a time — the pre-abstraction
    ``execution_process.py`` carried all of them privately.  Everything
    outside the storage module goes through :class:`SharedCSRStorage`,
    :class:`MemmapStorage` or ``Graph`` construction (which routes through
    :func:`repro.graphs.storage.storage_from_arrays`).
    """

    code = "REP107"
    name = "storage-layer"
    summary = (
        "SharedMemory/np.memmap construction is confined to "
        "graphs/storage.py; use the storage backends"
    )
    history = (
        "the pre-abstraction execution_process.py privately carried every "
        "shared-memory workaround (bpo-39959 opt-out, zero-length mappings, "
        "read-only pinning) the PR 8 storage tier centralised"
    )
    include_tests = False

    def applies_to(self, context: FileContext) -> bool:
        if not super().applies_to(context):
            return False
        directories = context.parts[:-1]
        if (
            context.parts[-1] == _STORAGE_FILE
            and _STORAGE_PACKAGE in directories
        ):
            return False
        return True

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        # Only Call nodes: annotations and docstrings naming the types
        # (e.g. a handle dataclass typed `SharedMemory`) are not leaks.
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if self._is_shared_memory(func):
                yield self.report(
                    context,
                    node,
                    "SharedMemory construction outside graphs/storage.py; "
                    "allocate through SharedCSRStorage (storage backend)",
                )
            elif self._is_memmap(func):
                yield self.report(
                    context,
                    node,
                    "np.memmap construction outside graphs/storage.py; map "
                    "files through MemmapStorage / read_csr_graph",
                )

    @staticmethod
    def _is_shared_memory(func: ast.AST) -> bool:
        if isinstance(func, ast.Name):
            return func.id == "SharedMemory"
        return isinstance(func, ast.Attribute) and func.attr == "SharedMemory"

    @staticmethod
    def _is_memmap(func: ast.AST) -> bool:
        # numpy.lib.format.open_memmap is the other public mapping
        # constructor, imported bare or called through the module path.
        if isinstance(func, ast.Name):
            return func.id == "open_memmap"
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr == "memmap":
            value = func.value
            return isinstance(value, ast.Name) and value.id in _NUMPY_ALIASES
        return func.attr == "open_memmap"


# ----------------------------------------------------------------------
# REP108 — non-blocking event loop
# ----------------------------------------------------------------------
#: The service-package modules whose coroutines must never block.
_SERVICE_FILES = frozenset({"service.py", "service_net.py"})
_SERVICE_PACKAGE = "repro"

#: Socket methods that block the calling thread until the peer acts.
_BLOCKING_SOCKET_METHODS = frozenset(
    {"accept", "connect", "recv", "recv_into", "sendall"}
)


@register_rule
class AsyncNoBlockingRule(Rule):
    """Coroutines in the service package never block the event loop.

    The service's async surface exists so one event loop can multiplex
    many clients; a single blocking call inside an ``async def`` —
    ``time.sleep``, a bare ``Future.result()``, a synchronous
    ``open()`` / socket operation — stalls *every* connection on that
    loop, which is precisely the failure mode the wire server cannot
    exhibit under load.  Coroutines await instead: ``asyncio.sleep``,
    ``asyncio.wrap_future(...)``, the stream reader/writer API.  Work
    that must block runs on a thread (``loop.run_in_executor``) or on
    the service's own dispatcher.  ``.result(timeout)`` with an explicit
    timeout is tolerated — it bounds the stall and is sometimes the
    right bridge in shutdown paths.
    """

    code = "REP108"
    name = "async-no-blocking"
    summary = (
        "no time.sleep / bare .result() / sync socket or file I/O inside "
        "async def bodies in the service package"
    )
    history = (
        "one blocking call in a PR 9 wire-server coroutine stalls every "
        "connection on the event loop at once"
    )
    include_tests = False

    def applies_to(self, context: FileContext) -> bool:
        if not super().applies_to(context):
            return False
        return (
            context.parts[-1] in _SERVICE_FILES
            and _SERVICE_PACKAGE in context.parts[:-1]
        )

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(context, node)

    def _check_coroutine(
        self, context: FileContext, coroutine: ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        for node in self._coroutine_body(coroutine):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if self._is_time_sleep(func):
                yield self.report(
                    context,
                    node,
                    "time.sleep inside a coroutine stalls every connection "
                    "on the event loop; await asyncio.sleep instead",
                )
            elif self._is_bare_result(node):
                yield self.report(
                    context,
                    node,
                    "bare .result() inside a coroutine blocks the event "
                    "loop until the future resolves; await "
                    "asyncio.wrap_future(...) instead",
                )
            elif self._is_sync_io(func):
                yield self.report(
                    context,
                    node,
                    "synchronous I/O inside a coroutine blocks the event "
                    "loop; use the asyncio stream API or "
                    "loop.run_in_executor",
                )

    @staticmethod
    def _coroutine_body(coroutine: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Nodes executing in the coroutine itself.

        Nested function bodies are skipped: a sync helper defined inside a
        coroutine runs wherever it is later called (often a thread), and a
        nested ``async def`` is visited on its own by the outer walk.
        """

        def visit(node: ast.AST) -> Iterator[ast.AST]:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                yield child
                yield from visit(child)

        for statement in coroutine.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield statement
            yield from visit(statement)

    @staticmethod
    def _is_time_sleep(func: ast.AST) -> bool:
        if isinstance(func, ast.Name):
            return func.id == "sleep"
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        )

    @staticmethod
    def _is_bare_result(call: ast.Call) -> bool:
        func = call.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "result"
            and not call.args
            and not call.keywords
        )

    @staticmethod
    def _is_sync_io(func: ast.AST) -> bool:
        if isinstance(func, ast.Name):
            return func.id == "open"
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr in ("create_connection", "socket"):
            value = func.value
            return isinstance(value, ast.Name) and value.id == "socket"
        return func.attr in _BLOCKING_SOCKET_METHODS


def rule_table() -> Sequence[tuple[str, str, str]]:
    """Return ``(code, name, summary)`` rows for ``repro lint --list-rules``."""
    return [(rule.code, rule.name, rule.summary) for rule in all_rules()]


def rule_ledger() -> Sequence[tuple[str, str, str, str]]:
    """Return ``(code, name, summary, history)`` — the full rule ledger.

    Includes the synthetic ``REP000`` row (syntax errors are reported
    through the diagnostic channel but are not a registered rule), so the
    printed ledger covers every code a lint run can emit.
    """
    rows: list[tuple[str, str, str, str]] = [
        (
            "REP000",
            "syntax-error",
            "the file must parse; reported when ast.parse fails",
            "not a rule: an unparseable file would silently skip every "
            "other check, so it fails the run through the same channel",
        )
    ]
    rows.extend(
        (rule.code, rule.name, rule.summary, rule.history) for rule in all_rules()
    )
    return rows
