"""The whole-project model pass behind the REP2xx concurrency rules.

The REP10x rules (:mod:`repro.analysis.rules`) are single-node pattern
checks: each looks at one AST node and needs nothing else.  Races are not
like that — whether ``self._queue.popleft()`` is safe depends on which lock
the *writer* held three methods away, and whether a ``Condition.wait`` can
hang depends on who calls ``notify`` from which thread.  Those are
properties of flows across functions, so before any REP2xx rule can run,
this module walks every in-scope file **once** and extracts a
:class:`ProjectModel`:

* per class — the ``self._x`` fields, which of them are locks
  (``threading.Lock`` / ``RLock`` / ``Condition``, with
  ``Condition(self._lock)`` aliased onto its base lock), which attributes
  are *declared* guarded, and which other modeled classes its attributes
  hold (for cross-class call edges);
* per function/method — every attribute and module-global access with the
  set of locks held at that point (``with self._lock:`` regions, plus
  direct ``lock.acquire()`` … ``lock.release()`` spans), every lock
  acquisition with the locks already held (the lock-order edges), every
  ``self.method()`` / resolvable cross-class / module-function call site,
  every thread hand-off (``Thread(target=...)``, ``executor.submit(...)``),
  and every ``Condition`` wait/notify with its loop context;
* two source annotations close the gap static inference cannot cross::

      self._closed = False      # repro: guarded-by(_lock)
      def _metrics_locked(self):  # repro: requires(_lock)

  ``guarded-by(<lock>)`` declares the attribute (or module global) as
  protected by the named lock even where inference would miss it;
  ``requires(<lock>)`` declares a helper as running with the lock already
  held (the checking pass then verifies every *call site* actually holds
  it).  Annotations are ordinary comments, found with :mod:`tokenize` like
  the ``# repro-lint:`` suppressions, so a string literal can never be
  mistaken for one.

Approximations, stated once: accesses inside nested functions / lambdas /
nested classes are recorded with ``deferred=True`` (they run whenever the
closure runs, so no held-lock set is trustworthy there) and the checking
rules skip them; a ``lock.acquire()`` inside a statement (e.g. an ``if not
lock.acquire(False): raise`` guard) marks the lock held for the *following*
statements of the same block, which over-approximates the failure branch —
in the guarded direction (missed reports, never false ones) because the
failure branch raises before touching shared state in the supported
pattern.  ``self`` aliases are tracked through plain and walrus
assignments (``s = self`` / ``(s := self)._x``), so aliased accesses are
modeled, not lost.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:
    from .rules import FileContext

__all__ = [
    "Access",
    "Acquisition",
    "CallSite",
    "ClassModel",
    "ConditionOp",
    "FunctionModel",
    "FutureCreation",
    "ModuleModel",
    "ProjectModel",
    "ThreadSpawn",
    "build_project_model",
    "model_from_source",
]

#: One ``# repro: guarded-by(_lock)`` / ``# repro: requires(_lock)`` comment.
_ANNOTATION_RE = re.compile(
    r"repro:\s*(?P<kind>guarded-by|requires)\s*\(\s*(?P<lock>[A-Za-z_]\w*)\s*\)"
)

#: Constructors that make an attribute (or module global) a modeled lock.
_LOCK_KINDS = {"Lock": "lock", "RLock": "rlock", "Condition": "condition"}

#: Condition-variable operations the CV-discipline rule cares about.
_CV_OPS = frozenset({"wait", "wait_for", "notify", "notify_all"})

#: Constructor names that create a bare, caller-owned future.
_FUTURE_NAMES = frozenset({"Future"})


# ----------------------------------------------------------------------
# Model records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Access:
    """One read or write of a ``self`` attribute or module global."""

    name: str  #: canonical name — ``"self._x"`` or a bare module-global name
    kind: str  #: ``"read"`` or ``"write"``
    line: int
    column: int
    held: frozenset[str]  #: canonical lock names held at this point
    deferred: bool = False  #: inside a nested function/lambda/class body


@dataclass(frozen=True)
class Acquisition:
    """One lock acquisition (a ``with`` region entry or a direct ``acquire``)."""

    lock: str  #: canonical lock name
    line: int
    column: int
    held_before: frozenset[str]  #: locks already held — the lock-order edges
    blocking: bool = True  #: False for ``acquire(blocking=False)`` trylocks


@dataclass(frozen=True)
class CallSite:
    """One resolvable call: ``self.m()``, ``self._attr.m()`` or a module ``f()``."""

    target: str  #: callee name within its owner
    target_class: str | None  #: owning class name, or ``None`` for module functions
    line: int
    column: int
    held: frozenset[str]


@dataclass(frozen=True)
class ThreadSpawn:
    """A callable handed to another thread: ``Thread(target=...)`` / ``.submit(...)``."""

    target: str  #: method/function name, or ``"<expr>"`` when unresolvable
    target_class: str | None
    line: int
    column: int
    via: str  #: ``"thread"`` or ``"submit"``


@dataclass(frozen=True)
class ConditionOp:
    """One ``Condition`` wait/notify call with its locking and loop context."""

    condition: str  #: the condition field's canonical name
    lock: str  #: the canonical lock the condition synchronizes on
    op: str  #: ``wait`` / ``wait_for`` / ``notify`` / ``notify_all``
    line: int
    column: int
    held: frozenset[str]
    in_loop: bool  #: lexically inside a ``while`` loop of the same function


@dataclass(frozen=True)
class FutureCreation:
    """A ``name = Future()`` binding whose resolution this function owns."""

    name: str  #: the local variable bound to the future
    line: int
    column: int


@dataclass
class FunctionModel:
    """Everything the checking pass needs about one function or method."""

    name: str
    qualname: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    owner: str | None = None  #: class name, or ``None`` for module functions
    requires: frozenset[str] = frozenset()
    accesses: list[Access] = field(default_factory=list)
    acquisitions: list[Acquisition] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    thread_spawns: list[ThreadSpawn] = field(default_factory=list)
    condition_ops: list[ConditionOp] = field(default_factory=list)
    future_creations: list[FutureCreation] = field(default_factory=list)


@dataclass
class ClassModel:
    """One class: its locks, declared guards, methods and typed attributes."""

    name: str
    path: str
    locks: dict[str, str] = field(default_factory=dict)  #: canonical name -> kind
    aliases: dict[str, str] = field(default_factory=dict)  #: condition -> base lock
    declared_guards: dict[str, tuple[str, int]] = field(default_factory=dict)
    attr_classes: dict[str, str] = field(default_factory=dict)
    methods: dict[str, FunctionModel] = field(default_factory=dict)

    def canonical(self, name: str) -> str:
        """Resolve a lock field through the condition-alias table."""
        return self.aliases.get(name, name)


@dataclass
class ModuleModel:
    """One source file: module-level locks/globals plus its functions and classes."""

    path: str
    locks: dict[str, str] = field(default_factory=dict)
    aliases: dict[str, str] = field(default_factory=dict)
    declared_guards: dict[str, tuple[str, int]] = field(default_factory=dict)
    globals_: set[str] = field(default_factory=set)
    functions: dict[str, FunctionModel] = field(default_factory=dict)
    classes: dict[str, ClassModel] = field(default_factory=dict)

    def canonical(self, name: str) -> str:
        return self.aliases.get(name, name)


@dataclass
class ProjectModel:
    """The merged model of every file the concurrency tier looks at."""

    modules: list[ModuleModel] = field(default_factory=list)
    classes: dict[str, ClassModel] = field(default_factory=dict)

    def class_named(self, name: str) -> ClassModel | None:
        return self.classes.get(name)

    def iter_functions(self) -> Iterator[FunctionModel]:
        """Every function and method of the project, module order."""
        for module in self.modules:
            yield from module.functions.values()
            for class_model in module.classes.values():
                yield from class_model.methods.values()


# ----------------------------------------------------------------------
# Annotation comments
# ----------------------------------------------------------------------
def _collect_annotations(source: str) -> dict[int, list[tuple[str, str]]]:
    """Map a 1-indexed line to its ``(kind, lock)`` annotation directives."""
    annotations: dict[int, list[tuple[str, str]]] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            for match in _ANNOTATION_RE.finditer(token.string):
                annotations.setdefault(token.start[0], []).append(
                    (match.group("kind"), match.group("lock"))
                )
    except tokenize.TokenError:
        pass
    return annotations


def _guard_on(
    statement: ast.stmt, annotations: dict[int, list[tuple[str, str]]]
) -> str | None:
    """The ``guarded-by(...)`` lock declared on ``statement``, if any.

    The comment may sit on any physical line the statement spans, so
    assignments wrapped over several lines (long type annotations) still
    carry their declaration.
    """
    end = statement.end_lineno or statement.lineno
    for line in range(statement.lineno, end + 1):
        for kind, lock in annotations.get(line, ()):
            if kind == "guarded-by":
                return lock
    return None


def _requires_of(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    annotations: dict[int, list[tuple[str, str]]],
) -> set[str]:
    """The ``requires(...)`` locks of a function definition.

    The comment may sit anywhere in the signature region (the ``def`` line
    through the line before the first body statement — multi-line
    signatures included) or on the line directly above the ``def`` (above
    the first decorator when decorated).
    """
    first = min((d.lineno for d in node.decorator_list), default=node.lineno)
    lines = set(range(node.lineno, node.body[0].lineno)) | {first - 1}
    found: set[str] = set()
    for line in lines:
        for kind, lock in annotations.get(line, ()):
            if kind == "requires":
                found.add(lock)
    return found


# ----------------------------------------------------------------------
# Expression helpers
# ----------------------------------------------------------------------
def _lock_constructor(value: ast.expr) -> tuple[str, ast.expr | None] | None:
    """Return ``(kind, condition_lock_arg)`` when ``value`` builds a lock."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    else:
        return None
    kind = _LOCK_KINDS.get(name)
    if kind is None:
        return None
    arg = value.args[0] if (kind == "condition" and value.args) else None
    return kind, arg


def _is_blocking_acquire(call: ast.Call) -> bool:
    """Whether an ``acquire(...)`` call can block (i.e. is not a trylock)."""
    for keyword in call.keywords:
        if keyword.arg == "blocking":
            return not (
                isinstance(keyword.value, ast.Constant) and not keyword.value.value
            )
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Constant) and not first.value:
            return False
    return True


def _is_future_constructor(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id in _FUTURE_NAMES
    return isinstance(func, ast.Attribute) and func.attr in _FUTURE_NAMES


def _class_of_value(value: ast.expr, param_classes: dict[str, str]) -> str | None:
    """Best-effort class name of an assigned value (for attribute typing).

    ``self._session = DetectionSession(...)`` resolves through the
    constructor name; ``self._session = session`` resolves through the
    enclosing function's parameter annotations.
    """
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name) and func.id[:1].isupper():
            return func.id
        if isinstance(func, ast.Attribute) and func.attr[:1].isupper():
            return func.attr
    if isinstance(value, ast.Name):
        return param_classes.get(value.id)
    return None


def _annotation_class_names(annotation: ast.expr) -> Iterator[str]:
    """Class-looking names inside a parameter annotation (``X | None`` etc.)."""
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id[:1].isupper():
            yield node.id
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotations ("DetectionService") under `from __future__
            # import annotations` style forward references.
            name = node.value.strip().strip('"')
            if name[:1].isupper():
                yield name


# ----------------------------------------------------------------------
# Function extraction
# ----------------------------------------------------------------------
class _FunctionExtractor:
    """Walk one function body, tracking held locks and ``self`` aliases."""

    def __init__(
        self,
        function: FunctionModel,
        class_model: ClassModel | None,
        module: ModuleModel,
    ) -> None:
        self.function = function
        self.class_model = class_model
        self.module = module
        node = function.node
        self.self_name: str | None = None
        if class_model is not None and node.args.args:
            decorators = {
                d.id for d in node.decorator_list if isinstance(d, ast.Name)
            }
            if "staticmethod" not in decorators:
                self.self_name = node.args.args[0].arg
        self.self_aliases: set[str] = (
            {self.self_name} if self.self_name else set()
        )
        self.local_names = self._local_names(node)
        self.global_names = self._declared_globals(node)

    # -- scope tables ---------------------------------------------------
    @staticmethod
    def _declared_globals(node: ast.AST) -> set[str]:
        names: set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Global):
                names.update(child.names)
        return names

    def _local_names(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        """Names bound somewhere in the function (shadowing module globals)."""
        names = {arg.arg for arg in node.args.args + node.args.kwonlyargs}
        names.update(arg.arg for arg in node.args.posonlyargs)
        if node.args.vararg:
            names.add(node.args.vararg.arg)
        if node.args.kwarg:
            names.add(node.args.kwarg.arg)
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and isinstance(
                child.ctx, (ast.Store, ast.Del)
            ):
                names.add(child.id)
        return names - self._declared_globals(node)

    # -- lock resolution ------------------------------------------------
    def _lock_of_expr(self, expr: ast.expr) -> str | None:
        """Canonical lock name of ``expr`` when it denotes a modeled lock."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in self.self_aliases
            and self.class_model is not None
            and expr.attr in self.class_model.locks
        ):
            return "self." + self.class_model.canonical(expr.attr)
        if (
            isinstance(expr, ast.Name)
            and expr.id in self.module.locks
            and expr.id not in self.local_names
        ):
            return self.module.canonical(expr.id)
        return None

    def _condition_of_expr(self, expr: ast.expr) -> tuple[str, str] | None:
        """``(condition_name, canonical_lock)`` when ``expr`` is a condition."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in self.self_aliases
            and self.class_model is not None
            and self.class_model.locks.get(expr.attr) == "condition"
        ):
            return "self." + expr.attr, "self." + self.class_model.canonical(expr.attr)
        if (
            isinstance(expr, ast.Name)
            and self.module.locks.get(expr.id) == "condition"
            and expr.id not in self.local_names
        ):
            return expr.id, self.module.canonical(expr.id)
        return None

    # -- extraction -----------------------------------------------------
    def extract(self) -> None:
        self._walk_block(self.function.node.body, set(), deferred=False, loops=0)

    def _walk_block(
        self, statements: Sequence[ast.stmt], held: set[str], *, deferred: bool, loops: int
    ) -> None:
        held = set(held)
        for statement in statements:
            self._visit_statement(statement, held, deferred=deferred, loops=loops)
            # Direct acquire()/release() calls in this statement change the
            # held set for the *following* statements of the block.
            for lock, op, node, blocking in self._lock_calls(statement):
                if op == "acquire":
                    self.function.acquisitions.append(
                        Acquisition(
                            lock=lock,
                            line=node.lineno,
                            column=node.col_offset + 1,
                            held_before=frozenset(held),
                            blocking=blocking,
                        )
                    )
                    held.add(lock)
                else:
                    held.discard(lock)

    def _lock_calls(
        self, statement: ast.stmt
    ) -> list[tuple[str, str, ast.Call, bool]]:
        calls: list[tuple[str, str, ast.Call, bool]] = []
        for node in self._own_nodes(statement):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in ("acquire", "release"):
                lock = self._lock_of_expr(func.value)
                if lock is not None:
                    calls.append((lock, func.attr, node, _is_blocking_acquire(node)))
        return calls

    @staticmethod
    def _own_nodes(node: ast.AST) -> Iterator[ast.AST]:
        """Descendants of ``node`` excluding nested function/class bodies."""
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
            ):
                continue
            yield child
            yield from _FunctionExtractor._own_nodes(child)

    def _visit_statement(
        self, statement: ast.stmt, held: set[str], *, deferred: bool, loops: int
    ) -> None:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._walk_block(statement.body, set(), deferred=True, loops=0)
            return
        if isinstance(statement, ast.ClassDef):
            self._walk_block(statement.body, set(), deferred=True, loops=0)
            return
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            inner = set(held)
            for item in statement.items:
                self._visit_expression(item.context_expr, inner, deferred=deferred)
                lock = self._lock_of_expr(item.context_expr)
                if lock is not None:
                    if not deferred:
                        self.function.acquisitions.append(
                            Acquisition(
                                lock=lock,
                                line=item.context_expr.lineno,
                                column=item.context_expr.col_offset + 1,
                                held_before=frozenset(inner),
                            )
                        )
                    inner.add(lock)
                if item.optional_vars is not None:
                    self._visit_expression(item.optional_vars, inner, deferred=deferred)
            self._walk_block(statement.body, inner, deferred=deferred, loops=loops)
            return
        if isinstance(statement, ast.Try):
            self._walk_block(statement.body, held, deferred=deferred, loops=loops)
            for handler in statement.handlers:
                self._walk_block(handler.body, held, deferred=deferred, loops=loops)
            self._walk_block(statement.orelse, held, deferred=deferred, loops=loops)
            self._walk_block(statement.finalbody, held, deferred=deferred, loops=loops)
            return
        if isinstance(statement, (ast.If, ast.While)):
            self._visit_expression(statement.test, held, deferred=deferred)
            inner = set(held)
            for lock, op in self._expression_lock_calls(statement.test):
                if op == "acquire":
                    inner.add(lock)
            body_loops = loops + (1 if isinstance(statement, ast.While) else 0)
            self._walk_block(statement.body, inner, deferred=deferred, loops=body_loops)
            self._walk_block(statement.orelse, held, deferred=deferred, loops=loops)
            return
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            self._visit_expression(statement.iter, held, deferred=deferred)
            self._visit_expression(statement.target, held, deferred=deferred)
            self._walk_block(statement.body, held, deferred=deferred, loops=loops)
            self._walk_block(statement.orelse, held, deferred=deferred, loops=loops)
            return
        if isinstance(statement, ast.Match):
            self._visit_expression(statement.subject, held, deferred=deferred)
            for case in statement.cases:
                if case.guard is not None:
                    self._visit_expression(case.guard, held, deferred=deferred)
                self._walk_block(case.body, held, deferred=deferred, loops=loops)
            return
        # Plain statement: record aliases, future creations, then expressions.
        self._track_aliases(statement)
        self._track_futures(statement, deferred=deferred)
        for expression in self._statement_expressions(statement):
            self._visit_expression(
                expression, held, deferred=deferred, loops=loops
            )

    def _expression_lock_calls(self, expr: ast.expr) -> list[tuple[str, str]]:
        calls: list[tuple[str, str]] = []
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("acquire", "release"):
                    lock = self._lock_of_expr(node.func.value)
                    if lock is not None:
                        calls.append((lock, node.func.attr))
        return calls

    @staticmethod
    def _statement_expressions(statement: ast.stmt) -> Iterator[ast.expr]:
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.expr):
                yield child

    def _track_aliases(self, statement: ast.stmt) -> None:
        if self.self_name is None:
            return
        if isinstance(statement, ast.Assign):
            value_is_self = (
                isinstance(statement.value, ast.Name)
                and statement.value.id in self.self_aliases
            )
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    if value_is_self:
                        self.self_aliases.add(target.id)
                    else:
                        self.self_aliases.discard(target.id)

    def _track_futures(self, statement: ast.stmt, *, deferred: bool) -> None:
        if deferred:
            return
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target, value = statement.targets[0], statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            target, value = statement.target, statement.value
        if (
            target is not None
            and value is not None
            and isinstance(target, ast.Name)
            and _is_future_constructor(value)
        ):
            self.function.future_creations.append(
                FutureCreation(
                    name=target.id, line=statement.lineno, column=statement.col_offset + 1
                )
            )

    # -- expressions ----------------------------------------------------
    def _visit_expression(
        self, expr: ast.expr, held: set[str], *, deferred: bool, loops: int = 0
    ) -> None:
        frozen = frozenset(held)
        # Walrus aliases ((s := self)) can appear inside any expression —
        # an if-test, a with-item, a call argument — and bind a name used
        # by the statements that follow; register them before recording.
        for node in [expr, *self._own_nodes(expr)]:
            if (
                isinstance(node, ast.NamedExpr)
                and isinstance(node.value, ast.Name)
                and node.value.id in self.self_aliases
                and isinstance(node.target, ast.Name)
            ):
                self.self_aliases.add(node.target.id)
        for node in [expr, *self._own_nodes(expr)]:
            if isinstance(node, ast.Attribute):
                self._record_attribute(node, frozen, deferred)
            elif isinstance(node, ast.Name):
                self._record_global(node, frozen, deferred)
            elif isinstance(node, ast.Call):
                self._record_call(node, frozen, deferred, loops)
            elif isinstance(node, (ast.Lambda,)):
                self._walk_lambda(node)
        # Nested defs inside expressions are only lambdas; real nested
        # functions are statements and handled by _visit_statement.

    def _walk_lambda(self, node: ast.Lambda) -> None:
        for child in ast.walk(node.body):
            if isinstance(child, ast.Attribute):
                self._record_attribute(child, frozenset(), True)
            elif isinstance(child, ast.Name):
                self._record_global(child, frozenset(), True)

    def _record_attribute(
        self, node: ast.Attribute, held: frozenset[str], deferred: bool
    ) -> None:
        if not (
            isinstance(node.value, ast.Name) and node.value.id in self.self_aliases
        ):
            return
        kind = "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
        self.function.accesses.append(
            Access(
                name="self." + node.attr,
                kind=kind,
                line=node.lineno,
                column=node.col_offset + 1,
                held=held,
                deferred=deferred,
            )
        )

    def _record_global(
        self, node: ast.Name, held: frozenset[str], deferred: bool
    ) -> None:
        name = node.id
        known = name in self.module.globals_ or name in self.module.locks
        if not known:
            return
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            if name not in self.global_names:
                return  # a local shadowing the module global
            kind = "write"
        else:
            if name in self.local_names:
                return
            kind = "read"
        self.function.accesses.append(
            Access(
                name=name,
                kind=kind,
                line=node.lineno,
                column=node.col_offset + 1,
                held=held,
                deferred=deferred,
            )
        )

    def _record_call(
        self, node: ast.Call, held: frozenset[str], deferred: bool, loops: int
    ) -> None:
        func = node.func
        self._record_thread_spawn(node)
        self._record_condition_op(node, held, loops)
        if deferred:
            return
        if isinstance(func, ast.Name):
            if func.id in self.module.functions or func.id in self.module.classes:
                self.function.calls.append(
                    CallSite(
                        target=func.id,
                        target_class=None,
                        line=node.lineno,
                        column=node.col_offset + 1,
                        held=held,
                    )
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if isinstance(base, ast.Name) and base.id in self.self_aliases:
            owner = self.class_model.name if self.class_model else None
            self.function.calls.append(
                CallSite(
                    target=func.attr,
                    target_class=owner,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    held=held,
                )
            )
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id in self.self_aliases
            and self.class_model is not None
            and base.attr in self.class_model.attr_classes
        ):
            self.function.calls.append(
                CallSite(
                    target=func.attr,
                    target_class=self.class_model.attr_classes[base.attr],
                    line=node.lineno,
                    column=node.col_offset + 1,
                    held=held,
                )
            )

    def _spawn_target(self, expr: ast.expr) -> tuple[str, str | None]:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in self.self_aliases
        ):
            return expr.attr, self.class_model.name if self.class_model else None
        if isinstance(expr, ast.Name):
            return expr.id, None
        return "<expr>", None

    def _record_thread_spawn(self, node: ast.Call) -> None:
        func = node.func
        func_name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else ""
        )
        if func_name == "Thread":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    target, owner = self._spawn_target(keyword.value)
                    self.function.thread_spawns.append(
                        ThreadSpawn(
                            target=target,
                            target_class=owner,
                            line=node.lineno,
                            column=node.col_offset + 1,
                            via="thread",
                        )
                    )
        elif func_name == "submit" and node.args:
            target, owner = self._spawn_target(node.args[0])
            self.function.thread_spawns.append(
                ThreadSpawn(
                    target=target,
                    target_class=owner,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    via="submit",
                )
            )

    def _record_condition_op(
        self, node: ast.Call, held: frozenset[str], loops: int
    ) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _CV_OPS):
            return
        condition = self._condition_of_expr(func.value)
        if condition is None:
            return
        name, lock = condition
        self.function.condition_ops.append(
            ConditionOp(
                condition=name,
                lock=lock,
                op=func.attr,
                line=node.lineno,
                column=node.col_offset + 1,
                held=held,
                in_loop=loops > 0,
            )
        )


# ----------------------------------------------------------------------
# Module / class extraction
# ----------------------------------------------------------------------
def _param_classes(node: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, str]:
    """Parameter name → annotated class name (first class-looking name wins)."""
    classes: dict[str, str] = {}
    for arg in node.args.args + node.args.kwonlyargs:
        if arg.annotation is None:
            continue
        for name in _annotation_class_names(arg.annotation):
            classes[arg.arg] = name
            break
    return classes


def _scan_class_fields(
    class_node: ast.ClassDef,
    class_model: ClassModel,
    annotations: dict[int, list[tuple[str, str]]],
) -> None:
    """First pass over a class: lock fields, declared guards, typed attributes."""
    for method in class_node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not method.args.args:
            continue
        self_name = method.args.args[0].arg
        params = _param_classes(method)
        for statement in ast.walk(method):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target, value = statement.targets[0], statement.value
            elif isinstance(statement, ast.AnnAssign):
                target, value = statement.target, statement.value
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == self_name
            ):
                continue
            attr = target.attr
            if value is not None:
                lock = _lock_constructor(value)
                if lock is not None:
                    kind, condition_arg = lock
                    class_model.locks[attr] = kind
                    if (
                        condition_arg is not None
                        and isinstance(condition_arg, ast.Attribute)
                        and isinstance(condition_arg.value, ast.Name)
                        and condition_arg.value.id == self_name
                    ):
                        class_model.aliases[attr] = condition_arg.attr
                else:
                    owner = _class_of_value(value, params)
                    if owner is not None:
                        class_model.attr_classes[attr] = owner
            declared = _guard_on(statement, annotations)
            if declared is not None:
                class_model.declared_guards[attr] = (declared, statement.lineno)


def _extract_module(tree: ast.Module, path: str, source: str) -> ModuleModel:
    annotations = _collect_annotations(source)
    module = ModuleModel(path=path)

    # Pass 1a: module-level names, locks and guards.
    for statement in tree.body:
        target = None
        value = None
        if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target, value = statement.targets[0], statement.value
        elif isinstance(statement, ast.AnnAssign):
            target, value = statement.target, statement.value
        if isinstance(target, ast.Name):
            if value is not None:
                lock = _lock_constructor(value)
            else:
                lock = None
            if lock is not None:
                kind, condition_arg = lock
                module.locks[target.id] = kind
                if condition_arg is not None and isinstance(condition_arg, ast.Name):
                    module.aliases[target.id] = condition_arg.id
            else:
                module.globals_.add(target.id)
            declared = _guard_on(statement, annotations)
            if declared is not None:
                module.declared_guards[target.id] = (declared, statement.lineno)

    # Pass 1b: class skeletons (fields must be known before bodies are walked,
    # so cross-method lock usage and attribute typing resolve).
    class_nodes: list[ast.ClassDef] = []
    for statement in tree.body:
        if isinstance(statement, ast.ClassDef):
            class_model = ClassModel(name=statement.name, path=path)
            _scan_class_fields(statement, class_model, annotations)
            module.classes[statement.name] = class_model
            class_nodes.append(statement)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[statement.name] = FunctionModel(
                name=statement.name,
                qualname=statement.name,
                path=path,
                node=statement,
                requires=frozenset(_requires_of(statement, annotations)),
            )

    # Pass 2: function bodies.
    for function in module.functions.values():
        _FunctionExtractor(function, None, module).extract()
    for class_node in class_nodes:
        class_model = module.classes[class_node.name]
        for statement in class_node.body:
            if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            requires = {
                "self." + class_model.canonical(lock)
                if lock in class_model.locks or lock in class_model.aliases
                else lock
                for lock in _requires_of(statement, annotations)
            }
            method = FunctionModel(
                name=statement.name,
                qualname=f"{class_model.name}.{statement.name}",
                path=path,
                node=statement,
                owner=class_model.name,
                requires=frozenset(requires),
            )
            class_model.methods[statement.name] = method
            _FunctionExtractor(method, class_model, module).extract()
    return module


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def build_project_model(contexts: Iterable["FileContext"]) -> ProjectModel:
    """Build the project model over the given (already parsed) files.

    Files are processed in the order given; classes are merged into one
    project-wide table by name (class names are unique across this
    repository's concurrent packages — the checking pass relies on that for
    cross-class call edges).
    """
    model = ProjectModel()
    for context in contexts:
        module = _extract_module(context.tree, context.path, context.source)
        model.modules.append(module)
        for name, class_model in module.classes.items():
            model.classes[name] = class_model
    return model


def model_from_source(source: str, path: str = "<memory>") -> ModuleModel:
    """Extract one module's model straight from source text (test helper)."""
    return _extract_module(ast.parse(source), path, source)
