"""The REP2xx concurrency rules — flow checks over the project model.

Where the REP10x rules inspect one AST node at a time, these four check
properties of flows across functions, using the :class:`~repro.analysis.
model.ProjectModel` the linter builds over every in-scope file (the
concurrent packages: ``service``, ``service_net``, ``session``,
``execution*`` and the storage tier — see
:class:`~repro.analysis.rules.ProjectRule`):

``REP201`` **guarded-by discipline.**  An attribute is *guarded* when it is
    written under a class lock in any method, or declared so with
    ``# repro: guarded-by(_lock)``.  Every non-``__init__`` access to a
    guarded attribute must then hold the guard — directly, or by contract
    via ``# repro: requires(_lock)`` on the enclosing helper (in which case
    every call site of the helper is checked instead).  ``__init__`` is
    exempt up to its first thread hand-off (transitively: calling a method
    that spawns counts), because before a second thread exists there is
    nothing to race.  Module globals guarded by module-level locks are
    checked the same way.

``REP202`` **lock-order consistency.**  Nested acquisitions — lexically
    nested ``with`` regions, and acquisitions reachable through call edges
    while a lock is held — define a project-wide lock-order graph; any
    cycle is a deadlock hazard.  Re-acquiring a held non-reentrant lock
    (directly, through a ``Condition`` aliased onto it, or through a callee
    that may acquire it) is the one-node cycle and is reported at the
    faulty acquisition.  Trylocks (``acquire(blocking=False)``) cannot
    block and are excluded.

``REP203`` **condition-variable discipline.**  ``Condition.wait()`` only
    inside a ``while``-predicate loop with the condition's lock held
    (``wait_for`` carries its own predicate loop, so it only needs the
    lock); ``notify`` / ``notify_all`` only under the lock.

``REP204`` **future-resolution totality.**  A function that constructs a
    bare ``Future()`` owns its resolution: every path must end in exactly
    one ``set_result`` / ``set_exception``, or hand the future off (store
    it, pass it, return it) before the path ends.  A path that returns or
    raises while the future is still pending strands its waiters forever —
    the classic rejected-``submit`` leak.

All four fix-don't-suppress: the service-stack violations each of these
found when first enabled were repaired in the same change (see the ledger
in CONTRIBUTING.md), and the ``# repro-lint: disable=`` escape hatch is for
fixtures, not for shipping code.
"""

from __future__ import annotations

import ast
from collections import Counter
from pathlib import Path
from typing import Iterator

from .diagnostics import Diagnostic
from .model import (
    Access,
    ClassModel,
    FunctionModel,
    FutureCreation,
    ModuleModel,
    ProjectModel,
    _is_future_constructor,
)
from .rules import ProjectRule, register_rule

__all__ = ["Rep201GuardedBy", "Rep202LockOrder", "Rep203ConditionDiscipline",
           "Rep204FutureTotality"]

#: The ``Future`` calls that discharge the owner's resolution obligation.
#: Every other method on an owned value (``done``, ``cancel``, …) is
#: neutral: it neither resolves nor hands the future off.
_RESOLVING_FUTURE_METHODS = frozenset({"set_result", "set_exception"})


# ----------------------------------------------------------------------
# Shared resolution helpers
# ----------------------------------------------------------------------
class _Resolver:
    """Resolve call sites and qualify lock names project-wide.

    Lock identity is qualified per owner — ``DetectionService._lock`` and
    ``DetectionSession._busy`` are distinct graph nodes even if the field
    names collided; module locks qualify by module stem
    (``execution._pool_lock``).
    """

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self.modules_by_path: dict[str, ModuleModel] = {
            module.path: module for module in model.modules
        }

    def module_of(self, function: FunctionModel) -> ModuleModel | None:
        return self.modules_by_path.get(function.path)

    def resolve(self, function: FunctionModel, target: str,
                target_class: str | None) -> FunctionModel | None:
        if target_class is not None:
            class_model = self.model.classes.get(target_class)
            return class_model.methods.get(target) if class_model else None
        module = self.module_of(function)
        return module.functions.get(target) if module else None

    def qualify(self, function: FunctionModel, lock: str) -> str:
        if lock.startswith("self.") and function.owner is not None:
            return f"{function.owner}.{lock[len('self.'):]}"
        return f"{Path(function.path).stem}.{lock}"

    def lock_kind(self, function: FunctionModel, lock: str) -> str | None:
        """The lock's kind (``lock``/``rlock``/``condition``) if resolvable."""
        if lock.startswith("self.") and function.owner is not None:
            class_model = self.model.classes.get(function.owner)
            if class_model is not None:
                return class_model.locks.get(lock[len("self."):])
            return None
        module = self.module_of(function)
        return module.locks.get(lock) if module else None


def _effective_held(function: FunctionModel, access_held: frozenset[str]) -> frozenset[str]:
    """Locks held at an access: the tracked set plus the requires contract."""
    return access_held | function.requires


def _may_spawn(model: ProjectModel, resolver: _Resolver) -> set[int]:
    """ids of functions that (transitively) hand work to another thread."""
    functions = list(model.iter_functions())
    spawning = {id(f) for f in functions if f.thread_spawns}
    changed = True
    while changed:
        changed = False
        for function in functions:
            if id(function) in spawning:
                continue
            for call in function.calls:
                callee = resolver.resolve(function, call.target, call.target_class)
                if callee is not None and id(callee) in spawning:
                    spawning.add(id(function))
                    changed = True
                    break
    return spawning


# ----------------------------------------------------------------------
# REP201 — guarded-by discipline
# ----------------------------------------------------------------------
@register_rule
class Rep201GuardedBy(ProjectRule):
    """Guarded attributes are accessed with their lock held, everywhere."""

    code = "REP201"
    name = "guarded-by"
    summary = (
        "attributes written under a lock (or declared `# repro: "
        "guarded-by(...)`) must hold that lock at every access"
    )
    history = (
        "first enablement found DetectionService reading/writing _closed "
        "and _waves outside its dispatcher lock (closed property, close(), "
        "__repr__) and DetectionSession.close() tearing down the pool under "
        "a live detect call"
    )

    def check_project(self, model: ProjectModel) -> Iterator[Diagnostic]:
        resolver = _Resolver(model)
        spawning = _may_spawn(model, resolver)
        for module in model.modules:
            yield from self._check_module_globals(module)
            for class_model in module.classes.values():
                yield from self._check_class(
                    module, class_model, resolver, spawning
                )
        yield from self._check_requires_contracts(model, resolver)

    # -- class attributes ----------------------------------------------
    def _check_class(
        self,
        module: ModuleModel,
        class_model: ClassModel,
        resolver: _Resolver,
        spawning: set[int],
    ) -> Iterator[Diagnostic]:
        if not class_model.locks:
            return
        lock_fields = set(class_model.locks) | set(class_model.aliases)
        class_locks = {
            "self." + class_model.canonical(name) for name in class_model.locks
        }

        guards: dict[str, str] = {}
        # Declared guards first: they win over inference and may name a
        # module lock.
        for attr, (lock_name, line) in class_model.declared_guards.items():
            if lock_name in class_model.locks or lock_name in class_model.aliases:
                guards[attr] = "self." + class_model.canonical(lock_name)
            elif lock_name in module.locks:
                guards[attr] = module.canonical(lock_name)
            else:
                yield Diagnostic(
                    path=class_model.path,
                    line=line,
                    column=1,
                    code=self.code,
                    message=(
                        f"`# repro: guarded-by({lock_name})` on "
                        f"{class_model.name}.{attr} names no lock field of "
                        f"{class_model.name} or its module"
                    ),
                )
        # Inference: an attribute written with a class lock held in any
        # non-__init__ method is guarded by the lock that usually guards it.
        votes: dict[str, Counter[str]] = {}
        for method in class_model.methods.values():
            if method.name == "__init__":
                continue
            for access in method.accesses:
                if access.deferred or access.kind != "write":
                    continue
                attr = self._class_attr(access, lock_fields)
                if attr is None or attr in guards:
                    continue
                held = _effective_held(method, access.held) & class_locks
                for lock in held:
                    votes.setdefault(attr, Counter())[lock] += 1
        for attr, counter in votes.items():
            best = max(counter.items(), key=lambda item: (item[1], item[0]))
            guards[attr] = best[0]

        if not guards:
            return
        for method in class_model.methods.values():
            init_cut = (
                self._first_spawn_line(method, resolver, spawning)
                if method.name == "__init__"
                else 0
            )
            for access in method.accesses:
                if access.deferred:
                    continue
                attr = self._class_attr(access, lock_fields)
                if attr is None or attr not in guards:
                    continue
                if method.name == "__init__" and access.line < init_cut:
                    continue
                guard = guards[attr]
                if guard in _effective_held(method, access.held):
                    continue
                display = guard[len("self."):] if guard.startswith("self.") else guard
                yield Diagnostic(
                    path=class_model.path,
                    line=access.line,
                    column=access.column,
                    code=self.code,
                    message=(
                        f"{class_model.name}.{attr} is guarded by `{display}` "
                        f"but this {access.kind} in {method.name}() does not "
                        f"hold it (wrap in `with self.{display}:` or annotate "
                        f"the helper `# repro: requires({display})`)"
                    ),
                )

    @staticmethod
    def _class_attr(access: Access, lock_fields: set[str]) -> str | None:
        if not access.name.startswith("self."):
            return None
        attr = access.name[len("self."):]
        return None if attr in lock_fields else attr

    @staticmethod
    def _first_spawn_line(
        method: FunctionModel, resolver: _Resolver, spawning: set[int]
    ) -> int:
        """First line of ``__init__`` after which a second thread may exist."""
        lines = [spawn.line for spawn in method.thread_spawns]
        for call in method.calls:
            callee = resolver.resolve(method, call.target, call.target_class)
            if callee is not None and id(callee) in spawning:
                lines.append(call.line)
        return min(lines) if lines else (1 << 30)

    # -- module globals --------------------------------------------------
    def _check_module_globals(self, module: ModuleModel) -> Iterator[Diagnostic]:
        if not module.locks:
            return
        module_locks = {module.canonical(name) for name in module.locks}
        functions = list(module.functions.values())
        for class_model in module.classes.values():
            functions.extend(class_model.methods.values())

        guards: dict[str, str] = {}
        for name, (lock_name, line) in module.declared_guards.items():
            if lock_name in module.locks:
                guards[name] = module.canonical(lock_name)
            else:
                yield Diagnostic(
                    path=module.path,
                    line=line,
                    column=1,
                    code=self.code,
                    message=(
                        f"`# repro: guarded-by({lock_name})` on module global "
                        f"`{name}` names no module-level lock"
                    ),
                )
        votes: dict[str, Counter[str]] = {}
        for function in functions:
            for access in function.accesses:
                if (
                    access.deferred
                    or access.kind != "write"
                    or access.name.startswith("self.")
                    or access.name in guards
                ):
                    continue
                held = _effective_held(function, access.held) & module_locks
                for lock in held:
                    votes.setdefault(access.name, Counter())[lock] += 1
        for name, counter in votes.items():
            best = max(counter.items(), key=lambda item: (item[1], item[0]))
            guards[name] = best[0]

        if not guards:
            return
        for function in functions:
            for access in function.accesses:
                if access.deferred or access.name.startswith("self."):
                    continue
                guard = guards.get(access.name)
                if guard is None:
                    continue
                if guard in _effective_held(function, access.held):
                    continue
                yield Diagnostic(
                    path=module.path,
                    line=access.line,
                    column=access.column,
                    code=self.code,
                    message=(
                        f"module global `{access.name}` is guarded by "
                        f"`{guard}` but this {access.kind} in "
                        f"{function.qualname}() does not hold it"
                    ),
                )

    # -- requires contracts ----------------------------------------------
    def _check_requires_contracts(
        self, model: ProjectModel, resolver: _Resolver
    ) -> Iterator[Diagnostic]:
        for function in model.iter_functions():
            yield from self._check_requires_names(function, resolver)
            for call in function.calls:
                callee = resolver.resolve(function, call.target, call.target_class)
                if callee is None or not callee.requires:
                    continue
                if callee.owner is not None and callee.owner != function.owner:
                    locks = ", ".join(sorted(callee.requires))
                    yield Diagnostic(
                        path=function.path,
                        line=call.line,
                        column=call.column,
                        code=self.code,
                        message=(
                            f"{function.qualname}() calls {callee.qualname}() "
                            f"which requires `{locks}` held — another class "
                            f"cannot guarantee that lock; call a public "
                            f"method that takes it instead"
                        ),
                    )
                    continue
                missing = callee.requires - _effective_held(function, call.held)
                for lock in sorted(missing):
                    display = (
                        lock[len("self."):] if lock.startswith("self.") else lock
                    )
                    yield Diagnostic(
                        path=function.path,
                        line=call.line,
                        column=call.column,
                        code=self.code,
                        message=(
                            f"{function.qualname}() calls {callee.qualname}() "
                            f"which requires `{display}` held, but does not "
                            f"hold it here"
                        ),
                    )

    def _check_requires_names(
        self, function: FunctionModel, resolver: _Resolver
    ) -> Iterator[Diagnostic]:
        module = resolver.module_of(function)
        for lock in sorted(function.requires):
            if lock.startswith("self."):
                continue  # resolved against the class during extraction
            if module is not None and lock in module.locks:
                continue
            yield Diagnostic(
                path=function.path,
                line=function.node.lineno,
                column=function.node.col_offset + 1,
                code=self.code,
                message=(
                    f"`# repro: requires({lock})` on {function.qualname}() "
                    f"names no lock field of its class or module"
                ),
            )


# ----------------------------------------------------------------------
# REP202 — lock-order consistency
# ----------------------------------------------------------------------
@register_rule
class Rep202LockOrder(ProjectRule):
    """The project-wide lock-acquisition graph must be cycle-free."""

    code = "REP202"
    name = "lock-order"
    summary = (
        "nested lock acquisitions (direct or through call edges) must form "
        "a consistent, cycle-free order"
    )
    history = (
        "designed against the dispatcher-shutdown shape: service lock held "
        "while joining a thread that blocks on the session lock; the "
        "Condition(self._lock) alias means re-acquiring `_lock` under "
        "`_wake` is the one-node cycle"
    )

    def check_project(self, model: ProjectModel) -> Iterator[Diagnostic]:
        resolver = _Resolver(model)
        may_acquire = self._may_acquire(model, resolver)
        edges: dict[tuple[str, str], tuple[str, int, int]] = {}

        def add_edge(held: str, acquired: str, where: tuple[str, int, int]) -> None:
            key = (held, acquired)
            if key not in edges or where < edges[key]:
                edges[key] = where

        for function in model.iter_functions():
            requires = {
                resolver.qualify(function, lock) for lock in function.requires
            }
            for acquisition in function.acquisitions:
                if not acquisition.blocking:
                    continue
                acquired = resolver.qualify(function, acquisition.lock)
                held_before = {
                    resolver.qualify(function, lock)
                    for lock in acquisition.held_before
                } | requires
                where = (function.path, acquisition.line, acquisition.column)
                if acquired in held_before:
                    if resolver.lock_kind(function, acquisition.lock) != "rlock":
                        yield Diagnostic(
                            path=function.path,
                            line=acquisition.line,
                            column=acquisition.column,
                            code=self.code,
                            message=(
                                f"{function.qualname}() re-acquires "
                                f"`{acquired}` while already holding it — "
                                f"self-deadlock on a non-reentrant lock"
                            ),
                        )
                    continue
                for held in held_before:
                    add_edge(held, acquired, where)
            for call in function.calls:
                callee = resolver.resolve(function, call.target, call.target_class)
                if callee is None:
                    continue
                held_here = {
                    resolver.qualify(function, lock)
                    for lock in _effective_held(function, call.held)
                }
                if not held_here:
                    continue
                callee_requires = {
                    resolver.qualify(callee, lock) for lock in callee.requires
                }
                where = (function.path, call.line, call.column)
                for acquired in may_acquire[id(callee)]:
                    if acquired in callee_requires:
                        continue
                    if acquired in held_here:
                        yield Diagnostic(
                            path=function.path,
                            line=call.line,
                            column=call.column,
                            code=self.code,
                            message=(
                                f"{function.qualname}() holds `{acquired}` "
                                f"while calling {callee.qualname}(), which "
                                f"may re-acquire it — self-deadlock on a "
                                f"non-reentrant lock"
                            ),
                        )
                        continue
                    for held in held_here:
                        add_edge(held, acquired, where)

        yield from self._report_cycles(edges)

    def _may_acquire(
        self, model: ProjectModel, resolver: _Resolver
    ) -> dict[int, frozenset[str]]:
        """Transitive blocking-acquisition sets, fixpoint over call edges."""
        functions = list(model.iter_functions())
        acquired: dict[int, set[str]] = {
            id(f): {
                resolver.qualify(f, acquisition.lock)
                for acquisition in f.acquisitions
                if acquisition.blocking
            }
            for f in functions
        }
        changed = True
        while changed:
            changed = False
            for function in functions:
                own = acquired[id(function)]
                for call in function.calls:
                    callee = resolver.resolve(
                        function, call.target, call.target_class
                    )
                    if callee is None:
                        continue
                    extra = acquired[id(callee)] - own
                    if extra:
                        own.update(extra)
                        changed = True
        return {key: frozenset(value) for key, value in acquired.items()}

    def _report_cycles(
        self, edges: dict[tuple[str, str], tuple[str, int, int]]
    ) -> Iterator[Diagnostic]:
        graph: dict[str, set[str]] = {}
        for held, acquired in edges:
            graph.setdefault(held, set()).add(acquired)
            graph.setdefault(acquired, set())
        for component in _strongly_connected(graph):
            if len(component) < 2:
                continue
            members = sorted(component)
            cycle_edges = sorted(
                (edges[(a, b)], (a, b))
                for a in members
                for b in graph[a]
                if b in component and (a, b) in edges
            )
            where, (held, acquired) = cycle_edges[0]
            order = " -> ".join(members + [members[0]])
            yield Diagnostic(
                path=where[0],
                line=where[1],
                column=where[2],
                code=self.code,
                message=(
                    f"lock-order cycle {order}: acquiring `{acquired}` while "
                    f"holding `{held}` closes the cycle — a deadlock hazard; "
                    f"acquire these locks in one global order"
                ),
            )


def _strongly_connected(graph: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan's SCC, iterative, deterministic over sorted nodes."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[set[str]] = []
    counter = 0

    for root in sorted(graph):
        if root in index:
            continue
        work: list[tuple[str, Iterator[str]]] = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = low[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph[successor]))))
                    advanced = True
                    break
                if successor in on_stack:
                    low[node] = min(low[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


# ----------------------------------------------------------------------
# REP203 — condition-variable discipline
# ----------------------------------------------------------------------
@register_rule
class Rep203ConditionDiscipline(ProjectRule):
    """``wait`` in a while-loop under the lock; ``notify`` under the lock."""

    code = "REP203"
    name = "condition-discipline"
    summary = (
        "Condition.wait() only inside a while-predicate loop with the lock "
        "held; notify/notify_all only under the lock"
    )
    history = (
        "an if-guarded wait() misses wakeups raced between predicate check "
        "and sleep and swallows spurious wakeups; a notify outside the lock "
        "can fire between a waiter's predicate check and its wait — both "
        "hang the dispatcher forever"
    )

    def check_project(self, model: ProjectModel) -> Iterator[Diagnostic]:
        for function in model.iter_functions():
            for op in function.condition_ops:
                held = _effective_held(function, op.held)
                if op.lock not in held:
                    yield Diagnostic(
                        path=function.path,
                        line=op.line,
                        column=op.column,
                        code=self.code,
                        message=(
                            f"{op.condition}.{op.op}() in {function.qualname}() "
                            f"without holding the condition's lock "
                            f"`{op.lock}` (RuntimeError at run time, lost "
                            f"wakeups before that)"
                        ),
                    )
                    continue
                if op.op == "wait" and not op.in_loop:
                    yield Diagnostic(
                        path=function.path,
                        line=op.line,
                        column=op.column,
                        code=self.code,
                        message=(
                            f"{op.condition}.wait() in {function.qualname}() "
                            f"outside a while-predicate loop — spurious "
                            f"wakeups and stolen wakeups break an if-guard; "
                            f"use `while not predicate: {op.condition}.wait()`"
                        ),
                    )


# ----------------------------------------------------------------------
# REP204 — future-resolution totality
# ----------------------------------------------------------------------
@register_rule
class Rep204FutureTotality(ProjectRule):
    """A pending ``Future`` is resolved or handed off on every path."""

    code = "REP204"
    name = "future-totality"
    summary = (
        "every path through a function owning a pending Future ends in one "
        "set_result/set_exception or an explicit hand-off"
    )
    history = (
        "first enablement caught DetectionService.submit() constructing the "
        "reply Future before its admission checks: every rejected submit "
        "dropped a pending Future a caller could still be holding"
    )

    def check_project(self, model: ProjectModel) -> Iterator[Diagnostic]:
        for function in model.iter_functions():
            names = {creation.name for creation in function.future_creations}
            for name in sorted(names):
                creation = next(
                    c for c in function.future_creations if c.name == name
                )
                yield from _FuturePathWalker(
                    self.code, function, name, creation
                ).run()


class _FuturePathWalker:
    """Abstract interpreter for one future variable through one function.

    Tracks the set of possible states — ``unborn`` (before the creation
    statement), ``pending``, ``resolved``, ``escaped`` — along every path,
    merging at joins.  Terminating a path (return / raise / function end)
    while ``pending`` is possible is the violation; resolving when already
    definitely resolved is the double-resolution variant.

    Ownership is taint-tracked through locals: wrapping the future
    (``request = _Admitted(future=future)``) moves ownership onto the
    wrapper rather than handing it off, so a later ``raise`` still strands
    the pending future — the exact shape of the rejected-submit leak.  Only
    leaving the function counts as a hand-off: a tainted value passed to a
    *method* call (``self._queue.append(request)``), stored into an
    attribute / subscript, returned, yielded, awaited, or captured by a
    nested function.  Resolution and the read-only ``Future`` API are
    recognized through attribute chains (``request.future.set_exception``).
    """

    def __init__(
        self,
        code: str,
        function: FunctionModel,
        name: str,
        creation: FutureCreation,
    ) -> None:
        self.code = code
        self.function = function
        self.name = name
        self.creation = creation
        self.tainted: set[str] = {name}
        self.diagnostics: dict[tuple[int, int, str], Diagnostic] = {}

    def run(self) -> Iterator[Diagnostic]:
        final = self._walk(self.function.node.body, {"unborn"})
        if "pending" in final:
            self._report(
                self.creation.line,
                self.creation.column,
                f"Future `{self.name}` is not resolved or handed off on "
                f"every path through {self.function.qualname}() — a waiter "
                f"would block forever",
            )
        yield from sorted(self.diagnostics.values())

    def _report(self, line: int, column: int, message: str) -> None:
        key = (line, column, message)
        self.diagnostics.setdefault(
            key,
            Diagnostic(
                path=self.function.path,
                line=line,
                column=column,
                code=self.code,
                message=message,
            ),
        )

    # -- statement walking ----------------------------------------------
    def _walk(self, statements: list[ast.stmt], states: set[str]) -> set[str]:
        states = set(states)
        for statement in statements:
            if not states:
                break  # unreachable after a terminating statement
            states = self._statement(statement, states)
        return states

    def _statement(self, stmt: ast.stmt, states: set[str]) -> set[str]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A closure capturing the future may resolve it later: hand-off.
            if any(
                isinstance(node, ast.Name) and node.id in self.tainted
                for node in ast.walk(stmt)
            ):
                return self._escape(states)
            return states
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                states = self._expression(stmt.value, states)
                if self._uses_tainted(stmt.value):
                    states = self._escape(states)  # returning IS the hand-off
            return self._terminate(stmt, states)
        if isinstance(stmt, ast.Raise):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    states = self._expression(child, states)
            return self._terminate(stmt, states)
        if isinstance(stmt, ast.If):
            states = self._expression(stmt.test, states)
            then = self._walk(stmt.body, states)
            other = self._walk(stmt.orelse, states)
            return then | other
        if isinstance(stmt, (ast.While,)):
            states = self._expression(stmt.test, states)
            body = self._walk(stmt.body, states)
            other = self._walk(stmt.orelse, states | body)
            return states | body | other
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            states = self._expression(stmt.iter, states)
            body = self._walk(stmt.body, states)
            other = self._walk(stmt.orelse, states | body)
            return states | body | other
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                states = self._expression(item.context_expr, states)
            return self._walk(stmt.body, states)
        if isinstance(stmt, ast.Try):
            body = self._walk(stmt.body, states)
            raised = states | body  # an exception may hit at any point
            handler_exits: set[str] = set()
            for handler in stmt.handlers:
                handler_exits |= self._walk(handler.body, raised)
            orelse = self._walk(stmt.orelse, body)
            merged = orelse | handler_exits
            if stmt.finalbody:
                merged = self._walk(stmt.finalbody, merged or states)
            return merged
        if isinstance(stmt, ast.Match):
            states = self._expression(stmt.subject, states)
            exits: set[str] = set()
            for case in stmt.cases:
                exits |= self._walk(case.body, states)
            if not self._match_is_exhaustive(stmt):
                exits |= states  # no case may match: straight fall-through
            return exits
        if isinstance(stmt, ast.Assign):
            states = self._expression(stmt.value, states, is_assign_value=True)
            value_tainted = self._uses_tainted(stmt.value)
            for target in stmt.targets:
                states = self._assign_target(stmt, target, value_tainted, states)
            return states
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            states = self._expression(stmt.value, states, is_assign_value=True)
            return self._assign_target(
                stmt, stmt.target, self._uses_tainted(stmt.value), states
            )
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                states = self._expression(child, states)
        return states

    def _assign_target(
        self, stmt: ast.stmt, target: ast.expr, value_tainted: bool, states: set[str]
    ) -> set[str]:
        value = getattr(stmt, "value", None)
        if isinstance(target, ast.Name):
            if target.id == self.name:
                if value is not None and _is_future_constructor(value):
                    if states == {"pending"}:
                        self._report(
                            stmt.lineno,
                            stmt.col_offset + 1,
                            f"Future `{self.name}` is rebound while still "
                            f"pending — the previous future is dropped "
                            f"unresolved",
                        )
                    return {"pending"}
                # Rebound to something else: stop tracking the old binding
                # (conservatively treated as handed off, not as a leak).
                return self._escape(states)
            if value_tainted:
                # Ownership flows into the wrapper local (`request = ...`);
                # the future is still this function's to resolve.
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
            return states
        if value_tainted and isinstance(target, (ast.Attribute, ast.Subscript)):
            # Stored somewhere that outlives the call: an explicit hand-off.
            return self._escape(states)
        return states

    @staticmethod
    def _match_is_exhaustive(stmt: ast.Match) -> bool:
        """Whether a final un-guarded ``case _:`` catches every subject."""
        if not stmt.cases:
            return False
        last = stmt.cases[-1]
        return (
            last.guard is None
            and isinstance(last.pattern, ast.MatchAs)
            and last.pattern.pattern is None
        )

    def _terminate(self, stmt: ast.stmt, states: set[str]) -> set[str]:
        if "pending" in states:
            verb = "returns" if isinstance(stmt, ast.Return) else "raises"
            self._report(
                stmt.lineno,
                stmt.col_offset + 1,
                f"{self.function.qualname}() {verb} while Future "
                f"`{self.name}` may still be pending — resolve it or hand "
                f"it off first",
            )
        return set()

    # -- expression effects ----------------------------------------------
    def _tainted_root(self, expr: ast.expr) -> ast.Name | None:
        """The tainted root ``Name`` of an attribute chain, if any."""
        while isinstance(expr, ast.Attribute):
            expr = expr.value
        if isinstance(expr, ast.Name) and expr.id in self.tainted:
            return expr
        return None

    def _uses_tainted(self, expr: ast.expr) -> bool:
        return any(
            isinstance(node, ast.Name)
            and node.id in self.tainted
            and isinstance(node.ctx, ast.Load)
            for node in ast.walk(expr)
        )

    def _expression(
        self, expr: ast.expr, states: set[str], *, is_assign_value: bool = False
    ) -> set[str]:
        consumed: set[int] = set()  # Name node ids already accounted for
        resolutions: list[ast.Call] = []
        escapes = False
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    root = self._tainted_root(func.value)
                    if root is not None:
                        # A method on the owned value itself: the future's
                        # own API (resolving or read-only) stays in-owner.
                        if func.attr in _RESOLVING_FUTURE_METHODS:
                            resolutions.append(node)
                        consumed.add(id(root))
                        continue
                    # Method call on some *other* object: tainted arguments
                    # leave the function (`self._queue.append(request)`).
                    for argument in [*node.args, *(k.value for k in node.keywords)]:
                        for sub in ast.walk(argument):
                            if (
                                isinstance(sub, ast.Name)
                                and sub.id in self.tainted
                                and isinstance(sub.ctx, ast.Load)
                            ):
                                escapes = True
                                consumed.add(id(sub))
                elif isinstance(func, ast.Name) and not is_assign_value:
                    # Constructor/function call whose result is *discarded*:
                    # the callee is the only remaining owner — a hand-off.
                    # (On an assignment RHS the wrapper result is captured
                    # and _assign_target taints the target instead.)
                    for argument in [*node.args, *(k.value for k in node.keywords)]:
                        for sub in ast.walk(argument):
                            if (
                                isinstance(sub, ast.Name)
                                and sub.id in self.tainted
                                and isinstance(sub.ctx, ast.Load)
                            ):
                                escapes = True
                                consumed.add(id(sub))
            elif isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
                inner = node.value
                if inner is not None and self._uses_tainted(inner):
                    escapes = True  # handed to the awaiting/consuming side
            elif isinstance(node, ast.Lambda):
                if self._uses_tainted(node.body):
                    escapes = True  # captured by a closure
        for call in resolutions:
            if states == {"resolved"}:
                self._report(
                    call.lineno,
                    call.col_offset + 1,
                    f"Future `{self.name}` is resolved a second time — "
                    f"set_result/set_exception on a done future raises "
                    f"InvalidStateError",
                )
            states = {"resolved" if s == "pending" else s for s in states}
        if escapes:
            states = self._escape(states)
        return states

    @staticmethod
    def _escape(states: set[str]) -> set[str]:
        return {"escaped" if s == "pending" else s for s in states}
