"""Diagnostic records and inline suppression comments for ``repro lint``.

A :class:`Diagnostic` is one finding — ``path:line:col: CODE message`` — and
sorts in report order (path, then line, then column, then code), so a lint
run over many files prints deterministically.

Suppressions are ordinary comments::

    segment = SharedMemory(create=True, size=1)  # repro-lint: disable=REP103
    # repro-lint: disable-file=REP104

``disable=<codes>`` silences the listed (comma-separated) codes on the
comment's own line; ``disable-file=<codes>`` silences them for the whole
file.  ``disable=all`` / ``disable-file=all`` silence every rule.  Comments
are found with :mod:`tokenize`, so a ``# repro-lint:`` inside a string
literal is never mistaken for a directive.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Diagnostic", "Suppressions"]

#: Matches one suppression directive inside a comment.  Several directives
#: may share a comment (``# repro-lint: disable=REP101 repro-lint: ...``) but
#: one per line is the expected style.
_DIRECTIVE_RE = re.compile(
    r"repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+)"
)

#: Sentinel code meaning "every rule".
_ALL = "all"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, anchored to a file position.

    Attributes
    ----------
    path:
        Path of the offending file, as given to the linter.
    line:
        1-indexed source line of the offending node.
    column:
        1-indexed source column (``ast`` columns are 0-indexed; the
        constructor takes the already-shifted human-facing value).
    code:
        The rule code, e.g. ``"REP105"``.
    message:
        Human-readable explanation, including what to use instead.
    """

    path: str
    line: int
    column: int
    code: str
    message: str

    def format(self) -> str:
        """Render as the canonical ``path:line:col: CODE message`` line."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"


@dataclass
class Suppressions:
    """The ``# repro-lint: disable…`` directives of one source file.

    ``line_codes`` maps a 1-indexed line number to the set of codes disabled
    on that line; ``file_codes`` holds the file-wide set.  The sentinel
    ``"all"`` (in either set) disables every rule.
    """

    line_codes: dict[int, set[str]] = field(default_factory=dict)
    file_codes: set[str] = field(default_factory=set)

    @classmethod
    def from_source(cls, source: str) -> "Suppressions":
        """Parse the suppression comments of ``source``.

        Tokenization errors (the file will already fail to ``ast.parse``)
        yield an empty suppression table rather than raising twice.
        """
        suppressions = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                for match in _DIRECTIVE_RE.finditer(token.string):
                    codes = {
                        code.strip().upper() if code.strip() != _ALL else _ALL
                        for code in match.group("codes").replace(",", " ").split()
                        if code.strip()
                    }
                    if not codes:
                        continue
                    if match.group("scope") == "disable-file":
                        suppressions.file_codes |= codes
                    else:
                        line = token.start[0]
                        suppressions.line_codes.setdefault(line, set()).update(codes)
        except tokenize.TokenError:
            pass
        return suppressions

    def is_suppressed(self, line: int, code: str) -> bool:
        """Return whether ``code`` is disabled on ``line`` (or file-wide)."""
        code = code.upper()
        if _ALL in self.file_codes or code in self.file_codes:
            return True
        on_line = self.line_codes.get(line)
        if on_line is None:
            return False
        return _ALL in on_line or code in on_line
