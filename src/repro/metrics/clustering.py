"""Standard clustering-agreement metrics: NMI, ARI and purity.

The paper reports only the seed-community F-score (implemented in
:mod:`repro.metrics.scores`); these partition-level metrics are provided so
CDRW can be compared against the baselines of Section II on an equal footing
(LPA and spectral methods output whole partitions rather than per-seed
communities).  Unassigned vertices are ignored by all three metrics.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import MetricError
from ..graphs.partition import Partition

__all__ = [
    "contingency_table",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "purity",
]


def _common_assignment(
    predicted: Partition, ground_truth: Partition
) -> tuple[np.ndarray, np.ndarray]:
    """Return the label vectors restricted to vertices assigned in both partitions."""
    if predicted.num_vertices != ground_truth.num_vertices:
        raise MetricError(
            "partitions cover different vertex counts: "
            f"{predicted.num_vertices} vs {ground_truth.num_vertices}"
        )
    both = (predicted.labels != Partition.UNASSIGNED) & (
        ground_truth.labels != Partition.UNASSIGNED
    )
    if not both.any():
        raise MetricError("no vertex is assigned in both partitions")
    return predicted.labels[both], ground_truth.labels[both]


def contingency_table(predicted: Partition, ground_truth: Partition) -> np.ndarray:
    """Return the contingency table ``N[i, j] = |predicted_i ∩ truth_j|``."""
    predicted_labels, truth_labels = _common_assignment(predicted, ground_truth)
    num_predicted = int(predicted_labels.max()) + 1
    num_truth = int(truth_labels.max()) + 1
    table = np.zeros((num_predicted, num_truth), dtype=np.int64)
    np.add.at(table, (predicted_labels, truth_labels), 1)
    return table


def normalized_mutual_information(predicted: Partition, ground_truth: Partition) -> float:
    """Return the NMI (arithmetic-mean normalisation) between two partitions."""
    table = contingency_table(predicted, ground_truth).astype(np.float64)
    total = table.sum()
    if total == 0:
        return 0.0
    joint = table / total
    row_marginal = joint.sum(axis=1)
    column_marginal = joint.sum(axis=0)

    mutual_information = 0.0
    for i in range(joint.shape[0]):
        for j in range(joint.shape[1]):
            if joint[i, j] > 0:
                mutual_information += joint[i, j] * math.log(
                    joint[i, j] / (row_marginal[i] * column_marginal[j])
                )
    row_entropy = -sum(p * math.log(p) for p in row_marginal if p > 0)
    column_entropy = -sum(p * math.log(p) for p in column_marginal if p > 0)
    if row_entropy == 0.0 and column_entropy == 0.0:
        return 1.0
    normaliser = (row_entropy + column_entropy) / 2.0
    if normaliser == 0.0:
        return 0.0
    return max(0.0, min(1.0, mutual_information / normaliser))


def adjusted_rand_index(predicted: Partition, ground_truth: Partition) -> float:
    """Return the adjusted Rand index between two partitions."""
    table = contingency_table(predicted, ground_truth).astype(np.float64)
    total = table.sum()
    if total < 2:
        return 1.0

    def choose2(x: np.ndarray | float) -> np.ndarray | float:
        return x * (x - 1) / 2.0

    sum_cells = choose2(table).sum()
    sum_rows = choose2(table.sum(axis=1)).sum()
    sum_columns = choose2(table.sum(axis=0)).sum()
    total_pairs = choose2(total)
    expected = sum_rows * sum_columns / total_pairs
    maximum = (sum_rows + sum_columns) / 2.0
    if maximum == expected:
        return 1.0
    return float((sum_cells - expected) / (maximum - expected))


def purity(predicted: Partition, ground_truth: Partition) -> float:
    """Return the purity: the fraction of vertices in their cluster's majority block."""
    table = contingency_table(predicted, ground_truth)
    total = table.sum()
    if total == 0:
        return 0.0
    return float(table.max(axis=1).sum() / total)
