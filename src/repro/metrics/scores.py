"""The paper's accuracy metrics: seed-community precision, recall and F-score.

Section IV defines, for a community ``C^s`` detected from seed ``s`` whose
ground-truth community is ``C_g``:

* ``precision(C^s) = |C^s ∩ C_g| / |C^s|`` — the fraction of detected members
  that truly belong to the seed's block,
* ``recall(C^s) = |C^s ∩ C_g| / |C_g|`` — the fraction of the block that was
  recovered, and
* ``F-score(C^s)`` — their harmonic mean.

The reported figure-of-merit is the average F-score over all detected
communities.  Detected communities are scored against the block of *their own
seed*, so overlapping detections (which Algorithm 1 can produce, since every
detection sees the whole graph) are handled naturally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.result import DetectionResult
from ..exceptions import MetricError
from ..graphs.partition import Partition
from ..utils import harmonic_mean

__all__ = [
    "CommunityScore",
    "community_precision",
    "community_recall",
    "community_f_score",
    "score_community",
    "score_detection",
    "average_f_score",
    "partition_average_f_score",
]


@dataclass(frozen=True)
class CommunityScore:
    """Precision / recall / F-score of one detected community.

    Attributes
    ----------
    seed:
        The seed vertex the community was detected from.
    precision, recall, f_score:
        The paper's metrics for this community.
    detected_size, truth_size, intersection_size:
        The raw set sizes behind the metrics (handy in reports).
    """

    seed: int
    precision: float
    recall: float
    f_score: float
    detected_size: int
    truth_size: int
    intersection_size: int


def community_precision(detected: Iterable[int], ground_truth: Iterable[int]) -> float:
    """Return ``|detected ∩ truth| / |detected|`` (0 when the detection is empty)."""
    detected_set = set(int(v) for v in detected)
    truth_set = set(int(v) for v in ground_truth)
    if not detected_set:
        return 0.0
    return len(detected_set & truth_set) / len(detected_set)


def community_recall(detected: Iterable[int], ground_truth: Iterable[int]) -> float:
    """Return ``|detected ∩ truth| / |truth|`` (0 when the ground truth is empty)."""
    detected_set = set(int(v) for v in detected)
    truth_set = set(int(v) for v in ground_truth)
    if not truth_set:
        return 0.0
    return len(detected_set & truth_set) / len(truth_set)


def community_f_score(detected: Iterable[int], ground_truth: Iterable[int]) -> float:
    """Return the harmonic mean of precision and recall for one community."""
    precision = community_precision(detected, ground_truth)
    recall = community_recall(detected, ground_truth)
    return harmonic_mean(precision, recall)


def score_community(
    seed: int,
    detected: Iterable[int],
    ground_truth_partition: Partition,
) -> CommunityScore:
    """Score a single detected community against the block of its seed.

    Raises :class:`MetricError` when the seed is not assigned to any
    ground-truth community (the metric is then undefined).
    """
    truth_label = ground_truth_partition.community_of(seed)
    if truth_label == Partition.UNASSIGNED:
        raise MetricError(f"seed {seed} has no ground-truth community")
    truth = ground_truth_partition.members(truth_label)
    detected_set = frozenset(int(v) for v in detected)
    intersection = len(detected_set & truth)
    precision = intersection / len(detected_set) if detected_set else 0.0
    recall = intersection / len(truth) if truth else 0.0
    return CommunityScore(
        seed=seed,
        precision=precision,
        recall=recall,
        f_score=harmonic_mean(precision, recall),
        detected_size=len(detected_set),
        truth_size=len(truth),
        intersection_size=intersection,
    )


def score_detection(
    detection: DetectionResult,
    ground_truth_partition: Partition,
) -> list[CommunityScore]:
    """Score every detected community of a :class:`DetectionResult`."""
    if ground_truth_partition.num_vertices != detection.num_vertices:
        raise MetricError(
            "ground-truth partition covers a different number of vertices "
            f"({ground_truth_partition.num_vertices}) than the detection "
            f"({detection.num_vertices})"
        )
    return [
        score_community(result.seed, result.community, ground_truth_partition)
        for result in detection
    ]


def average_f_score(
    detection: DetectionResult | Sequence[CommunityScore],
    ground_truth_partition: Partition | None = None,
) -> float:
    """Return the paper's headline metric: the mean F-score over detected communities.

    Accepts either a :class:`DetectionResult` (plus the ground-truth
    partition) or a pre-computed list of :class:`CommunityScore`.
    """
    if isinstance(detection, DetectionResult):
        if ground_truth_partition is None:
            raise MetricError("ground_truth_partition is required to score a DetectionResult")
        scores = score_detection(detection, ground_truth_partition)
    else:
        scores = list(detection)
    if not scores:
        return 0.0
    return sum(score.f_score for score in scores) / len(scores)


def partition_average_f_score(detected: Partition, ground_truth: Partition) -> float:
    """Average F-score of a whole detected partition against the ground truth.

    Baselines such as LPA or spectral clustering emit a partition rather than
    per-seed communities, so the paper's seed-based F-score does not apply
    directly.  The natural partition-level analogue used by the baseline
    comparison benchmark matches each detected community to the ground-truth
    community it overlaps most and averages the resulting F-scores (weighted
    by detected-community size so a swarm of singletons cannot dominate).

    All D×T community pairs are scored from one label-pair confusion matrix
    (a single ``np.bincount`` over the aligned label vectors) instead of the
    former per-pair Python set intersections — O(n + D·T) instead of
    O(D·T·n) — with **byte-identical** scores: every intersection size is
    the same integer, and the vectorized precision / recall / harmonic-mean
    arithmetic performs the exact float operations of the scalar
    :func:`~repro.utils.harmonic_mean` path (regression-tested against the
    set-based implementation on random partitions).
    """
    if detected.num_vertices != ground_truth.num_vertices:
        raise MetricError(
            "partitions cover different vertex counts: "
            f"{detected.num_vertices} vs {ground_truth.num_vertices}"
        )
    num_detected = detected.num_communities
    num_truth = ground_truth.num_communities
    if num_detected == 0 or num_truth == 0:
        return 0.0
    detected_labels = detected.labels
    truth_labels = ground_truth.labels

    # Communities are exactly the label classes, so |C_d ∩ C_t| for every
    # pair is one flattened-label bincount over the vertices assigned in
    # *both* partitions; the community sizes count all assigned vertices.
    detected_sizes = np.bincount(
        detected_labels[detected_labels >= 0], minlength=num_detected
    )
    truth_sizes = np.bincount(truth_labels[truth_labels >= 0], minlength=num_truth)
    both = (detected_labels >= 0) & (truth_labels >= 0)
    intersections = np.bincount(
        detected_labels[both] * num_truth + truth_labels[both],
        minlength=num_detected * num_truth,
    ).reshape(num_detected, num_truth)

    # Same float arithmetic as the scalar path: int / int division per pair,
    # then harmonic_mean's underflow-safe 2·high·(low/(low+high)) ordering
    # (communities are non-empty, so the size divisions are always defined).
    precision = intersections / detected_sizes[:, np.newaxis]
    recall = intersections / truth_sizes[np.newaxis, :]
    low = np.minimum(precision, recall)
    high = np.maximum(precision, recall)
    denominator = low + high
    ratio = np.divide(
        low, denominator, out=np.zeros_like(low), where=denominator > 0.0
    )
    f_scores = 2.0 * high * ratio
    best = f_scores.max(axis=1)

    # Accumulate in community-ID order, exactly like the former Python loop,
    # so the running float sum matches it bit for bit.
    total_weight = 0
    total_score = 0.0
    for best_score, size in zip(best.tolist(), detected_sizes.tolist()):
        total_score += best_score * size
        total_weight += size
    if total_weight == 0:
        return 0.0
    return total_score / total_weight
