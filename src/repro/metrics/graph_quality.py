"""Graph-structural quality measures of a detected community structure.

Orthogonal to the ground-truth-based metrics, these quantify how "community
like" the detected sets are on the graph itself — the properties the paper's
introduction uses to motivate communities: low conductance cuts and high
modularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..exceptions import MetricError
from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..graphs.properties import conductance, modularity

__all__ = [
    "CommunityQuality",
    "community_quality",
    "partition_quality",
    "detected_modularity",
    "intra_edge_fraction",
]


@dataclass(frozen=True)
class CommunityQuality:
    """Structural quality of one vertex set viewed as a community.

    Attributes
    ----------
    size:
        Number of vertices in the set.
    conductance:
        ``φ(S)``; low values indicate a community-like sparse cut.
    internal_edges, cut_edges:
        Raw edge counts inside the set and leaving it.
    internal_density:
        ``internal_edges / C(size, 2)`` — how close the set is to a clique.
    """

    size: int
    conductance: float
    internal_edges: int
    cut_edges: int
    internal_density: float


def community_quality(graph: Graph, community: Iterable[int]) -> CommunityQuality:
    """Return the structural quality of one detected community."""
    members = sorted(set(int(v) for v in community))
    if not members:
        raise MetricError("cannot evaluate the quality of an empty community")
    internal = graph.induced_edge_count(members)
    cut = graph.cut_size(members)
    size = len(members)
    possible = size * (size - 1) / 2.0
    density = internal / possible if possible > 0 else 0.0
    return CommunityQuality(
        size=size,
        conductance=conductance(graph, members),
        internal_edges=internal,
        cut_edges=cut,
        internal_density=density,
    )


def partition_quality(graph: Graph, partition: Partition) -> list[CommunityQuality]:
    """Return per-community structural quality for every community of a partition."""
    return [community_quality(graph, community) for community in partition.communities()]


def detected_modularity(graph: Graph, partition: Partition) -> float:
    """Newman–Girvan modularity of a detected (disjoint) partition."""
    return modularity(graph, partition)


def intra_edge_fraction(graph: Graph, partition: Partition) -> float:
    """Return the fraction of edges that lie inside some community of ``partition``.

    This is the "more edges connecting nodes within a subset than edges
    connecting outside" property the introduction uses as the informal
    community definition.
    """
    if graph.num_edges == 0:
        return 0.0
    internal = sum(graph.induced_edge_count(c) for c in partition.communities())
    return internal / graph.num_edges
