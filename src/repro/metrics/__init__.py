"""Accuracy and quality metrics for detected communities."""

from .scores import (
    CommunityScore,
    average_f_score,
    community_f_score,
    community_precision,
    community_recall,
    partition_average_f_score,
    score_community,
    score_detection,
)
from .clustering import (
    adjusted_rand_index,
    contingency_table,
    normalized_mutual_information,
    purity,
)
from .graph_quality import (
    CommunityQuality,
    community_quality,
    detected_modularity,
    intra_edge_fraction,
    partition_quality,
)

__all__ = [
    "CommunityScore",
    "average_f_score",
    "community_f_score",
    "community_precision",
    "community_recall",
    "partition_average_f_score",
    "score_community",
    "score_detection",
    "adjusted_rand_index",
    "contingency_table",
    "normalized_mutual_information",
    "purity",
    "CommunityQuality",
    "community_quality",
    "detected_modularity",
    "intra_edge_fraction",
    "partition_quality",
]
