"""Regression diff over archived benchmark JSON documents.

``benchmarks/bench_graph_kernel.py --json BENCH.json`` archives one run as a
document with ``machine`` facts, the ``workload`` constants, the enforced
``thresholds`` and a flat ``results`` mapping of floats.  This module diffs
two such archives — typically the committed baseline of a branch point
against the current working tree — and flags the regressions:

* ``*_s`` keys are wall-clock seconds, **lower is better**: a new value more
  than ``threshold`` (default 20%) above the old one is a regression;
* ``*_speedup`` keys are ratios, **higher is better**: a drop of more than
  ``threshold`` below the old value is a regression;
* every other numeric key is an **identity** (``*_identical``,
  ``session_broadcasts``, byte counters): any change is flagged — these
  encode correctness gates and deterministic traffic counts, not timings;
* keys present in the old run but missing from the new one are flagged
  (a silently dropped measurement must not read as "no regression").

Timing noise cuts both ways, which is why only *worsenings* beyond the
threshold fail; improvements are reported but never fatal.  The CLI
(``repro bench --compare old.json new.json``) exits non-zero when any
regression or dropped key is found, which is what the CI benchmark job
keys on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .exceptions import ReproError

__all__ = [
    "BenchComparison",
    "KeyDelta",
    "compare_documents",
    "compare_files",
    "load_benchmark_document",
    "render_comparison",
    "DEFAULT_THRESHOLD",
]

#: Relative worsening tolerated on timing and speedup keys before a delta
#: counts as a regression (0.2 = 20%).
DEFAULT_THRESHOLD = 0.2


@dataclass(frozen=True)
class KeyDelta:
    """One compared result key: its values, direction and verdict."""

    key: str
    #: ``"timing"`` (lower better), ``"speedup"`` (higher better) or
    #: ``"identity"`` (must match exactly).
    kind: str
    old: float
    new: float
    #: Relative change in the *worse* direction: positive means the new run
    #: is worse (slower / less speedup), negative means it improved.
    #: Identities use 0.0 (match) or ``inf`` (mismatch).
    worsening: float
    regressed: bool


@dataclass(frozen=True)
class BenchComparison:
    """The full diff of two benchmark documents."""

    benchmark: str
    threshold: float
    deltas: tuple[KeyDelta, ...]
    #: Keys the old run measured that the new run does not carry.
    missing_keys: tuple[str, ...]
    #: Keys new to this run (informational — new coverage, never fatal).
    added_keys: tuple[str, ...]

    @property
    def regressions(self) -> tuple[KeyDelta, ...]:
        return tuple(delta for delta in self.deltas if delta.regressed)

    @property
    def ok(self) -> bool:
        """True when nothing regressed and nothing was dropped."""
        return not self.regressions and not self.missing_keys


def load_benchmark_document(path: str | Path) -> dict:
    """Read one archived benchmark JSON document, validating its shape."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ReproError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(document, dict) or "results" not in document:
        raise ReproError(
            f"{path} is not a benchmark archive: expected a JSON object "
            "with a 'results' mapping (see bench_graph_kernel.py --json)"
        )
    results = document["results"]
    if not isinstance(results, dict):
        raise ReproError(f"{path}: 'results' must be a mapping of floats")
    return document


def _key_kind(key: str) -> str:
    if key.endswith("_s"):
        return "timing"
    if key.endswith("_speedup"):
        return "speedup"
    return "identity"


def compare_documents(
    old: dict, new: dict, *, threshold: float = DEFAULT_THRESHOLD
) -> BenchComparison:
    """Diff two benchmark documents (as loaded JSON) key by key."""
    if threshold < 0:
        raise ReproError(f"comparison threshold must be >= 0, got {threshold}")
    old_results = {
        key: float(value)
        for key, value in old.get("results", {}).items()
        if isinstance(value, (int, float))
    }
    new_results = {
        key: float(value)
        for key, value in new.get("results", {}).items()
        if isinstance(value, (int, float))
    }
    deltas: list[KeyDelta] = []
    for key in sorted(old_results):
        if key not in new_results:
            continue
        kind = _key_kind(key)
        before, after = old_results[key], new_results[key]
        if kind == "timing":
            worsening = (after - before) / before if before > 0 else 0.0
            regressed = worsening > threshold
        elif kind == "speedup":
            worsening = (before - after) / before if before > 0 else 0.0
            regressed = worsening > threshold
        else:
            mismatch = after != before
            worsening = float("inf") if mismatch else 0.0
            regressed = mismatch
        deltas.append(
            KeyDelta(
                key=key,
                kind=kind,
                old=before,
                new=after,
                worsening=worsening,
                regressed=regressed,
            )
        )
    missing = tuple(sorted(set(old_results) - set(new_results)))
    added = tuple(sorted(set(new_results) - set(old_results)))
    return BenchComparison(
        benchmark=str(new.get("benchmark", old.get("benchmark", "unknown"))),
        threshold=threshold,
        deltas=tuple(deltas),
        missing_keys=missing,
        added_keys=added,
    )


def compare_files(
    old_path: str | Path,
    new_path: str | Path,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """Diff two archived benchmark JSON files."""
    return compare_documents(
        load_benchmark_document(old_path),
        load_benchmark_document(new_path),
        threshold=threshold,
    )


def render_comparison(comparison: BenchComparison, *, verbose: bool = False) -> str:
    """Render the diff as the table ``repro bench --compare`` prints.

    Regressions and dropped keys always print; unchanged/improved keys only
    with ``verbose``.
    """
    lines = [
        f"benchmark {comparison.benchmark}: "
        f"{len(comparison.deltas)} keys compared, "
        f"threshold {comparison.threshold:.0%}"
    ]
    shown = [
        delta
        for delta in comparison.deltas
        if verbose or delta.regressed
    ]
    if shown:
        lines.append(f"{'key':34s} {'old':>12s} {'new':>12s} {'change':>9s}  verdict")
    for delta in shown:
        if delta.kind == "identity":
            change = "changed" if delta.regressed else "same"
        else:
            # Sign from the reader's perspective: + is worse for timings
            # (slower) and for speedups (lost ratio) alike.
            change = f"{delta.worsening:+.1%}"
        verdict = "REGRESSED" if delta.regressed else "ok"
        lines.append(
            f"{delta.key:34s} {delta.old:12.4f} {delta.new:12.4f} "
            f"{change:>9s}  {verdict}"
        )
    for key in comparison.missing_keys:
        lines.append(f"{key:34s} {'-':>12s} {'-':>12s} {'dropped':>9s}  REGRESSED")
    if comparison.added_keys:
        lines.append(
            f"new keys (not compared): {', '.join(comparison.added_keys)}"
        )
    if comparison.ok:
        lines.append("no regressions")
    else:
        lines.append(
            f"{len(comparison.regressions)} regression(s), "
            f"{len(comparison.missing_keys)} dropped key(s)"
        )
    return "\n".join(lines)
