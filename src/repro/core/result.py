"""Result objects returned by the CDRW algorithm.

Detection results keep, per seed, the full trace of the largest mixing set
across walk lengths (useful for diagnostics and for the growth-rate ablation
benchmark) alongside the community finally reported.  Detected communities
are kept exactly as Algorithm 1 emits them — they may overlap slightly,
because each detection runs on the whole graph while only the *seed pool*
shrinks — and :meth:`DetectionResult.to_partition` resolves overlaps by
first claim when a disjoint partition is required (e.g. for NMI/ARI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..graphs.partition import Partition
from .mixing_set import LargestMixingSet

__all__ = ["CommunityResult", "DetectionResult"]


@dataclass(frozen=True)
class CommunityResult:
    """The community detected around a single seed vertex.

    Attributes
    ----------
    seed:
        The seed vertex ``s`` the detection started from.
    community:
        The detected community ``C_s``.
    walk_length:
        The walk length at which detection stopped.
    history:
        The largest mixing set found at every walk length, in order.
    stop_reason:
        Why detection stopped (growth rule, budget exhausted, ...).
    delta:
        The stopping parameter δ actually used.
    """

    seed: int
    community: frozenset[int]
    walk_length: int
    history: tuple[LargestMixingSet, ...]
    stop_reason: str
    delta: float

    @property
    def size(self) -> int:
        """Number of vertices in the detected community."""
        return len(self.community)

    def size_trace(self) -> list[int]:
        """Return the mixing-set size per walk length (for growth diagnostics)."""
        return [entry.size for entry in self.history]

    def sizes_examined(self) -> int:
        """Total number of candidate sizes evaluated across all walk lengths."""
        return sum(entry.sizes_examined for entry in self.history)


@dataclass(frozen=True)
class DetectionResult:
    """The full output of CDRW over a graph: one :class:`CommunityResult` per seed.

    Attributes
    ----------
    num_vertices:
        Number of vertices of the input graph.
    communities:
        The per-seed results, in detection order.
    """

    num_vertices: int
    communities: tuple[CommunityResult, ...]

    def __iter__(self) -> Iterator[CommunityResult]:
        return iter(self.communities)

    def __len__(self) -> int:
        return len(self.communities)

    @property
    def num_communities(self) -> int:
        """Number of detected communities (one per seed processed)."""
        return len(self.communities)

    def detected_sets(self) -> list[frozenset[int]]:
        """Return the detected communities as plain vertex sets (possibly overlapping)."""
        return [result.community for result in self.communities]

    def seeds(self) -> list[int]:
        """Return the seed vertices in detection order."""
        return [result.seed for result in self.communities]

    def covered_vertices(self) -> frozenset[int]:
        """Return the union of all detected communities."""
        covered: set[int] = set()
        for result in self.communities:
            covered.update(result.community)
        return frozenset(covered)

    def coverage(self) -> float:
        """Fraction of vertices covered by at least one detected community."""
        if self.num_vertices == 0:
            return 0.0
        return len(self.covered_vertices()) / self.num_vertices

    def to_partition(self, min_size: int = 1) -> Partition:
        """Resolve the detected communities into a disjoint :class:`Partition`.

        Overlaps are resolved by first claim (detection order); communities
        that end up with fewer than ``min_size`` vertices after resolution are
        dropped (their vertices become unassigned).
        """
        claimed: dict[int, int] = {}
        resolved: list[list[int]] = []
        for result in self.communities:
            members = [v for v in sorted(result.community) if v not in claimed]
            if len(members) < min_size:
                continue
            community_id = len(resolved)
            for vertex in members:
                claimed[vertex] = community_id
            resolved.append(members)
        return Partition.from_communities(resolved, self.num_vertices)

    def total_walk_steps(self) -> int:
        """Total number of random-walk steps taken across all seeds."""
        return sum(result.walk_length for result in self.communities)
