"""CDRW core: the paper's community detection algorithm and its building blocks."""

from ..execution import block_ranges, parallel_map_blocks, resolve_workers
from .parameters import CDRWParameters
from .mixing_set import (
    BatchedMixingSetSearch,
    LargestMixingSet,
    MixingSetSearch,
    deviation_values,
    mixing_deficit_for_size,
)
from .stopping import GrowthStoppingRule, StoppingDecision
from .result import CommunityResult, DetectionResult
from .cdrw import detect_communities, detect_community
from .batched import detect_communities_batched, detect_community_batch
from .parallel import detect_communities_parallel, select_spread_seeds

__all__ = [
    "CDRWParameters",
    "block_ranges",
    "parallel_map_blocks",
    "resolve_workers",
    "BatchedMixingSetSearch",
    "LargestMixingSet",
    "MixingSetSearch",
    "deviation_values",
    "mixing_deficit_for_size",
    "GrowthStoppingRule",
    "StoppingDecision",
    "CommunityResult",
    "DetectionResult",
    "detect_communities",
    "detect_communities_batched",
    "detect_community",
    "detect_community_batch",
    "detect_communities_parallel",
    "select_spread_seeds",
]
