"""The localized largest-mixing-set search at a fixed walk length.

This implements lines 12-17 of Algorithm 1.  Given the walk distribution
``p_ℓ`` after ``ℓ`` steps:

1. every vertex ``u`` computes ``x_u = | p_ℓ(u) − d(u)/µ'(S) |`` where
   ``µ'(S) = (2m/n)·|S|`` is the *average* volume of a size-``|S|`` set (the
   localized stand-in for the true volume ``µ(S)``, which a vertex cannot know
   without learning the whole set);
2. the seed collects the ``|S|`` smallest ``x_u`` values (distributedly this
   is done by binary search over a BFS tree — see
   :mod:`repro.congest.aggregation`) and accepts the size when their sum is
   below the threshold ``1/(2e)``;
3. candidate sizes grow geometrically by ``(1 + 1/8e)`` starting from
   ``R = log n``; the search stops at the first size that fails and reports
   the largest accepted size together with the vertices attaining it.

The function here is the *centralized executor* of this search: it performs
the same arithmetic as the CONGEST node programs and is what the accuracy
experiments run (the distributed implementation produces identical sets —
asserted by integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np
from numpy.typing import DTypeLike

from ..exceptions import AlgorithmError
from ..execution import parallel_map_blocks, resolve_workers
from ..graphs.graph import Graph
from ..utils import GROWTH_FACTOR, MIXING_THRESHOLD, geometric_sizes, linear_sizes

if TYPE_CHECKING:
    from .parameters import CDRWParameters

__all__ = [
    "MixingSetSearch",
    "BatchedMixingSetSearch",
    "LargestMixingSet",
    "deviation_values",
    "mixing_deficit_for_size",
]

#: Per-block working-array budget of the batched search (bytes).  One block
#: holds `block_width` walk distributions of `n` float64s; ~1 MB keeps the
#: block cache-resident across the whole candidate-size schedule while still
#: amortizing the shared per-size target computation over several lanes
#: (measured the best compromise across n = 8k–50k at B = 64 on one core).
_SEARCH_BLOCK_BYTES = 1 << 20


@dataclass(frozen=True)
class LargestMixingSet:
    """Outcome of the largest-mixing-set search at one walk length.

    Attributes
    ----------
    walk_length:
        The walk length ``ℓ`` the search was run at.
    size:
        Size of the largest accepted candidate (0 when none was accepted).
    members:
        The accepted vertex set (empty when ``size`` is 0).
    deficit:
        The sum of the ``size`` smallest ``x_u`` values of the accepted set.
    mass:
        The total walk probability currently held by the accepted set.
    sizes_examined:
        How many candidate sizes were evaluated (for complexity accounting).
    """

    walk_length: int
    size: int
    members: frozenset[int]
    deficit: float
    mass: float
    sizes_examined: int

    @property
    def found(self) -> bool:
        """Whether any candidate size satisfied the mixing condition."""
        return self.size > 0


def deviation_values(graph: Graph, distribution: np.ndarray, subset_size: int) -> np.ndarray:
    """Return the per-vertex deviations ``x_u = |p(u) − d(u)/µ'(S)|`` for ``|S| = subset_size``."""
    if subset_size < 1:
        raise AlgorithmError(f"subset size must be >= 1, got {subset_size}")
    if graph.num_edges == 0:
        raise AlgorithmError("the mixing-set search requires a graph with at least one edge")
    distribution = np.asarray(distribution, dtype=np.float64)
    if distribution.shape != (graph.num_vertices,):
        raise AlgorithmError(
            f"distribution has shape {distribution.shape}, expected ({graph.num_vertices},)"
        )
    average_volume = graph.volume / graph.num_vertices * subset_size
    targets = graph.degrees().astype(np.float64) / average_volume
    return np.abs(distribution - targets)


def mixing_deficit_for_size(
    graph: Graph, distribution: np.ndarray, subset_size: int
) -> tuple[float, float, np.ndarray]:
    """Return ``(deficit, mass, members)`` for one candidate size.

    ``deficit`` is the sum of the ``subset_size`` smallest ``x_u`` values,
    ``mass`` is the walk probability held by the selected vertices and
    ``members`` are the vertices attaining the smallest deviations (ties
    broken by vertex id, mirroring the paper's tie-break of adding a
    vanishing perturbation).
    """
    deviations = deviation_values(graph, distribution, subset_size)
    distribution = np.asarray(distribution, dtype=np.float64)
    if subset_size >= graph.num_vertices:
        members = np.arange(graph.num_vertices, dtype=np.int64)
        return float(deviations.sum()), float(distribution.sum()), members
    # argpartition gives the smallest `subset_size` entries in O(n).
    chosen = np.argpartition(deviations, subset_size - 1)[:subset_size]
    chosen = np.sort(chosen)
    return float(deviations[chosen].sum()), float(distribution[chosen].sum()), chosen


class MixingSetSearch:
    """Runs the largest-mixing-set search of Algorithm 1 for one graph.

    The search object precomputes the candidate-size schedule once so that
    repeated calls (one per walk length) stay cheap.
    """

    def __init__(
        self,
        graph: Graph,
        initial_size: int,
        mixing_threshold: float = MIXING_THRESHOLD,
        growth_factor: float = GROWTH_FACTOR,
        schedule: str = "geometric",
        stop_at_first_failure: bool = False,
        min_mass: float | None = None,
    ) -> None:
        if initial_size < 1:
            raise AlgorithmError(f"initial size must be >= 1, got {initial_size}")
        if graph.num_vertices == 0:
            raise AlgorithmError("cannot search for mixing sets in an empty graph")
        if not (0.0 < mixing_threshold < 2.0):
            raise AlgorithmError(f"mixing threshold must be in (0, 2), got {mixing_threshold}")
        if min_mass is None:
            # Definition 2 implies a true local mixing set holds mass at least
            # 1 - ε; the localized µ'(S) proxy loses that guarantee (a set of
            # low-degree vertices with almost no probability can have small
            # per-vertex deviations), so the mass condition is enforced
            # explicitly, slightly relaxed to 1 - 2ε to tolerate the
            # probability that leaks across the sparse PPM cut while the walk
            # mixes inside its block.
            min_mass = max(0.0, 1.0 - 2.0 * mixing_threshold)
        if not (0.0 <= min_mass <= 1.0):
            raise AlgorithmError(f"min_mass must be in [0, 1], got {min_mass}")
        self._graph = graph
        self._threshold = mixing_threshold
        self._min_mass = min_mass
        self._stop_at_first_failure = bool(stop_at_first_failure)
        initial = min(initial_size, graph.num_vertices)
        if schedule == "geometric":
            self._sizes = geometric_sizes(initial, graph.num_vertices, growth_factor)
        elif schedule == "linear":
            self._sizes = linear_sizes(initial, graph.num_vertices)
        else:
            raise AlgorithmError(f"unknown schedule: {schedule!r}")

    @property
    def candidate_sizes(self) -> list[int]:
        """The candidate-size schedule (read-only copy)."""
        return list(self._sizes)

    def largest_mixing_set(self, distribution: np.ndarray, walk_length: int) -> LargestMixingSet:
        """Return the largest mixing set for the given walk distribution.

        Candidate sizes are examined in increasing order and the *largest*
        size whose ``|S|`` smallest deviations sum below the threshold wins
        (Algorithm 1 line 17: "the largest set S which satisfies the mixing
        condition").  By default the whole schedule is scanned: with the
        localized average-volume proxy ``µ'(S)`` the acceptance predicate is
        not monotone in ``|S|`` — in dense graphs no set smaller than roughly
        the seed's degree can mix even though community-sized sets do — so
        stopping at the first failing size (the literal pseudocode reading,
        available via ``stop_at_first_failure=True``) can miss every mixing
        set.  This deviation is recorded in DESIGN.md.
        """
        best_size = 0
        best_members: np.ndarray | None = None
        best_deficit = 0.0
        best_mass = 0.0
        examined = 0
        for size in self._sizes:
            examined += 1
            deficit, mass, members = mixing_deficit_for_size(self._graph, distribution, size)
            if deficit < self._threshold and mass >= self._min_mass:
                best_size = size
                best_members = members
                best_deficit = deficit
                best_mass = mass
            elif deficit >= self._threshold and self._stop_at_first_failure:
                break
        members_set = (
            frozenset(int(v) for v in best_members) if best_members is not None else frozenset()
        )
        return LargestMixingSet(
            walk_length=walk_length,
            size=best_size,
            members=members_set,
            deficit=best_deficit,
            mass=best_mass,
            sizes_examined=examined,
        )


class BatchedMixingSetSearch(MixingSetSearch):
    """The largest-mixing-set search evaluated for ``B`` walks at once.

    The scalar :class:`MixingSetSearch` spends one full pass over the graph
    per candidate size *per walk column*: recomputing the per-vertex targets
    ``d(u)/µ'(S)``, forming the deviation vector and argpartitioning it.  At
    batch width ``B`` the per-step cost of
    :func:`repro.core.batched.detect_community_batch` is therefore dominated
    by ``B`` sequential scans rather than the shared SpMM walk advance.  This
    class batches the search itself: for every candidate size, the targets
    are computed once, the deviation *matrix* ``|P − targets|`` over all
    active columns is formed in one elementwise pass, and one per-lane
    ``np.argpartition`` selects every column's smallest deviations
    simultaneously.  Internally the distributions are laid out one per row
    (the matrix is transposed once per call) so every argpartition lane is
    contiguous in memory.

    Exact-equivalence guarantee
    ---------------------------
    For every column ``j`` of ``distributions``,
    ``largest_mixing_sets(distributions, ℓ)[j]`` is **equal** (dataclass
    equality: same members, same deficit/mass floats, same
    ``sizes_examined``) to
    ``largest_mixing_set(np.ascontiguousarray(distributions[:, j]), ℓ)``:

    * deviations are elementwise IEEE operations, identical regardless of
      memory layout;
    * numpy's introselect is deterministic in the value sequence of each
      lane, so the per-lane result of the batched argpartition — including
      the resolution of ties — matches the scalar 1-D argpartition, and both
      paths sort the selected indices by vertex id afterwards;
    * deficits and masses are summed from *contiguous* per-column gathers so
      numpy's pairwise summation blocks exactly as in the scalar path
      (a 2-D axis-0 reduction would block differently and drift in the last
      ulp — the same pitfall :meth:`BatchedWalkDistribution.mass_in` avoids).

    ``tests/test_batched_mixing_set.py`` asserts the equivalence on random
    and tie-heavy distributions for every schedule/flag combination.

    Multi-core search
    -----------------
    At n ≳ 50k the batched scan is memory-bound on one core (ROADMAP).  The
    ``workers`` knob (``None`` → ``REPRO_WORKERS`` environment override →
    serial; ``0`` → all cores) splits the per-lane work across threads of
    the shared pool (:mod:`repro.execution`) by contiguous *lane block*.
    Every lane's deviations, argpartition and contiguous gather-sums are
    computed from that lane's row alone, independent of which other lanes
    share a block, so the exact-equivalence guarantee above holds for every
    ``workers`` value (asserted by ``tests/test_execution.py``).

    float32 fast path
    -----------------
    ``dtype=np.float32`` halves the memory traffic of the deviation scan —
    the knob for searches that are bandwidth-bound, not precision-bound.  It
    is explicitly **not** covered by the exactness guarantee: deviations,
    deficits and masses are computed in single precision (then widened for
    the threshold comparisons), so reported floats are only ≈-close to the
    float64 path and argpartition near-ties may select different members.
    Tests assert closeness, never equality, for this path.
    """

    def __init__(
        self,
        *args: Any,
        workers: int | None = None,
        dtype: DTypeLike = np.float64,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._dtype = np.dtype(dtype)
        if self._dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise AlgorithmError(
                f"batched search dtype must be float64 or float32, got {dtype!r}"
            )
        self._workers = resolve_workers(workers)
        # Shared per-call constants, hoisted out of the size loop.  The
        # average volume is computed as (volume/n)·size — the same float
        # sequence as deviation_values — so targets stay bit-identical.
        self._degrees = self._graph.degrees().astype(self._dtype)
        self._volume_per_vertex = self._graph.volume / self._graph.num_vertices

    @property
    def workers(self) -> int:
        """The resolved thread count used by the lane-blocked scan."""
        return self._workers

    @property
    def dtype(self) -> np.dtype:
        """The scan precision (float64 exact path or float32 fast path)."""
        return self._dtype

    @classmethod
    def from_parameters(
        cls,
        graph: Graph,
        parameters: "CDRWParameters",
        initial_size: int,
        workers: int | None = None,
        dtype: DTypeLike = np.float64,
    ) -> "BatchedMixingSetSearch":
        """Build a batched search from a :class:`CDRWParameters` instance."""
        return cls(
            graph,
            initial_size=initial_size,
            mixing_threshold=parameters.mixing_threshold,
            growth_factor=parameters.growth_factor,
            schedule=parameters.size_schedule,
            stop_at_first_failure=parameters.stop_at_first_failure,
            min_mass=parameters.min_mass,
            workers=workers,
            dtype=dtype,
        )

    def largest_mixing_sets(
        self, distributions: np.ndarray, walk_length: int
    ) -> list[LargestMixingSet]:
        """Return the largest mixing set of every column of ``distributions``.

        Parameters
        ----------
        distributions:
            ``(n, B)`` matrix whose columns are walk distributions (e.g.
            ``BatchedWalkDistribution.probabilities()``).
        walk_length:
            The walk length ``ℓ`` recorded in every returned result.
        """
        matrix = np.asarray(distributions, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != self._graph.num_vertices:
            raise AlgorithmError(
                f"distribution matrix has shape {matrix.shape}, expected "
                f"({self._graph.num_vertices}, B)"
            )
        if self._graph.num_edges == 0:
            raise AlgorithmError("the mixing-set search requires a graph with at least one edge")
        num_vertices, width = matrix.shape
        if width == 0:
            return []
        if width == 1 and self._dtype == np.dtype(np.float64):
            # A one-walk batch gains nothing from the transpose and block
            # bookkeeping; the scalar search is the same computation.  (The
            # float32 fast path must still go through the batched scan so
            # its precision is dtype-consistent at every width.)
            column = np.ascontiguousarray(matrix[:, 0])
            return [self.largest_mixing_set(column, walk_length)]
        # Work row-major with one distribution per *row*: the per-lane
        # introselect of the argpartition below then runs over contiguous
        # memory.  (Partitioning the (n, B) matrix along axis 0 walks lanes
        # with stride 8B bytes — measured 6x slower than the scalar loop at
        # B = 64 on a 50k-vertex graph.)  The transpose changes layout only,
        # never the per-lane value sequence, so results are unaffected; the
        # float32 fast path casts here, in the same pass.
        rows = np.ascontiguousarray(matrix.T, dtype=self._dtype)

        best_size = [0] * width
        best_members: list[np.ndarray | None] = [None] * width
        best_deficit = [0.0] * width
        best_mass = [0.0] * width
        examined = [0] * width

        # Lanes are processed in cache-sized blocks, each scanning the whole
        # candidate schedule before the next block starts: the block's rows
        # stay hot across all sizes (the scalar loop's one cache advantage),
        # while targets and the elementwise/argpartition passes amortize over
        # the block.  One (lanes, n) array per _SEARCH_BLOCK_BYTES.
        block_width = max(
            1, min(width, _SEARCH_BLOCK_BYTES // max(1, num_vertices * rows.itemsize))
        )

        def scan_lanes(lane_start: int, lane_stop: int) -> None:
            # Worker task: scan a contiguous lane range in cache-sized
            # blocks.  Every lane's results depend only on its own row, so
            # neither the block boundaries nor the worker partition change a
            # single output value, and each lane index is written by exactly
            # one worker (disjoint slices — no locking needed).
            for start in range(lane_start, lane_stop, block_width):
                self._scan_block(
                    rows,
                    start,
                    min(start + block_width, lane_stop),
                    best_size,
                    best_members,
                    best_deficit,
                    best_mass,
                    examined,
                )

        parallel_map_blocks(scan_lanes, width, self._workers)

        results: list[LargestMixingSet] = []
        for column in range(width):
            members = best_members[column]
            members_set = (
                frozenset(int(v) for v in members) if members is not None else frozenset()
            )
            results.append(
                LargestMixingSet(
                    walk_length=walk_length,
                    size=best_size[column],
                    members=members_set,
                    deficit=best_deficit[column],
                    mass=best_mass[column],
                    sizes_examined=examined[column],
                )
            )
        return results

    def _scan_block(
        self,
        rows: np.ndarray,
        start: int,
        stop: int,
        best_size: list[int],
        best_members: list[np.ndarray | None],
        best_deficit: list[float],
        best_mass: list[float],
        examined: list[int],
    ) -> None:
        """Scan the whole candidate schedule for lanes ``start:stop`` of ``rows``.

        Writes each lane's best accepted candidate into the shared result
        lists at its global lane index; lanes outside ``start:stop`` are
        never touched, which is what makes the blocks thread-safe.
        """
        num_vertices = rows.shape[1]
        # Global column ids of the lanes still scanning the schedule; only
        # stop_at_first_failure ever removes a lane early (mirroring the
        # scalar `break`).
        columns = np.arange(start, stop)
        lanes = rows[start:stop]
        deviations = np.empty_like(lanes)
        for size in self._sizes:
            average_volume = self._volume_per_vertex * size
            targets = self._degrees / average_volume
            np.subtract(lanes, targets[None, :], out=deviations)
            np.absolute(deviations, out=deviations)
            if size >= num_vertices:
                chosen = None
                deficits = deviations.sum(axis=1)
                masses = lanes.sum(axis=1)
            else:
                chosen = np.argpartition(deviations, size - 1, axis=1)[:, :size]
                chosen.sort(axis=1)
                # take_along_axis gathers contiguously in vertex-id order
                # and the last-axis reduction applies the same pairwise
                # blocking as the scalar 1-D `deviations[chosen].sum()`.
                deficits = np.take_along_axis(deviations, chosen, axis=1).sum(axis=1)
                masses = np.take_along_axis(lanes, chosen, axis=1).sum(axis=1)
            failed: list[int] = []
            for position in range(columns.size):
                column = int(columns[position])
                examined[column] += 1
                deficit = float(deficits[position])
                mass = float(masses[position])
                if deficit < self._threshold and mass >= self._min_mass:
                    best_size[column] = size
                    best_members[column] = (
                        np.arange(num_vertices, dtype=np.int64)
                        if chosen is None
                        # Copy: the row view must not keep this size's
                        # full index matrix alive per column.
                        else chosen[position].copy()
                    )
                    best_deficit[column] = deficit
                    best_mass[column] = mass
                elif deficit >= self._threshold and self._stop_at_first_failure:
                    failed.append(position)
            if failed:
                keep = np.delete(np.arange(columns.size), failed)
                if keep.size == 0:
                    break
                columns = columns[keep]
                lanes = np.ascontiguousarray(lanes[keep])
                deviations = np.empty_like(lanes)
