"""The growth-based stopping rule of Algorithm 1 (line 18).

The size of the largest mixing set is tracked across walk lengths; detection
stops as soon as the size fails to grow by at least a ``(1 + δ)`` factor, at
which point the *previous* step's mixing set is reported as the community.
The paper chooses ``δ = Φ_G``: while the mixing set is still expanding inside
a community, its size grows at rate ``Θ(d)`` per step (Lemma 2); once it has
filled the community the per-step relative growth drops to the conductance of
the community cut, so using ``Φ_G`` as the threshold separates the two
regimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import AlgorithmError
from .mixing_set import LargestMixingSet

__all__ = ["GrowthStoppingRule", "StoppingDecision"]


@dataclass(frozen=True)
class StoppingDecision:
    """The verdict of the stopping rule after observing one walk length.

    Attributes
    ----------
    should_stop:
        ``True`` when detection should stop at this walk length.
    community:
        The mixing set to report when stopping (the previous step's set, per
        Algorithm 1 line 20); ``None`` while detection continues or when no
        usable set exists yet.
    reason:
        Human-readable reason (useful in experiment logs).
    """

    should_stop: bool
    community: LargestMixingSet | None
    reason: str


@dataclass
class GrowthStoppingRule:
    """Stateful implementation of the ``|S_ℓ| < (1+δ)|S_{ℓ-1}|`` stopping rule.

    Parameters
    ----------
    delta:
        The growth threshold δ (the paper uses the graph conductance ``Φ_G``).
    require_consecutive:
        Number of consecutive low-growth steps required before stopping.
        The paper stops at the first one (default 1); experiments may use 2
        to smooth out unlucky plateaus early in the walk.
    """

    delta: float
    require_consecutive: int = 1
    _previous: LargestMixingSet | None = field(default=None, init=False, repr=False)
    _low_growth_streak: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.delta < 0.0:
            raise AlgorithmError(f"delta must be non-negative, got {self.delta}")
        if self.require_consecutive < 1:
            raise AlgorithmError(
                f"require_consecutive must be >= 1, got {self.require_consecutive}"
            )

    @property
    def previous(self) -> LargestMixingSet | None:
        """The mixing set observed at the previous walk length."""
        return self._previous

    def observe(self, current: LargestMixingSet) -> StoppingDecision:
        """Feed the mixing set found at the next walk length and get a verdict.

        The rule only fires once both the previous and the current step found
        a non-empty mixing set; before that the walk simply has not spread far
        enough for any candidate size to satisfy the mixing condition, and the
        algorithm keeps walking.
        """
        previous = self._previous
        self._previous = current

        if previous is None or not previous.found:
            self._low_growth_streak = 0
            return StoppingDecision(False, None, "no previous mixing set yet")
        if not current.found:
            # The mixing set vanished transiently: the walk has outgrown the
            # sizes that mixed at the previous step but has not yet spread
            # evenly over any larger candidate.  Keep walking; the last found
            # set is still remembered by the caller as a fallback.
            self._low_growth_streak = 0
            return StoppingDecision(False, None, "mixing set temporarily vanished")

        growth = current.size / previous.size
        if growth < 1.0 + self.delta:
            self._low_growth_streak += 1
            if self._low_growth_streak >= self.require_consecutive:
                return StoppingDecision(
                    True,
                    previous,
                    f"growth {growth:.4f} below 1+δ = {1.0 + self.delta:.4f}",
                )
            return StoppingDecision(False, None, "low growth, waiting for confirmation")
        self._low_growth_streak = 0
        return StoppingDecision(False, None, f"growth {growth:.4f} still above 1+δ")

    def reset(self) -> None:
        """Forget all observed history (used when reusing the rule across seeds)."""
        self._previous = None
        self._low_growth_streak = 0
