"""Batched multi-seed CDRW execution.

The sequential pool loop of :func:`repro.core.cdrw.detect_communities` runs
one full community detection per drawn seed.  Each detection is independent
of the pool state — ``detect_community(graph, s)`` depends only on the graph
and ``s`` — so several seeds can share the expensive part of the work: the
per-step walk advance.  :func:`detect_community_batch` runs ``B`` detections
simultaneously on top of one
:class:`~repro.randomwalk.batched.BatchedWalkDistribution` (one CSR
sparse-matrix–matrix product per walk step instead of ``B`` matrix–vector
products).  The mixing-set search is batched as well: one
:class:`~repro.core.mixing_set.BatchedMixingSetSearch` call per walk step
evaluates every active column simultaneously (one deviation matrix and one
axis-0 argpartition per candidate size instead of ``B`` sequential scans),
while the per-seed :class:`~repro.core.stopping.GrowthStoppingRule` stays
scalar and untouched.

Because the batched walk columns are bit-identical to scalar walks (see
:mod:`repro.randomwalk.batched`), every ``CommunityResult`` produced here is
**identical** to what :func:`repro.core.cdrw.detect_community` returns for
the same seed — same community, same history, same stop reason.  Walks whose
detection stops early are dropped from the batch (``retain``), so a batch
costs no more steps than its slowest member.

:func:`detect_communities_batched` is the pool-driver counterpart.  It keeps
the not-yet-assigned pool as a boolean membership array and supports two
modes:

* **explicit seeds** — process a caller-fixed seed list in batches; the
  result is identical to mapping ``detect_community`` over the list;
* **pool mode** — draw up to ``batch_size`` seeds per round from the pool.
  Draws within one round exclude the seeds already drawn in that round but
  (necessarily) not their still-unknown communities; with ``batch_size=1``
  the RNG draw sequence and the output are identical to the sequential
  :func:`~repro.core.cdrw.detect_communities`.

Both public functions are thin shims over the ``"batched"`` backend of the
unified detection engine (:mod:`repro.api`); the implementations live in the
module-private ``_impl`` functions the registry calls, with outputs
identical to the pre-registry behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, Sequence

import numpy as np
from numpy.typing import DTypeLike

from ..exceptions import AlgorithmError
from ..graphs.graph import Graph
from ..randomwalk.batched import BatchedWalkDistribution
from ..utils import as_rng
from .cdrw import _ensure_seed, _remove_detected
from .mixing_set import BatchedMixingSetSearch, LargestMixingSet
from .parameters import CDRWParameters
from .result import CommunityResult, DetectionResult
from .stopping import GrowthStoppingRule

if TYPE_CHECKING:
    import scipy.sparse as sp

__all__ = ["detect_community_batch", "detect_communities_batched", "BatchedWalk"]


class BatchedWalk(Protocol):
    """The walk surface the batched detection driver consumes.

    :class:`~repro.randomwalk.batched.BatchedWalkDistribution` is the
    reference implementation; the sharded execution tier
    (:mod:`repro.execution_sharded`) substitutes a drop-in whose step runs
    row-sliced on worker processes.  Any implementation must keep the
    bit-identity contract: column ``j`` after ``ℓ`` steps equals the serial
    walk from ``sources[j]`` exactly.
    """

    def step(self, count: int = 1) -> np.ndarray: ...

    def probabilities(self) -> np.ndarray: ...

    def column(self, walk: int) -> np.ndarray: ...

    def columns(self, walks: Sequence[int]) -> np.ndarray: ...

    def retain(self, walks: Sequence[int]) -> None: ...


def detect_community_batch(
    graph: Graph,
    seeds: list[int] | tuple[int, ...] | np.ndarray,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    *,
    capture_distributions: bool = False,
    workers: int | None = None,
) -> list[CommunityResult] | tuple[list[CommunityResult], np.ndarray]:
    """Detect the community of every seed in ``seeds``, sharing one batched walk.

    Returns one :class:`CommunityResult` per seed, in input order, identical
    to ``[detect_community(graph, s, parameters, delta_hint) for s in seeds]``
    (asserted by ``tests/test_batched_detection.py``).  Duplicate seeds are
    allowed and produce duplicate results.

    When ``capture_distributions`` is true, returns ``(results, matrix)``
    where ``matrix`` is the ``(n, len(seeds))`` array holding, per seed, the
    walk distribution at the step its detection stopped (the seed's one-hot
    vector for the edgeless fast path).  The parallel driver uses these to
    resolve conflicts between overlapping communities without re-running any
    walk.

    ``workers`` selects the thread count of the two hot kernels — the
    column-blocked walk step and the lane-blocked mixing-set scan (``None``
    → the ``REPRO_WORKERS`` environment override, default serial; ``0`` →
    all cores).  Both kernels are bit-identical per column/lane for every
    value, so the detected communities never depend on it.
    """
    seed_tuple = tuple(int(s) for s in seeds)
    if not seed_tuple:
        if capture_distributions:
            return [], np.zeros((graph.num_vertices, 0), dtype=np.float64)
        return []
    from ..api import RunConfig, detect

    report = detect(
        graph,
        backend="batched",
        params=parameters,
        delta_hint=delta_hint,
        config=RunConfig(
            seeds=seed_tuple,
            batch_size=len(seed_tuple),
            workers=workers,
            capture_distributions=capture_distributions,
        ),
    )
    results = list(report.detection.communities)
    if capture_distributions:
        finals = report.native_result
        if finals is None:
            # In-memory runs carry the raw matrix as the native result; a
            # report that lost it (e.g. rebuilt from JSON) still rebuilds
            # the (n, len(seeds)) column layout exactly from the artefact
            # (`ndarray.tolist()` round-trips the same doubles).
            finals = np.ascontiguousarray(
                np.array(
                    report.artifacts["final_distributions"], dtype=np.float64
                )
                .reshape(len(results), graph.num_vertices)
                .T
            )
        return results, finals
    return results


def _detect_community_batch_impl(
    graph: Graph,
    seeds: list[int] | tuple[int, ...] | np.ndarray,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    *,
    capture_distributions: bool = False,
    workers: int | None = None,
    dtype: DTypeLike = np.float64,
    capture_history: bool = True,
    walk_operator: "sp.csr_matrix | None" = None,
    search: BatchedMixingSetSearch | None = None,
    walk_factory: Callable[[list[int]], BatchedWalk] | None = None,
) -> list[CommunityResult] | tuple[list[CommunityResult], np.ndarray]:
    """The batched multi-seed detection the ``"batched"`` backend executes.

    ``dtype`` selects the mixing-set scan precision
    (:class:`~repro.core.mixing_set.BatchedMixingSetSearch`); only the
    default ``float64`` carries the exactness guarantee.

    ``capture_history=False`` skips accumulating the per-step mixing-set
    traces (each result's ``history`` is empty); communities, walk lengths,
    stop reasons and δ are unchanged — the stopping rules consume each
    step's mixing set directly, never the accumulated lists.

    ``walk_operator`` / ``search`` let a resident session inject the cached
    transition operator and batched search instance so repeated calls skip
    their construction; both are deterministic functions of ``(graph,
    parameters, workers, dtype)``, so injecting them changes no float.

    ``walk_factory`` substitutes the walk implementation itself (the
    :class:`BatchedWalk` protocol): the sharded execution tier builds its
    row-partitioned walk here while this driver — the δ resolution, the
    stopping rules, the retain schedule — stays byte-for-byte the code the
    serial backend runs, which is what makes the cross-tier identity a
    structural property rather than a numerical accident.  Mutually
    exclusive with ``walk_operator``.
    """
    seed_list = [int(s) for s in seeds]
    if not seed_list:
        if capture_distributions:
            return [], np.zeros((graph.num_vertices, 0), dtype=np.float64)
        return []
    for seed_vertex in seed_list:
        if seed_vertex not in graph:
            raise AlgorithmError(f"seed vertex {seed_vertex} is not a vertex of {graph!r}")
    if graph.num_edges == 0:
        # Isolated seeds trivially form their own communities (scalar fast path).
        results = [
            CommunityResult(
                seed=seed_vertex,
                community=frozenset({seed_vertex}),
                walk_length=0,
                history=(),
                stop_reason="graph has no edges",
                delta=0.0,
            )
            for seed_vertex in seed_list
        ]
        if capture_distributions:
            finals = np.zeros((graph.num_vertices, len(seed_list)), dtype=np.float64)
            finals[seed_list, np.arange(len(seed_list))] = 1.0
            return results, finals
        return results
    parameters = parameters or CDRWParameters()

    delta = parameters.resolve_delta(graph, delta_hint)
    initial_size = parameters.resolve_initial_size(graph)
    max_walk_length = parameters.resolve_max_walk_length(graph)

    # The search is stateless across walk lengths, so one instance serves the
    # whole batch (and, via injection, a whole session); the stopping rule is
    # stateful and stays per-seed.
    if search is None:
        search = BatchedMixingSetSearch.from_parameters(
            graph, parameters, initial_size, workers=workers, dtype=dtype
        )
    stoppings = [GrowthStoppingRule(delta=delta) for _ in seed_list]
    if walk_factory is not None:
        if walk_operator is not None:
            raise AlgorithmError("walk_factory and walk_operator are mutually exclusive")
        walk: BatchedWalk = walk_factory(seed_list)
    else:
        walk = BatchedWalkDistribution(
            graph,
            seed_list,
            lazy=parameters.lazy_walk,
            workers=workers,
            operator=walk_operator,
        )

    num_seeds = len(seed_list)
    histories: list[list[LargestMixingSet]] = [[] for _ in range(num_seeds)]
    last_found: list[LargestMixingSet | None] = [None] * num_seeds
    finished: dict[int, CommunityResult] = {}
    finals = (
        np.zeros((graph.num_vertices, num_seeds), dtype=np.float64)
        if capture_distributions
        else None
    )
    active = list(range(num_seeds))  # walk column c holds seed index active[c]

    for length in range(1, max_walk_length + 1):
        walk.step()
        # One batched search per step evaluates every active column at once.
        currents = search.largest_mixing_sets(walk.probabilities(), length)
        stopped_columns: set[int] = set()
        for column, index in enumerate(active):
            current = currents[column]
            if capture_history:
                histories[index].append(current)
            if current.found:
                last_found[index] = current
            decision = stoppings[index].observe(current)
            if decision.should_stop and decision.community is not None:
                finished[index] = CommunityResult(
                    seed=seed_list[index],
                    community=_ensure_seed(decision.community.members, seed_list[index]),
                    walk_length=length,
                    history=tuple(histories[index]),
                    stop_reason=decision.reason,
                    delta=delta,
                )
                if finals is not None:
                    finals[:, index] = walk.column(column)
                stopped_columns.add(column)
        if stopped_columns:
            keep = [c for c in range(len(active)) if c not in stopped_columns]
            active = [active[c] for c in keep]
            if not active:
                break
            walk.retain(keep)

    # Budget exhausted without triggering the growth rule for the survivors:
    # fall back to the last mixing set found, or the seed alone (scalar rule).
    if active and finals is not None:
        finals[:, active] = walk.columns(range(len(active)))
    for index in active:
        if last_found[index] is not None:
            members = _ensure_seed(last_found[index].members, seed_list[index])
            stop_reason = "walk length budget exhausted"
        else:
            members = frozenset({seed_list[index]})
            stop_reason = "no mixing set found within the walk budget"
        finished[index] = CommunityResult(
            seed=seed_list[index],
            community=members,
            walk_length=max_walk_length,
            history=tuple(histories[index]),
            stop_reason=stop_reason,
            delta=delta,
        )
    results = [finished[index] for index in range(num_seeds)]
    if finals is not None:
        return results, finals
    return results


def detect_communities_batched(
    graph: Graph,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    seed: int | np.random.Generator | None = None,
    max_seeds: int | None = None,
    batch_size: int = 8,
    seeds: list[int] | tuple[int, ...] | np.ndarray | None = None,
    workers: int | None = None,
) -> DetectionResult:
    """Run the pool loop of Algorithm 1 with batched multi-seed detection.

    Parameters
    ----------
    seed:
        Random seed (or generator) controlling pool draws (pool mode only).
    max_seeds:
        Optional cap on the number of seeds processed.
    batch_size:
        How many seeds are detected per batched pass.  ``1`` reproduces the
        sequential :func:`~repro.core.cdrw.detect_communities` exactly
        (identical RNG draws and communities).
    seeds:
        Optional explicit seed vertices.  When given, the pool and ``seed``
        are ignored and the listed seeds are processed in order — identical
        output to a sequential loop of ``detect_community`` over the list.
    workers:
        Thread count for the batched kernels (see
        :func:`detect_community_batch`); results are identical for every
        value.

    Notes
    -----
    In pool mode with ``batch_size > 1`` the draws inside one round cannot
    see the communities of the other seeds in the same round (they are being
    detected simultaneously), so the drawn seed sequence differs from the
    sequential loop's; each individual result is still exactly what the
    sequential algorithm would report for that seed.
    """
    from ..api import RunConfig, detect

    report = detect(
        graph,
        backend="batched",
        params=parameters,
        delta_hint=delta_hint,
        config=RunConfig(
            seed=seed,
            max_seeds=max_seeds,
            batch_size=batch_size,
            seeds=None if seeds is None else tuple(int(s) for s in seeds),
            workers=workers,
        ),
    )
    return report.detection


def _detect_communities_batched_impl(
    graph: Graph,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    seed: int | np.random.Generator | None = None,
    max_seeds: int | None = None,
    batch_size: int = 8,
    seeds: list[int] | tuple[int, ...] | np.ndarray | None = None,
    workers: int | None = None,
    dtype: DTypeLike = np.float64,
    capture_distributions: bool = False,
    capture_history: bool = True,
    walk_operator: "sp.csr_matrix | None" = None,
    search: BatchedMixingSetSearch | None = None,
    walk_factory: Callable[[list[int]], BatchedWalk] | None = None,
) -> DetectionResult | tuple[DetectionResult, np.ndarray]:
    """The batched pool loop the ``"batched"`` backend executes.

    With ``capture_distributions`` the return value is ``(detection,
    finals)`` where ``finals[:, i]`` is the final walk distribution of
    ``detection.communities[i]`` (see :func:`detect_community_batch`).
    ``capture_history`` / ``walk_operator`` / ``search`` /
    ``walk_factory`` are forwarded to every
    :func:`_detect_community_batch_impl` round unchanged.
    """
    if batch_size < 1:
        raise AlgorithmError(f"batch_size must be >= 1, got {batch_size}")
    parameters = parameters or CDRWParameters()
    final_chunks: list[np.ndarray] = []

    def run_batch(batch_seeds: list[int]) -> list[CommunityResult]:
        outcome = _detect_community_batch_impl(
            graph,
            batch_seeds,
            parameters,
            delta_hint,
            capture_distributions=capture_distributions,
            workers=workers,
            dtype=dtype,
            capture_history=capture_history,
            walk_operator=walk_operator,
            search=search,
            walk_factory=walk_factory,
        )
        if capture_distributions:
            batch_results, batch_finals = outcome
            final_chunks.append(batch_finals)
            return batch_results
        return outcome

    if seeds is not None:
        seed_list = [int(s) for s in seeds]
        if max_seeds is not None:
            seed_list = seed_list[:max_seeds]
        results: list[CommunityResult] = []
        for start in range(0, len(seed_list), batch_size):
            results.extend(run_batch(seed_list[start:start + batch_size]))
        return _bundle_batched_result(
            graph, results, final_chunks, capture_distributions
        )

    results = _pool_loop(graph, as_rng(seed), batch_size, max_seeds, run_batch)
    return _bundle_batched_result(graph, results, final_chunks, capture_distributions)


def _pool_loop(
    graph: Graph,
    rng: np.random.Generator,
    batch_size: int,
    max_seeds: int | None,
    run_batch: Callable[[list[int]], list[CommunityResult]],
) -> list[CommunityResult]:
    """Algorithm 1's pool loop, batched: draw up to ``batch_size`` seeds per round.

    ``run_batch(round_seeds)`` executes one round and returns its
    :class:`CommunityResult` list in seed order.  This single definition
    serves both execution tiers — the thread tier runs the batch in-process,
    the process tier (:mod:`repro.execution_process`) shards it across the
    worker pool — so the drawn seed sequence (and with it the cross-tier
    identity guarantee) cannot diverge between them.  The draws use a
    boolean membership mask exactly like the sequential pool loop of
    :mod:`repro.core.cdrw`; with ``batch_size=1`` the draw sequence is
    identical to it.
    """
    pool = np.ones(graph.num_vertices, dtype=bool)
    remaining = graph.num_vertices
    results: list[CommunityResult] = []
    while remaining > 0:
        if max_seeds is not None and len(results) >= max_seeds:
            break
        width = min(batch_size, remaining)
        if max_seeds is not None:
            width = min(width, max_seeds - len(results))
        round_seeds: list[int] = []
        for _ in range(width):
            candidates = np.flatnonzero(pool)
            if candidates.size == 0:
                break
            drawn = int(rng.choice(candidates))
            round_seeds.append(drawn)
            pool[drawn] = False
            remaining -= 1
        if not round_seeds:
            break
        for result in run_batch(round_seeds):
            results.append(result)
            remaining -= _remove_detected(pool, result)
    return results


def _bundle_batched_result(
    graph: Graph,
    results: list[CommunityResult],
    final_chunks: list[np.ndarray],
    capture_distributions: bool,
) -> DetectionResult | tuple[DetectionResult, np.ndarray]:
    detection = DetectionResult(
        num_vertices=graph.num_vertices, communities=tuple(results)
    )
    if not capture_distributions:
        return detection
    if final_chunks:
        finals = np.hstack(final_chunks)
    else:
        finals = np.zeros((graph.num_vertices, 0), dtype=np.float64)
    return detection, finals
