"""Configuration of the CDRW algorithm (Algorithm 1 of the paper).

Every tunable named by the paper is exposed here with its paper default:

* the mixing threshold ``1/(2e)`` (Algorithm 1 line 15),
* the candidate-size growth factor ``1 + 1/(8e)`` (line 12),
* the initial candidate size ``R = log n`` (line 6 — the paper assumes every
  community has at least ``log n`` vertices),
* the walk-length budget ``O(log n)`` (line 8), and
* the stopping parameter ``δ`` which the paper sets to the graph conductance
  ``Φ_G`` (line 18, Section III-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Literal

from ..exceptions import AlgorithmError
from ..graphs.graph import Graph
from ..graphs.properties import graph_conductance_estimate
from ..utils import GROWTH_FACTOR, MIXING_THRESHOLD, log_size

__all__ = ["CDRWParameters"]

SizeSchedule = Literal["geometric", "linear"]


@dataclass(frozen=True)
class CDRWParameters:
    """Parameters of the CDRW community detection algorithm.

    Attributes
    ----------
    mixing_threshold:
        The local-mixing acceptance threshold; the sum of the ``|S|`` smallest
        ``x_u`` values must stay below it.  Paper value: ``1/(2e)``.
    growth_factor:
        Multiplicative growth of the candidate mixing-set size.  Paper value:
        ``1 + 1/(8e)``.
    delta:
        Stopping parameter: detection stops when the largest mixing set grows
        by less than a ``(1 + delta)`` factor between consecutive walk
        lengths.  ``None`` means "derive it from the graph" (the paper sets
        ``δ = Φ_G``); see :meth:`resolve_delta`.
    initial_size:
        Initial candidate size ``R``.  ``None`` means ``log n`` (paper value).
    max_walk_length:
        Walk-length budget.  ``None`` means ``walk_length_factor · ⌈ln n⌉``.
    walk_length_factor:
        Multiplier used when ``max_walk_length`` is ``None``.  The paper's
        budget is ``O(log n)``; the default constant 4 comfortably exceeds
        the mixing time of the random graphs studied.
    size_schedule:
        ``"geometric"`` (paper) or ``"linear"`` (exact but slower; used in
        tests to validate the geometric search).
    stop_at_first_failure:
        When ``True`` the candidate-size scan stops at the first size that
        violates the mixing condition (the literal reading of Algorithm 1
        line 12-17).  The default ``False`` scans the whole schedule and keeps
        the largest satisfying size, which is required on dense graphs where
        sizes below the seed's degree never mix (see DESIGN.md §5).
    min_mass:
        Minimum walk probability a candidate set must hold to be accepted.
        ``None`` (default) uses ``1 − 2·mixing_threshold``; Definition 2
        implies a true local mixing set holds mass at least ``1 − ε``, a
        property the localized ``µ'(S)`` proxy does not preserve on its own
        (see DESIGN.md §5).
    min_delta:
        Lower bound applied to the resolved δ so the stopping rule never
        degenerates to "stop only on exactly equal sizes" when the analytic
        conductance is extremely small (e.g. a pure ``G(n, p)`` graph where
        ``Φ`` of the planted partition is 0).
    lazy_walk:
        Use the lazy random walk instead of the simple walk.
    """

    mixing_threshold: float = MIXING_THRESHOLD
    growth_factor: float = GROWTH_FACTOR
    delta: float | None = None
    initial_size: int | None = None
    max_walk_length: int | None = None
    walk_length_factor: int = 4
    size_schedule: SizeSchedule = "geometric"
    stop_at_first_failure: bool = False
    min_mass: float | None = None
    min_delta: float = 0.02
    lazy_walk: bool = False

    def __post_init__(self) -> None:
        if not (0.0 < self.mixing_threshold < 2.0):
            raise AlgorithmError(
                f"mixing_threshold must be in (0, 2), got {self.mixing_threshold}"
            )
        if self.growth_factor <= 1.0:
            raise AlgorithmError(f"growth_factor must exceed 1, got {self.growth_factor}")
        if self.delta is not None and self.delta < 0.0:
            raise AlgorithmError(f"delta must be non-negative, got {self.delta}")
        if self.initial_size is not None and self.initial_size < 1:
            raise AlgorithmError(f"initial_size must be >= 1, got {self.initial_size}")
        if self.max_walk_length is not None and self.max_walk_length < 1:
            raise AlgorithmError(f"max_walk_length must be >= 1, got {self.max_walk_length}")
        if self.walk_length_factor < 1:
            raise AlgorithmError(f"walk_length_factor must be >= 1, got {self.walk_length_factor}")
        if self.size_schedule not in ("geometric", "linear"):
            raise AlgorithmError(f"unknown size_schedule: {self.size_schedule!r}")
        if self.min_mass is not None and not (0.0 <= self.min_mass <= 1.0):
            raise AlgorithmError(f"min_mass must be in [0, 1], got {self.min_mass}")
        if self.min_delta < 0.0:
            raise AlgorithmError(f"min_delta must be non-negative, got {self.min_delta}")

    # ------------------------------------------------------------------
    # Per-graph resolution
    # ------------------------------------------------------------------
    def resolve_initial_size(self, graph: Graph) -> int:
        """Return the initial candidate size ``R`` for ``graph`` (``log n`` default)."""
        if self.initial_size is not None:
            return min(self.initial_size, max(1, graph.num_vertices))
        return min(log_size(graph.num_vertices), max(1, graph.num_vertices))

    def resolve_max_walk_length(self, graph: Graph) -> int:
        """Return the walk-length budget for ``graph`` (``O(log n)`` default)."""
        if self.max_walk_length is not None:
            return self.max_walk_length
        n = max(graph.num_vertices, 2)
        return max(4, self.walk_length_factor * int(math.ceil(math.log(n))))

    def resolve_delta(self, graph: Graph, delta_hint: float | None = None) -> float:
        """Return the stopping parameter δ for ``graph``.

        Resolution order: explicit ``delta`` on the parameters, then the
        caller-provided ``delta_hint`` (e.g. the analytic PPM conductance),
        then a spectral sweep-cut estimate of ``Φ_G``.  The result is clamped
        from below by ``min_delta``.
        """
        if self.delta is not None:
            value = self.delta
        elif delta_hint is not None:
            if delta_hint < 0.0:
                raise AlgorithmError(f"delta_hint must be non-negative, got {delta_hint}")
            value = delta_hint
        else:
            value = graph_conductance_estimate(graph)
        return max(value, self.min_delta)

    def with_overrides(self, **changes: object) -> "CDRWParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
