"""Parallel (multi-seed) CDRW — the extension sketched in the paper's conclusion.

The paper notes that "our algorithm can also be extended to find communities
even faster (by finding communities in parallel), assuming we know an
(estimate) of r".  This module implements that extension:

1. draw ``r`` seed vertices (optionally spread out so that no two seeds are
   within a small hop distance of each other, which makes it likely that the
   seeds land in distinct blocks),
2. run the ``r`` detections simultaneously on one shared batched walk
   (:func:`repro.core.batched.detect_community_batch`): one sparse
   matrix–matrix product and one batched mixing-set search per walk step
   instead of ``r`` independent scalar runs — an ``r``-fold reduction of
   redundant walk work that mirrors the distributed round-complexity saving,
   while each per-seed result stays identical to the scalar
   :func:`~repro.core.cdrw.detect_community`,
3. resolve conflicts: when two detected communities overlap heavily they were
   seeded in the same block, so the duplicates are merged (the earlier seed
   survives); every vertex still claimed by multiple *surviving* communities
   is then assigned to the one whose seed's final walk distribution gives it
   the highest probability (ties favour the earlier survivor; a surviving
   community always keeps its own seed).  The final distributions are already
   available from the shared batch, so resolution costs no extra walk steps,
   and the returned communities are pairwise disjoint.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.graph import Graph
from ..graphs.traversal import bfs_tree
from ..utils import as_rng
from .batched import _detect_community_batch_impl
from .parameters import CDRWParameters
from .result import CommunityResult, DetectionResult

if TYPE_CHECKING:
    import scipy.sparse as sp

    from .mixing_set import BatchedMixingSetSearch

__all__ = ["select_spread_seeds", "detect_communities_parallel"]


def select_spread_seeds(
    graph: Graph,
    count: int,
    min_distance: int = 2,
    seed: int | np.random.Generator | None = None,
    max_attempts: int | None = None,
) -> list[int]:
    """Pick ``count`` seed vertices pairwise at hop distance ≥ ``min_distance``.

    Seeds are drawn uniformly from the vertices that still satisfy the
    spacing constraint (every draw is productive — no rejection sampling
    burning attempts on already-blocked vertices), each draw blocking the
    BFS ball around its pick, until ``count`` seeds are chosen or no valid
    vertex remains; only then is the constraint relaxed to arbitrary
    unchosen vertices.  Spacing violations therefore happen only when no
    valid spread seed remains.  ``max_attempts`` is kept for backward
    compatibility but no longer affects the outcome: every draw is
    productive, so capping the draw phase merely handed the identical
    remaining draws to what used to be the fallback loop.

    At ``min_distance=0`` no draw blocks any other vertex, so the whole
    selection collapses to a single uniform draw without replacement —
    one ``rng.choice`` call instead of ``count`` full rescans of the
    availability mask (the former path was O(count·n)).  The RNG draw
    sequence of this case differs from the old one-at-a-time loop; the
    pinned expectations in ``tests/test_parallel_detection.py`` were
    refreshed with it deliberately.
    """
    if count < 1:
        raise AlgorithmError(f"seed count must be >= 1, got {count}")
    if count > graph.num_vertices:
        raise AlgorithmError(
            f"cannot pick {count} distinct seeds from {graph.num_vertices} vertices"
        )
    rng = as_rng(seed)
    if min_distance <= 0:
        picks = rng.choice(graph.num_vertices, size=count, replace=False)
        return [int(v) for v in picks]

    chosen: list[int] = []
    available = np.ones(graph.num_vertices, dtype=bool)
    while len(chosen) < count:
        candidates = np.flatnonzero(available)
        if candidates.size == 0:
            break
        candidate = int(rng.choice(candidates))
        chosen.append(candidate)
        # The depth-(min_distance-1) ball includes the candidate itself
        # (depth 0), so this blocks the pick and its too-close neighbours.
        nearby = bfs_tree(graph, candidate, max_depth=min_distance - 1)
        available[nearby.reached()] = False
    if len(chosen) < count:
        # Only now relax the constraint: no valid spread seed remains.
        chosen_set = set(chosen)
        remaining = [v for v in range(graph.num_vertices) if v not in chosen_set]
        extra = rng.choice(remaining, size=count - len(chosen), replace=False)
        chosen.extend(int(v) for v in extra)
    return chosen


def detect_communities_parallel(
    graph: Graph,
    num_communities: int,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    seed: int | np.random.Generator | None = None,
    overlap_merge_threshold: float = 0.5,
    seed_min_distance: int = 2,
    workers: int | None = None,
) -> DetectionResult:
    """Detect ``num_communities`` communities from simultaneously started seeds.

    All seeds share one batched walk (one SpMM + one batched mixing-set
    search per step), so the wall-clock cost is close to a single detection
    rather than ``r`` sequential ones; each raw per-seed result is identical
    to what :func:`~repro.core.cdrw.detect_community` returns for that seed.
    After duplicate-merge, overlaps between surviving communities are
    resolved with the final walk distributions (see the module docstring,
    step 3), so the returned communities are pairwise disjoint.

    Parameters
    ----------
    num_communities:
        The (estimate of the) number of blocks ``r``.
    overlap_merge_threshold:
        Two detected communities whose Jaccard overlap exceeds this value are
        considered duplicates of the same block and merged (the one detected
        from the earlier seed survives).
    seed_min_distance:
        Minimum pairwise hop distance between seeds (see
        :func:`select_spread_seeds`).
    workers:
        Thread count for the shared batched kernels (see
        :func:`~repro.core.batched.detect_community_batch`); the detected
        communities are identical for every value.
    """
    from ..api import RunConfig, detect

    report = detect(
        graph,
        backend="parallel",
        params=parameters,
        delta_hint=delta_hint,
        config=RunConfig(
            seed=seed,
            num_communities=num_communities,
            overlap_merge_threshold=overlap_merge_threshold,
            seed_min_distance=seed_min_distance,
            workers=workers,
        ),
    )
    return report.detection


def _detect_communities_parallel_impl(
    graph: Graph,
    num_communities: int,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    seed: int | np.random.Generator | None = None,
    overlap_merge_threshold: float = 0.5,
    seed_min_distance: int = 2,
    workers: int | None = None,
    capture_history: bool = True,
    walk_operator: "sp.csr_matrix | None" = None,
    search: "BatchedMixingSetSearch | None" = None,
) -> DetectionResult:
    """The spread-seed shared-walk detection the ``"parallel"`` backend executes.

    ``capture_history`` / ``walk_operator`` / ``search`` are forwarded to the
    shared batch (see :func:`~repro.core.batched._detect_community_batch_impl`);
    none of them changes the detected communities.
    """
    if num_communities < 1:
        raise AlgorithmError(f"num_communities must be >= 1, got {num_communities}")
    if not (0.0 < overlap_merge_threshold <= 1.0):
        raise AlgorithmError(
            f"overlap_merge_threshold must be in (0, 1], got {overlap_merge_threshold}"
        )
    parameters = parameters or CDRWParameters()
    rng = as_rng(seed)

    seeds = select_spread_seeds(
        graph, num_communities, min_distance=seed_min_distance, seed=rng
    )
    raw_results, distributions = _detect_community_batch_impl(
        graph,
        seeds,
        parameters,
        delta_hint,
        capture_distributions=True,
        workers=workers,
        capture_history=capture_history,
        walk_operator=walk_operator,
        search=search,
    )
    resolved = _merge_and_resolve(raw_results, distributions, overlap_merge_threshold)
    return DetectionResult(num_vertices=graph.num_vertices, communities=tuple(resolved))


def _merge_and_resolve(
    raw_results: list[CommunityResult],
    distributions: np.ndarray,
    overlap_merge_threshold: float,
) -> list[CommunityResult]:
    """Steps 2-3 of the parallel driver: duplicate merge, then overlap resolution.

    Shared by the thread and process execution tiers — both hand the raw
    per-seed batch results (identical by the batch guarantee) to this one
    function, so the tiers cannot diverge in how conflicts are resolved.
    """
    # Step 2 aftermath: drop duplicates of already-kept blocks (earlier seed
    # survives), remembering each survivor's index into the batch.
    survivors: list[int] = []
    for index, result in enumerate(raw_results):
        duplicate = any(
            _jaccard(result.community, raw_results[kept].community)
            >= overlap_merge_threshold
            for kept in survivors
        )
        if not duplicate:
            survivors.append(index)

    return _resolve_overlaps(raw_results, survivors, distributions)


def _resolve_overlaps(
    raw_results: list[CommunityResult],
    survivors: list[int],
    distributions: np.ndarray,
) -> list[CommunityResult]:
    """Assign every multiply-claimed vertex to exactly one surviving community.

    A vertex claimed by several survivors goes to the community whose seed's
    final walk distribution gives it the highest probability; ties go to the
    earlier survivor (detection order).  A survivor always keeps its own seed
    vertex regardless of probabilities — the detected community must contain
    its seed by definition.  The result is pairwise disjoint.
    """
    claimants: dict[int, list[int]] = {}
    for position, index in enumerate(survivors):
        for vertex in raw_results[index].community:
            claimants.setdefault(vertex, []).append(position)
    own_seed = {raw_results[index].seed: position for position, index in enumerate(survivors)}

    members = [set(raw_results[index].community) for index in survivors]
    for vertex, positions in claimants.items():
        if len(positions) < 2:
            continue
        if own_seed.get(vertex) in positions:
            winner = own_seed[vertex]
        else:
            winner = max(
                positions,
                key=lambda position: (
                    distributions[vertex, survivors[position]],
                    -position,
                ),
            )
        for position in positions:
            if position != winner:
                members[position].discard(vertex)

    resolved: list[CommunityResult] = []
    for position, index in enumerate(survivors):
        original = raw_results[index]
        community = frozenset(members[position])
        if community == original.community:
            resolved.append(original)
        else:
            resolved.append(replace(original, community=community))
    return resolved


def _jaccard(a: frozenset[int], b: frozenset[int]) -> float:
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 0.0
    return len(a & b) / union
