"""Parallel (multi-seed) CDRW — the extension sketched in the paper's conclusion.

The paper notes that "our algorithm can also be extended to find communities
even faster (by finding communities in parallel), assuming we know an
(estimate) of r".  This module implements that extension:

1. draw ``r`` seed vertices (optionally spread out so that no two seeds are
   within a small hop distance of each other, which makes it likely that the
   seeds land in distinct blocks),
2. run the single-seed detection for every seed — conceptually in parallel;
   the walks are independent so the distributed round complexity is that of a
   single detection, an ``r``-fold saving over the sequential pool loop —
3. resolve conflicts: when two detected communities overlap heavily they were
   seeded in the same block, so the duplicates are merged; vertices claimed by
   multiple surviving communities go to the one whose seed is closest in walk
   probability.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.graph import Graph
from ..graphs.traversal import bfs_tree
from ..utils import as_rng
from .cdrw import detect_community
from .parameters import CDRWParameters
from .result import CommunityResult, DetectionResult

__all__ = ["select_spread_seeds", "detect_communities_parallel"]


def select_spread_seeds(
    graph: Graph,
    count: int,
    min_distance: int = 2,
    seed: int | np.random.Generator | None = None,
    max_attempts: int | None = None,
) -> list[int]:
    """Pick ``count`` seed vertices pairwise at hop distance ≥ ``min_distance``.

    Falls back to plain random seeds when the spacing constraint cannot be
    met (e.g. very dense graphs where everything is within 2 hops).
    """
    if count < 1:
        raise AlgorithmError(f"seed count must be >= 1, got {count}")
    if count > graph.num_vertices:
        raise AlgorithmError(
            f"cannot pick {count} distinct seeds from {graph.num_vertices} vertices"
        )
    rng = as_rng(seed)
    if max_attempts is None:
        max_attempts = 20 * count

    chosen: list[int] = []
    blocked: set[int] = set()
    attempts = 0
    while len(chosen) < count and attempts < max_attempts:
        attempts += 1
        candidate = int(rng.integers(graph.num_vertices))
        if candidate in blocked:
            continue
        chosen.append(candidate)
        if min_distance > 0:
            nearby = bfs_tree(graph, candidate, max_depth=min_distance - 1)
            blocked.update(int(v) for v in nearby.reached())
        else:
            blocked.add(candidate)
    if len(chosen) < count:
        remaining = [v for v in range(graph.num_vertices) if v not in set(chosen)]
        extra = rng.choice(remaining, size=count - len(chosen), replace=False)
        chosen.extend(int(v) for v in extra)
    return chosen


def detect_communities_parallel(
    graph: Graph,
    num_communities: int,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    seed: int | np.random.Generator | None = None,
    overlap_merge_threshold: float = 0.5,
    seed_min_distance: int = 2,
) -> DetectionResult:
    """Detect ``num_communities`` communities from simultaneously started seeds.

    Parameters
    ----------
    num_communities:
        The (estimate of the) number of blocks ``r``.
    overlap_merge_threshold:
        Two detected communities whose Jaccard overlap exceeds this value are
        considered duplicates of the same block and merged (the one detected
        from the earlier seed survives).
    seed_min_distance:
        Minimum pairwise hop distance between seeds (see
        :func:`select_spread_seeds`).
    """
    if num_communities < 1:
        raise AlgorithmError(f"num_communities must be >= 1, got {num_communities}")
    if not (0.0 < overlap_merge_threshold <= 1.0):
        raise AlgorithmError(
            f"overlap_merge_threshold must be in (0, 1], got {overlap_merge_threshold}"
        )
    parameters = parameters or CDRWParameters()
    rng = as_rng(seed)

    seeds = select_spread_seeds(
        graph, num_communities, min_distance=seed_min_distance, seed=rng
    )
    raw_results = [
        detect_community(graph, s, parameters, delta_hint=delta_hint) for s in seeds
    ]

    merged: list[CommunityResult] = []
    for result in raw_results:
        duplicate = False
        for kept in merged:
            if _jaccard(result.community, kept.community) >= overlap_merge_threshold:
                duplicate = True
                break
        if not duplicate:
            merged.append(result)
    return DetectionResult(num_vertices=graph.num_vertices, communities=tuple(merged))


def _jaccard(a: frozenset[int], b: frozenset[int]) -> float:
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 0.0
    return len(a & b) / union
