"""CDRW — Community Detection by Random Walks (Algorithm 1 of the paper).

Two entry points are provided:

* :func:`detect_community` finds the community containing one seed vertex
  (the inner body of Algorithm 1, lines 5-20), and
* :func:`detect_communities` runs the full pool loop: repeatedly pick a random
  seed from the pool of not-yet-assigned vertices, detect its community, and
  remove the detected vertices from the pool (lines 1-4 and 21-23).

This module is the *centralized executor*: it performs exactly the arithmetic
the CONGEST node programs perform (the distribution update of lines 9-11, the
``x_u`` ranking of lines 12-17 and the growth test of line 18) without paying
the cost of simulating individual messages, which keeps the accuracy
experiments of Figures 2-4 fast.  The message-level implementations live in
:mod:`repro.congest.cdrw_congest` and :mod:`repro.kmachine.cdrw_kmachine`;
equivalence on small graphs is covered by integration tests.

For many seeds at once, :mod:`repro.core.batched` runs several detections on
one shared batched walk (one sparse matrix–matrix product per step) and
produces results identical to the entry points here.

Both public functions are thin shims over the ``"scalar"`` backend of the
unified detection engine (:mod:`repro.api`); the implementations live in the
module-private ``_impl`` functions the registry calls.  The shims' outputs
are identical to the pre-registry behaviour — same RNG draw sequence, same
communities (asserted by ``tests/test_api.py``).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.graph import Graph
from ..randomwalk.distribution import WalkDistribution
from ..utils import as_rng
from .mixing_set import LargestMixingSet, MixingSetSearch
from .parameters import CDRWParameters
from .result import CommunityResult, DetectionResult
from .stopping import GrowthStoppingRule

__all__ = ["detect_community", "detect_communities"]


def detect_community(
    graph: Graph,
    seed_vertex: int,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
) -> CommunityResult:
    """Detect the community containing ``seed_vertex``.

    Routes through the ``"scalar"`` backend of :mod:`repro.api` with an
    explicit one-seed list; the output is identical to the pre-registry
    implementation.

    Parameters
    ----------
    graph:
        The input graph.
    seed_vertex:
        The seed ``s`` whose community is to be found.
    parameters:
        Algorithm parameters; defaults to the paper's values.
    delta_hint:
        Optional externally-known conductance ``Φ_G`` used for the stopping
        parameter δ when ``parameters.delta`` is not set.  The paper assumes
        ``Φ_G`` is given as input or computed by a separate distributed
        algorithm; experiments pass the analytic PPM conductance here.

    Returns
    -------
    CommunityResult
        The detected community together with the per-step trace.
    """
    from ..api import RunConfig, detect

    report = detect(
        graph,
        backend="scalar",
        params=parameters,
        delta_hint=delta_hint,
        config=RunConfig(seeds=(seed_vertex,)),
    )
    return report.detection.communities[0]


def _detect_community_impl(
    graph: Graph,
    seed_vertex: int,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    *,
    capture_history: bool = True,
) -> CommunityResult:
    """The single-seed detection the ``"scalar"`` backend executes.

    ``capture_history=False`` skips accumulating the per-step
    :class:`LargestMixingSet` trace entirely (the result's ``history`` is
    empty); the detected community, walk length, stop reason and δ are
    unchanged — the stopping rule consumes each step's mixing set directly,
    never the accumulated list.
    """
    if seed_vertex not in graph:
        raise AlgorithmError(f"seed vertex {seed_vertex} is not a vertex of {graph!r}")
    if graph.num_edges == 0:
        # An isolated seed trivially forms its own community.
        return CommunityResult(
            seed=seed_vertex,
            community=frozenset({seed_vertex}),
            walk_length=0,
            history=(),
            stop_reason="graph has no edges",
            delta=0.0,
        )
    parameters = parameters or CDRWParameters()

    delta = parameters.resolve_delta(graph, delta_hint)
    initial_size = parameters.resolve_initial_size(graph)
    max_walk_length = parameters.resolve_max_walk_length(graph)

    search = MixingSetSearch(
        graph,
        initial_size=initial_size,
        mixing_threshold=parameters.mixing_threshold,
        growth_factor=parameters.growth_factor,
        schedule=parameters.size_schedule,
        stop_at_first_failure=parameters.stop_at_first_failure,
        min_mass=parameters.min_mass,
    )
    stopping = GrowthStoppingRule(delta=delta)
    walk = WalkDistribution(graph, seed_vertex, lazy=parameters.lazy_walk)

    history: list[LargestMixingSet] = []
    last_found: LargestMixingSet | None = None
    stop_reason = "walk length budget exhausted"
    stopped_at = max_walk_length

    for length in range(1, max_walk_length + 1):
        walk.step()
        current = search.largest_mixing_set(walk.probabilities(), length)
        if capture_history:
            history.append(current)
        if current.found:
            last_found = current
        decision = stopping.observe(current)
        if decision.should_stop and decision.community is not None:
            community_set = decision.community
            stop_reason = decision.reason
            stopped_at = length
            return CommunityResult(
                seed=seed_vertex,
                community=_ensure_seed(community_set.members, seed_vertex),
                walk_length=stopped_at,
                history=tuple(history),
                stop_reason=stop_reason,
                delta=delta,
            )

    # Budget exhausted without triggering the growth rule (e.g. very small
    # graphs or overly tight budgets): report the last mixing set found, or
    # the seed alone if none was ever found.
    if last_found is not None:
        members = _ensure_seed(last_found.members, seed_vertex)
    else:
        members = frozenset({seed_vertex})
        stop_reason = "no mixing set found within the walk budget"
    return CommunityResult(
        seed=seed_vertex,
        community=members,
        walk_length=stopped_at,
        history=tuple(history),
        stop_reason=stop_reason,
        delta=delta,
    )


def detect_communities(
    graph: Graph,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    seed: int | np.random.Generator | None = None,
    max_seeds: int | None = None,
) -> DetectionResult:
    """Detect all communities of ``graph`` with the pool loop of Algorithm 1.

    Routes through the ``"scalar"`` backend of :mod:`repro.api`; the RNG
    draw sequence and every detected community are identical to the
    pre-registry implementation.

    Parameters
    ----------
    seed:
        Random seed (or generator) controlling the order in which seed
        vertices are drawn from the pool.
    max_seeds:
        Optional cap on the number of seeds processed, useful when only the
        dominant communities are of interest; ``None`` runs until the pool is
        empty (the paper's behaviour).

    Returns
    -------
    DetectionResult
        One :class:`CommunityResult` per processed seed.  Detected communities
        may overlap (each detection sees the whole graph); only the seed pool
        shrinks, exactly as in Algorithm 1.
    """
    from ..api import RunConfig, detect

    report = detect(
        graph,
        backend="scalar",
        params=parameters,
        delta_hint=delta_hint,
        config=RunConfig(seed=seed, max_seeds=max_seeds),
    )
    return report.detection


def _detect_communities_impl(
    graph: Graph,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    seed: int | np.random.Generator | None = None,
    max_seeds: int | None = None,
    *,
    capture_history: bool = True,
) -> DetectionResult:
    """The pool loop the ``"scalar"`` backend executes."""
    parameters = parameters or CDRWParameters()
    rng = as_rng(seed)

    # The pool of not-yet-assigned vertices is a boolean membership array:
    # drawing a seed is one O(n) flatnonzero instead of the former
    # O(n log n) `sorted(set)` per draw.  `np.flatnonzero` yields candidates
    # in ascending order, exactly like `sorted(pool)` did, so the RNG draw
    # sequence (and therefore every detected community) is unchanged — this
    # is regression-tested against a recorded seed order.
    pool = np.ones(graph.num_vertices, dtype=bool)
    remaining = graph.num_vertices
    results: list[CommunityResult] = []
    while remaining > 0:
        if max_seeds is not None and len(results) >= max_seeds:
            break
        seed_vertex = int(rng.choice(np.flatnonzero(pool)))
        result = _detect_community_impl(
            graph,
            seed_vertex,
            parameters,
            delta_hint=delta_hint,
            capture_history=capture_history,
        )
        results.append(result)
        remaining -= _remove_detected(pool, result)
    return DetectionResult(num_vertices=graph.num_vertices, communities=tuple(results))


def _remove_detected(pool: np.ndarray, result: CommunityResult) -> int:
    """Clear a detected community (and always its seed) from the pool mask.

    Returns the number of vertices actually removed.  Shared by the
    sequential and batched pool drivers so their bookkeeping cannot diverge —
    the batch_size=1 output-identity guarantee depends on it.
    """
    detected = result.community if result.community else frozenset({result.seed})
    removal = np.fromiter(detected, dtype=np.int64, count=len(detected))
    removed = int(pool[removal].sum())
    pool[removal] = False
    if pool[result.seed]:
        pool[result.seed] = False
        removed += 1
    return removed


def _ensure_seed(members: frozenset[int], seed_vertex: int) -> frozenset[int]:
    """Return ``members`` with the seed vertex included.

    The localized ranking can, in degenerate cases, exclude the seed itself
    (its probability stays above the per-vertex target while mass has spread);
    the detected community must still contain the seed by definition.
    """
    if seed_vertex in members:
        return members
    return frozenset(members | {seed_vertex})
