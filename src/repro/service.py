"""Concurrent detection front end: admission queue, wave coalescing, backpressure.

:class:`~repro.session.DetectionSession` made the engine resident (one
broadcast, persistent pool, cached operators) but serves **one call at a
time** by contract.  :class:`DetectionService` is the concurrent front end
the ROADMAP names on top of it — the "millions of users querying one big
social graph" shape:

* **Admission queue + dispatcher.**  Clients from any thread (or any
  asyncio task) submit single-seed requests; a single dispatcher thread
  drains the queue into :meth:`DetectionSession.detect_batch` waves.  The
  session never sees concurrency, so its caches stay race-free by
  construction.
* **Wave coalescing.**  Requests that are pending together run together:
  one batched shard wave answers up to ``max_wave`` distinct seeds, and
  duplicate seeds within a wave are folded onto one slot with the answer
  fanned out to every requester.  Because per-seed results are independent
  of batch composition (the PR 1/2 kernel contracts),
  :func:`repro.api.split_batched_report` slices the wave report into
  per-request reports whose payloads are **bit-identical** to one-shot
  ``detect()`` calls (``tests/test_service.py`` pins this on both
  executors at workers ∈ {1, 2, 4}).
* **Backpressure.**  The queue is bounded (``max_pending``); a full queue
  rejects new requests with :class:`~repro.exceptions.ServiceOverloadedError`
  instead of letting latency grow without bound.
* **Deadlines.**  A request may carry a deadline (seconds from admission);
  requests whose deadline has passed when their wave is formed are failed
  with :class:`~repro.exceptions.DeadlineExpiredError` and never reach the
  kernels.
* **Graceful shutdown.**  :meth:`DetectionService.close` stops admissions
  and, by default, drains every pending request before releasing the
  session; ``close(drain=False)`` fails pending requests with
  :class:`~repro.exceptions.ServiceClosedError` instead.

Two client surfaces share the same queue:

* synchronous — :meth:`submit` returns a
  :class:`concurrent.futures.Future`; call ``.result(timeout)`` from any
  thread;
* asynchronous — ``await service.detect(seed)`` wraps the same future
  with :func:`asyncio.wrap_future`, so coroutines never block the event
  loop (the REP108 lint rule enforces this discipline for the whole
  service package).

Every reply's metadata carries the service observability surface:
per-wave facts (``service_wave``, ``service_wave_size``,
``service_queue_wait_seconds``) plus a ``service_metrics`` snapshot with
the wave-size histogram, queue-wait totals, coalescing ratio and
rejected/expired counts.  :mod:`repro.service_net` puts this service
behind a JSON-lines-over-TCP socket (``repro serve``).

Usage::

    with DetectionService(graph, config=RunConfig(workers=4)) as service:
        future = service.submit(seed)          # from any thread
        report = future.result(timeout=60)
        report = await service.detect(seed)    # from any event loop
"""

from __future__ import annotations

import asyncio
import operator
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, replace

from .api import RunConfig, RunReport, split_batched_report
from .core.parameters import CDRWParameters
from .exceptions import (
    AlgorithmError,
    BackendError,
    DeadlineExpiredError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from .graphs.graph import Graph
from .session import DetectionSession

__all__ = ["DetectionService"]


@dataclass
class _Admitted:
    """One admitted request, queued until its wave forms."""

    seed: int
    admitted_at: float
    deadline_at: float | None
    future: "Future[RunReport]"


class DetectionService:
    """Serve concurrent single-seed detections by coalescing them into waves.

    Parameters
    ----------
    graph:
        Build and own a fresh :class:`~repro.session.DetectionSession` on
        this graph (closed with the service).  Mutually exclusive with
        ``session``.
    session:
        Serve an existing session instead (left open when the service
        closes; the caller keeps ownership).  The session's own ``config``
        / ``params`` defaults drive every wave.
    config, params, delta_hint:
        Forwarded to the owned session when ``graph`` is given.
    max_pending:
        Admission-queue bound; a full queue rejects with
        :class:`~repro.exceptions.ServiceOverloadedError`.
    max_wave:
        Largest number of distinct seeds coalesced into one
        ``detect_batch`` wave.
    start:
        Start the dispatcher thread immediately (default).  ``start=False``
        leaves the queue accumulating until :meth:`start` — deterministic
        full coalescing, used by tests and benchmarks.
    """

    def __init__(
        self,
        graph: Graph | None = None,
        *,
        session: DetectionSession | None = None,
        config: RunConfig | None = None,
        params: CDRWParameters | None = None,
        delta_hint: float | None = None,
        max_pending: int = 1024,
        max_wave: int = 64,
        start: bool = True,
    ) -> None:
        if (graph is None) == (session is None):
            raise BackendError(
                "DetectionService needs exactly one of graph= (own a fresh "
                "session) or session= (serve an existing one)"
            )
        if session is not None and (
            config is not None or params is not None or delta_hint is not None
        ):
            raise BackendError(
                "config/params/delta_hint belong to the session: set them "
                "where the DetectionSession is constructed"
            )
        if max_pending < 1:
            raise BackendError(f"max_pending must be >= 1, got {max_pending}")
        if max_wave < 1:
            raise BackendError(f"max_wave must be >= 1, got {max_wave}")
        if session is None:
            assert graph is not None
            session = DetectionSession(
                graph, config=config, params=params, delta_hint=delta_hint
            )
            self._owns_session = True
        else:
            self._owns_session = False
        self._session = session
        self.max_pending = int(max_pending)
        self.max_wave = int(max_wave)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queue: deque[_Admitted] = deque()  # repro: guarded-by(_lock)
        self._dispatcher: threading.Thread | None = None  # repro: guarded-by(_lock)
        self._closing = False  # repro: guarded-by(_lock) -- no new admissions
        self._stop = False  # repro: guarded-by(_lock) -- exit once drained
        self._closed = False  # repro: guarded-by(_lock)
        # Observability counters (all guarded by self._lock).
        self._admitted = 0
        self._served = 0
        self._rejected = 0
        self._expired = 0
        self._cancelled = 0
        self._abandoned = 0
        self._waves = 0
        self._wave_failures = 0
        self._wave_sizes: dict[int, int] = {}
        self._wave_requests_max = 0
        self._duplicates = 0
        self._queue_wait_total = 0.0
        self._queue_wait_max = 0.0
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    @property
    def session(self) -> DetectionSession:
        """The resident session the dispatcher serves waves on."""
        return self._session

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def start(self) -> "DetectionService":
        """Start the dispatcher thread (idempotent)."""
        with self._wake:
            if self._closing or self._closed:
                raise ServiceClosedError("the detection service is closed")
            if self._dispatcher is None:
                self._dispatcher = self._spawn_dispatcher()
        return self

    def submit(
        self, seed: int, *, deadline: float | None = None
    ) -> "Future[RunReport]":
        """Admit one single-seed request; thread-safe.

        Returns a :class:`concurrent.futures.Future` resolving to the
        per-request :class:`~repro.api.RunReport` (or raising the typed
        service error).  ``deadline`` is a budget in seconds from
        admission: a request still queued when the budget runs out is
        failed with :class:`~repro.exceptions.DeadlineExpiredError` at
        wave formation instead of occupying a wave slot.

        The seed is validated synchronously — a bad request never reaches
        the queue, so it cannot poison a wave for well-formed neighbours.
        """
        seed_vertex = self._validate_seed(seed)
        deadline_at: float | None = None
        now = time.monotonic()
        if deadline is not None:
            deadline_at = now + float(deadline)
        with self._wake:
            if self._closing or self._closed:
                raise ServiceClosedError(
                    "the detection service is closed to new requests"
                )
            if len(self._queue) >= self.max_pending:
                self._rejected += 1
                raise ServiceOverloadedError(
                    f"admission queue is full ({self.max_pending} requests "
                    f"pending); retry with backoff"
                )
            # The reply future is only constructed once admission is
            # certain: a rejection path must never strand a pending future
            # (REP204 — a caller holding one would wait forever).
            future: "Future[RunReport]" = Future()
            self._queue.append(
                _Admitted(
                    seed=seed_vertex,
                    admitted_at=now,
                    deadline_at=deadline_at,
                    future=future,
                )
            )
            self._admitted += 1
            self._wake.notify()
        return future

    async def detect(self, seed: int, *, deadline: float | None = None) -> RunReport:
        """Asynchronous client: await one single-seed detection.

        Admission (and its typed rejections) happens synchronously; the
        wait for the wave is a plain await on the wrapped future, so the
        event loop never blocks on detection work.
        """
        return await asyncio.wrap_future(self.submit(seed, deadline=deadline))

    def metrics(self) -> dict[str, object]:
        """JSON-safe snapshot of the service counters."""
        with self._lock:
            return self._metrics_locked()

    def close(self, drain: bool = True) -> None:
        """Stop admissions and shut the dispatcher down.

        ``drain=True`` (default) serves every already-admitted request —
        in-flight waves finish and the queue empties — before the
        dispatcher exits.  ``drain=False`` fails pending requests with
        :class:`~repro.exceptions.ServiceClosedError` immediately.  An
        owned session is closed afterwards; an adopted one is left open.
        """
        abandoned: list[_Admitted] = []
        with self._wake:
            if self._closed:
                return
            self._closing = True
            if drain and self._queue and self._dispatcher is None:
                # Never-started service (start=False): drain needs a
                # dispatcher, so bring one up just to empty the queue.
                self._dispatcher = self._spawn_dispatcher()
            if not drain:
                abandoned = list(self._queue)
                self._queue.clear()
                self._abandoned += len(abandoned)
            self._stop = True
            dispatcher = self._dispatcher
            self._wake.notify_all()
        for request in abandoned:
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(
                    ServiceClosedError(
                        "the detection service was closed before this "
                        "request could run"
                    )
                )
        if dispatcher is not None:
            dispatcher.join()
        with self._wake:
            self._closed = True
        if self._owns_session:
            self._session.close()

    def __enter__(self) -> "DetectionService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            state = "closed" if self._closed else "open"
            pending = len(self._queue)
            waves = self._waves
        return (
            f"DetectionService({self._session.graph!r}, pending={pending}, "
            f"waves={waves}, {state})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validate_seed(self, seed: int) -> int:
        try:
            seed_vertex = operator.index(seed)
        except TypeError:
            raise BackendError(
                f"seed vertex must be an integer, got {type(seed).__name__}"
            ) from None
        if not 0 <= seed_vertex < self._session.graph.num_vertices:
            raise AlgorithmError(
                f"seed vertex {seed_vertex} is not a vertex of "
                f"{self._session.graph!r}"
            )
        return seed_vertex

    def _spawn_dispatcher(self) -> threading.Thread:
        dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatcher", daemon=True
        )
        dispatcher.start()
        return dispatcher

    def _dispatch_loop(self) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._stop:
                    self._wake.wait()
                if not self._queue:
                    return  # stop requested and fully drained
                width = min(len(self._queue), self.max_wave)
                wave = [self._queue.popleft() for _ in range(width)]
            self._run_wave(wave)

    def _run_wave(self, requests: list[_Admitted]) -> None:
        formed_at = time.monotonic()
        live: list[_Admitted] = []
        expired: list[_Admitted] = []
        cancelled = 0
        for request in requests:
            if not request.future.set_running_or_notify_cancel():
                cancelled += 1  # client cancelled before wave formation
                continue
            if request.deadline_at is not None and formed_at >= request.deadline_at:
                expired.append(request)
                continue
            live.append(request)
        for request in expired:
            waited = formed_at - request.admitted_at
            request.future.set_exception(
                DeadlineExpiredError(
                    f"request for seed {request.seed} expired in the "
                    f"admission queue after {waited:.3f} s, before wave "
                    f"formation"
                )
            )
        if not live:
            with self._lock:
                self._expired += len(expired)
                self._cancelled += cancelled
            return
        # Duplicate seeds occupy one wave slot; the answer fans out.
        unique_seeds: list[int] = []
        positions: dict[int, int] = {}
        for request in live:
            if request.seed not in positions:
                positions[request.seed] = len(unique_seeds)
                unique_seeds.append(request.seed)
        wave_started = time.monotonic()
        try:
            wave_report = self._session.detect_batch(tuple(unique_seeds))
            singles = split_batched_report(wave_report)
        except Exception as error:  # typed repro errors and anything else
            for request in live:
                request.future.set_exception(error)
            with self._lock:
                self._expired += len(expired)
                self._cancelled += cancelled
                self._wave_failures += 1
            return
        wave_seconds = time.monotonic() - wave_started
        with self._lock:
            self._waves += 1
            wave_index = self._waves
            self._served += len(live)
            self._duplicates += len(live) - len(unique_seeds)
            self._wave_sizes[len(unique_seeds)] = (
                self._wave_sizes.get(len(unique_seeds), 0) + 1
            )
            self._wave_requests_max = max(self._wave_requests_max, len(live))
            self._expired += len(expired)
            self._cancelled += cancelled
            for request in live:
                waited = formed_at - request.admitted_at
                self._queue_wait_total += waited
                self._queue_wait_max = max(self._queue_wait_max, waited)
            snapshot = self._metrics_locked()
        for request in live:
            single = singles[positions[request.seed]]
            waited = formed_at - request.admitted_at
            timings = dict(single.timings)
            timings["service_queue_wait_seconds"] = waited
            timings["service_wave_seconds"] = wave_seconds
            metadata = dict(single.metadata)
            metadata.update(
                service_wave=wave_index,
                service_wave_size=len(unique_seeds),
                service_wave_requests=len(live),
                service_coalesced=len(live) > 1,
                service_metrics=dict(snapshot),
            )
            request.future.set_result(
                replace(single, timings=timings, metadata=metadata)
            )

    def _metrics_locked(self) -> dict[str, object]:  # repro: requires(_lock)
        served = self._served
        waves = self._waves
        return {
            "requests_admitted": self._admitted,
            "requests_served": served,
            "requests_rejected": self._rejected,
            "requests_expired": self._expired,
            "requests_cancelled": self._cancelled,
            "requests_abandoned": self._abandoned,
            "waves": waves,
            "wave_failures": self._wave_failures,
            "wave_sizes": {
                str(size): count for size, count in sorted(self._wave_sizes.items())
            },
            "wave_requests_max": self._wave_requests_max,
            "duplicate_requests_coalesced": self._duplicates,
            "coalescing_ratio": (served / waves) if waves else 0.0,
            "queue_wait_seconds_total": self._queue_wait_total,
            "queue_wait_seconds_max": self._queue_wait_max,
            "pending": len(self._queue),
            "max_pending": self.max_pending,
            "max_wave": self.max_wave,
        }
