"""Genuinely sharded execution tier: each worker holds one vertex partition.

The process tier (:mod:`repro.execution_process`) parallelizes over *seeds*:
every worker attaches the **whole** graph and runs complete detections.
That mirrors the paper's experiments but not its model — in the k-machine
model (Section II) no machine ever holds more than its random vertex
partition of the graph.  This module makes that real: the ``"sharded"``
backend partitions the vertices with the *same*
:class:`~repro.kmachine.partition.RandomVertexPartition` the k-machine
simulator uses, gives each worker process **only its partition's rows of
the walk operator**, and advances the batched walk by exchanging boundary
probability mass between shards every step — the dense-flooding round of
Algorithm 1, executed rather than simulated.

Bit-identity by construction
----------------------------
The detection driver — δ resolution, stopping rules, pool draws, the
retain schedule — is literally
:func:`repro.core.batched._detect_communities_batched_impl`, entered
through its ``walk_factory`` hook; only the walk's step is swapped out.
The step itself is exact, not approximately parallel: scipy's CSR SpMM
accumulates each output row over that row's nonzeros **in storage order**,
independently of every other row.  Row-slicing the operator keeps each
row's nonzeros in the same order, and compacting the column space with a
*monotone* remap (``np.searchsorted`` over the sorted needed-vertex list)
permutes neither the nonzeros nor the operand values — so every output
float of ``shard_op @ gathered_input`` equals the corresponding rows of the
serial ``op @ input`` bit for bit, at any shard count.
``tests/test_sharded.py`` pins detections, cost totals and report payloads
against the serial ``batched`` backend at 1, 2 and 4 shards.

Exchange accounting, reconciled with the simulator
--------------------------------------------------
Each step, shard ``s`` needs the current probability rows of the vertices
its operator columns touch (``need_s``); the values not owned by ``s`` are
the **boundary mass** that would cross the network in a real deployment.
The pool counts them exactly — per step, per active walk column, in
float64 bytes — and computes, once, what
:class:`~repro.kmachine.simulator.KMachineNetwork` charges for the same
flooding pattern on the same partition: one message per *cross arc* per
step, and the bandwidth-limited round count for the full arc load.  The two
agree by a set identity: the boundary pairs are exactly the distinct
``(vertex, destination machine)`` pairs of the cross arcs, so
``boundary_pairs ≤ cross_arcs`` always, with equality when no vertex has
two neighbours on one foreign machine — the per-pair counters are the
deduplicated (gather once per machine) form of the simulator's per-arc
message count.  Both sit side by side in the report's
``metadata["exchange"]`` and the test suite asserts the identity.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from .core.batched import _detect_communities_batched_impl
from .core.parameters import CDRWParameters
from .exceptions import RandomWalkError, ReproError
from .execution import resolve_workers
from .execution_process import (
    ProcessOutcome,
    _is_trivial,
    _preferred_context,
    _validate_batched_seeds,
)
from .graphs.graph import Graph
from .kmachine.partition import RandomVertexPartition
from .kmachine.simulator import KMachineNetwork
from .randomwalk.transition import lazy_transition_matrix, reverse_transition_matrix

__all__ = [
    "ShardedWalkPool",
    "ShardedBatchedWalk",
    "detect_batched_sharded",
]


# ----------------------------------------------------------------------
# Worker-process side: one compacted operator slice per process
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardOperator:
    """The picklable row slice a shard worker holds: its CSR pieces.

    ``indices`` are *compact* column positions into the shard's sorted
    needed-vertex list, not global vertex ids — the worker never sees (or
    needs) the global vertex space.
    """

    num_rows: int
    num_inputs: int
    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray


#: Set by :func:`_init_shard` when a shard's (single-process) executor
#: starts; holds the compacted operator for the life of the worker.
_shard_operator: sp.csr_matrix | None = None


def _init_shard(operator: _ShardOperator) -> None:
    global _shard_operator
    # Adopting (data, indices, indptr) verbatim keeps the nonzero order of
    # the parent's row slice — the accumulation-order half of the
    # bit-identity argument in the module docstring.
    _shard_operator = sp.csr_matrix(
        (operator.data, operator.indices, operator.indptr),
        shape=(operator.num_rows, operator.num_inputs),
    )


def _advance_shard(gathered: np.ndarray) -> np.ndarray:
    """One walk step for one shard: its operator slice times its inputs."""
    if _shard_operator is None:
        raise ReproError("shard worker was not initialised with its operator slice")
    result: np.ndarray = _shard_operator @ gathered
    return result


# ----------------------------------------------------------------------
# Parent side: the pool of shard processes and the exchange accounting
# ----------------------------------------------------------------------
class ShardedWalkPool:
    """``k`` worker processes, each owning one vertex partition's operator rows.

    The parent builds the full walk operator exactly as the serial walk
    would (same floats), slices it by the hash partition's machines, and
    ships each shard its compacted slice once, at pool start.  Each step
    then moves only probability mass: the parent gathers every shard's
    needed input rows from the current ``(n, B)`` matrix, the shards
    multiply, and the parent scatters the outputs back into the next
    matrix.  Each shard runs on its own **single-process** executor so the
    operator slice shipped at init is pinned to exactly one worker (a
    multi-worker executor assigns tasks to whichever process is free).

    The pool is walk-agnostic state: one pool serves every batch of a
    detection run, accumulating the exchange counters across all of them.
    """

    #: Per-step exchange records are kept individually up to this many steps;
    #: past it only the running totals grow (reports stay bounded).
    MAX_STEP_RECORDS = 16

    def __init__(
        self,
        graph: Graph,
        shards: int | None = None,
        *,
        lazy: bool = False,
        partition_seed: int | None = None,
        mp_context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        self.shards = resolve_workers(shards)
        self.num_vertices = graph.num_vertices
        self.partition = RandomVertexPartition(
            graph.num_vertices, self.shards, method="hash", seed=partition_seed
        )
        if lazy:
            operator = lazy_transition_matrix(graph).T.tocsr()
        else:
            operator = reverse_transition_matrix(graph)
        assignment = self.partition.assignment
        context = mp_context or _preferred_context()
        self._shard_rows: list[np.ndarray] = []
        self._shard_needs: list[np.ndarray] = []
        self._executors: list[ProcessPoolExecutor | None] = []
        boundary_pairs = 0
        gathered_values = 0
        try:
            for machine in range(self.shards):
                rows = self.partition.vertices_of(machine)
                self._shard_rows.append(rows)
                if rows.size == 0:
                    # A machine that drew no vertices (k > n corner) owns no
                    # operator rows and contributes nothing to any step.
                    self._shard_needs.append(np.empty(0, dtype=np.int64))
                    self._executors.append(None)
                    continue
                block = operator[rows, :]
                need = np.unique(block.indices).astype(np.int64)
                self._shard_needs.append(need)
                boundary_pairs += int(np.count_nonzero(assignment[need] != machine))
                gathered_values += int(need.size)
                shard_operator = _ShardOperator(
                    num_rows=int(rows.size),
                    num_inputs=int(need.size),
                    data=block.data,
                    indices=np.searchsorted(need, block.indices),
                    indptr=block.indptr,
                )
                self._executors.append(
                    ProcessPoolExecutor(
                        max_workers=1,
                        mp_context=context,
                        initializer=_init_shard,
                        initargs=(shard_operator,),
                    )
                )
        except BaseException:
            self.close()
            raise
        self._boundary_pairs_per_column = boundary_pairs
        self._gathered_per_column = gathered_values
        # The simulator's verdict for the same flooding pattern on the same
        # partition: one message per arc per step (dense flooding — the
        # batched walk keeps every vertex's value live), cross arcs priced
        # as inter-machine messages, rounds from the bandwidth-limited
        # heaviest link.  The pattern is static, so this is computed once.
        network = KMachineNetwork(self.partition)
        tails = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), graph.degrees()
        )
        heads = graph.csr_arrays()[1]
        loads, inter, local = network.link_loads(tails, heads)
        self._cross_arcs = int(inter)
        self._local_arcs = int(local)
        self._rounds_per_step = int(network.rounds_for_loads(loads))
        self.steps = 0
        self.boundary_values = 0
        self.gathered_values = 0
        self._step_records: list[dict[str, int]] = []

    # ------------------------------------------------------------------
    # Walk construction and stepping
    # ------------------------------------------------------------------
    def make_walk(self, sources: Sequence[int]) -> "ShardedBatchedWalk":
        """The ``walk_factory`` hook for the batched detection driver."""
        return ShardedBatchedWalk(self, sources)

    def advance(self, matrix: np.ndarray) -> np.ndarray:
        """One walk step: gather, shard-multiply, scatter; count the exchange.

        ``matrix`` is the current ``(n, B)`` distribution matrix; the return
        value is the next one, every column bit-identical to the serial
        ``operator @ matrix`` (see the module docstring).
        """
        width = int(matrix.shape[1])
        pending: list[tuple[int, Future[np.ndarray]]] = []
        for machine in range(self.shards):
            executor = self._executors[machine]
            if executor is None:
                continue
            gathered = matrix[self._shard_needs[machine], :]
            pending.append((machine, executor.submit(_advance_shard, gathered)))
        advanced = np.empty((self.num_vertices, width), dtype=np.float64)
        for machine, future in pending:
            advanced[self._shard_rows[machine], :] = future.result()
        self._record_step(width)
        return advanced

    def _record_step(self, width: int) -> None:
        self.steps += 1
        boundary = self._boundary_pairs_per_column * width
        gathered = self._gathered_per_column * width
        self.boundary_values += boundary
        self.gathered_values += gathered
        if len(self._step_records) < self.MAX_STEP_RECORDS:
            self._step_records.append(
                {
                    "columns": width,
                    "boundary_values": boundary,
                    "boundary_bytes": boundary * 8,
                    "simulated_messages": self._cross_arcs,
                    "simulated_rounds": self._rounds_per_step,
                }
            )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def exchange_report(self) -> dict[str, object]:
        """Totals of what the shards exchanged vs. what the simulator charges.

        ``boundary_*`` counts the float64 values actually gathered across a
        partition boundary (deduplicated per ``(vertex, machine)`` pair —
        each shard receives each foreign vertex's value once per step per
        column); ``gathered_*`` additionally includes shard-local rows (the
        full physical traffic through the parent).  ``simulated_*`` is
        :class:`~repro.kmachine.simulator.KMachineNetwork`'s per-arc price
        for the same dense flooding on the same partition, times the steps
        taken; ``boundary_pairs_per_column_step <= cross_arcs`` is the
        reconciliation identity the tests assert.
        """
        return {
            "machines": self.shards,
            "partition_method": "hash",
            "steps": self.steps,
            "boundary_pairs_per_column_step": self._boundary_pairs_per_column,
            "boundary_values": self.boundary_values,
            "boundary_bytes": self.boundary_values * 8,
            "gathered_values": self.gathered_values,
            "gathered_bytes": self.gathered_values * 8,
            "cross_arcs": self._cross_arcs,
            "local_arcs": self._local_arcs,
            "simulated_inter_machine_messages": self._cross_arcs * self.steps,
            "simulated_local_messages": self._local_arcs * self.steps,
            "simulated_rounds_per_step": self._rounds_per_step,
            "simulated_rounds": self._rounds_per_step * self.steps,
            "per_step": list(self._step_records),
        }

    def close(self) -> None:
        """Shut every shard executor down (idempotent)."""
        while self._executors:
            executor = self._executors.pop()
            if executor is not None:
                executor.shutdown(wait=True)

    def __enter__(self) -> "ShardedWalkPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ShardedBatchedWalk:
    """Drop-in for :class:`~repro.randomwalk.batched.BatchedWalkDistribution`
    whose step runs row-sharded on a :class:`ShardedWalkPool`.

    The parent holds the full ``(n, B)`` distribution matrix (probability
    mass is dense long before communities stop — holding it sharded would
    save nothing and double the exchange); the *operator* is what never
    exists in one process.  Implements the
    :class:`~repro.core.batched.BatchedWalk` protocol the driver consumes.
    """

    def __init__(self, pool: ShardedWalkPool, sources: Sequence[int]) -> None:
        source_array = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        if source_array.ndim != 1 or source_array.size == 0:
            raise RandomWalkError("batched walk needs a flat, non-empty source sequence")
        if (source_array < 0).any() or (source_array >= pool.num_vertices).any():
            raise RandomWalkError(
                f"sources {sources!r} contain vertices outside the graph"
            )
        self._pool = pool
        self._sources = tuple(int(s) for s in source_array)
        # Same one-hot init as BatchedWalkDistribution._init_blocks.
        matrix = np.zeros((pool.num_vertices, source_array.size), dtype=np.float64)
        matrix[source_array, np.arange(source_array.size)] = 1.0
        self._matrix = matrix
        self._steps = 0

    @property
    def sources(self) -> tuple[int, ...]:
        """The seed vertex of every walk, in column order."""
        return self._sources

    @property
    def num_walks(self) -> int:
        """The batch width ``B``."""
        return len(self._sources)

    @property
    def steps(self) -> int:
        """The number of steps taken so far (the current walk length ``ℓ``)."""
        return self._steps

    def step(self, count: int = 1) -> np.ndarray:
        """Advance all walks ``count`` steps on the shard pool."""
        if count < 0:
            raise RandomWalkError(f"cannot step a negative number of times: {count}")
        for _ in range(count):
            self._matrix = self._pool.advance(self._matrix)
            self._steps += 1
        return self.probabilities()

    def probabilities(self) -> np.ndarray:
        """Return the current ``(n, B)`` distribution matrix (read-only view)."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    def column(self, walk: int) -> np.ndarray:
        """Return walk ``walk``'s distribution as a contiguous read-only vector."""
        if not (0 <= walk < len(self._sources)):
            raise RandomWalkError(
                f"walk index {walk} out of range for a batch of {len(self._sources)}"
            )
        vector = np.ascontiguousarray(self._matrix[:, walk])
        vector.flags.writeable = False
        return vector

    def columns(self, walks: Sequence[int]) -> np.ndarray:
        """Return a contiguous ``(n, k)`` read-only copy of the selected columns."""
        indices = np.asarray([int(w) for w in walks], dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(self._sources)):
            raise RandomWalkError(
                f"walk indices {walks!r} out of range for a batch of {len(self._sources)}"
            )
        matrix = np.ascontiguousarray(self._matrix[:, indices])
        matrix.flags.writeable = False
        return matrix

    def retain(self, walks: Sequence[int]) -> None:
        """Narrow the batch to the given walk columns (in the given order)."""
        kept = np.asarray([int(w) for w in walks], dtype=np.int64)
        if kept.size == 0:
            raise RandomWalkError("cannot retain an empty set of walks")
        if (kept < 0).any() or (kept >= len(self._sources)).any():
            raise RandomWalkError(
                f"walk indices {walks!r} out of range for a batch of {len(self._sources)}"
            )
        # A column gather copies each surviving column unchanged — the same
        # floats BatchedWalkDistribution.retain preserves.
        self._matrix = np.ascontiguousarray(self._matrix[:, kept])
        self._sources = tuple(self._sources[int(w)] for w in kept)

    def __repr__(self) -> str:
        return (
            f"ShardedBatchedWalk(num_walks={len(self._sources)}, "
            f"steps={self._steps}, shards={self._pool.shards})"
        )


# ----------------------------------------------------------------------
# Backend entry point
# ----------------------------------------------------------------------
def detect_batched_sharded(
    graph: Graph,
    parameters: CDRWParameters | None = None,
    delta_hint: float | None = None,
    *,
    seed: int | np.random.Generator | None = None,
    max_seeds: int | None = None,
    batch_size: int = 8,
    seeds: tuple[int, ...] | list[int] | None = None,
    workers: int | None = None,
    partition_seed: int | None = None,
    dtype: str = "float64",
    capture_distributions: bool = False,
    capture_history: bool = True,
    mp_context: multiprocessing.context.BaseContext | None = None,
) -> ProcessOutcome:
    """The ``"sharded"`` backend: the batched pool loop on a sharded walk.

    Detections, walk lengths, stop reasons and final distributions are
    bit-identical to the serial ``batched`` backend with the same knobs at
    every shard count (``workers``); the report's metadata additionally
    carries the :meth:`ShardedWalkPool.exchange_report` counters.
    ``partition_seed`` salts the hash vertex partition exactly as the
    ``kmachine`` backend's ``RunConfig.partition_seed`` does, so the
    exchange numbers are directly comparable to a simulator run on the same
    partition.
    """
    parameters = parameters or CDRWParameters()
    explicit = _validate_batched_seeds(graph, seeds, max_seeds, batch_size)

    if _is_trivial(graph, explicit, seeds is not None):
        # Edgeless / empty runs take the scalar fast path inline — there is
        # no walk to shard (identical results by the batch guarantee).
        outcome = _detect_communities_batched_impl(
            graph,
            parameters,
            delta_hint,
            seed=seed,
            max_seeds=max_seeds,
            batch_size=batch_size,
            seeds=explicit if seeds is not None else None,
            workers=1,
            dtype=np.dtype(dtype),
            capture_distributions=capture_distributions,
            capture_history=capture_history,
        )
        if capture_distributions:
            detection, finals = outcome
        else:
            detection, finals = outcome, None
        return ProcessOutcome(
            detection=detection,
            final_distributions=finals,
            extras={"executor": "sharded", "shard_processes": 0, "exchange": {}},
        )

    with ShardedWalkPool(
        graph,
        workers,
        lazy=parameters.lazy_walk,
        partition_seed=partition_seed,
        mp_context=mp_context,
    ) as pool:
        outcome = _detect_communities_batched_impl(
            graph,
            parameters,
            delta_hint,
            seed=seed,
            max_seeds=max_seeds,
            batch_size=batch_size,
            seeds=explicit if seeds is not None else None,
            workers=1,
            dtype=np.dtype(dtype),
            capture_distributions=capture_distributions,
            capture_history=capture_history,
            walk_factory=pool.make_walk,
        )
        if capture_distributions:
            detection, finals = outcome
        else:
            detection, finals = outcome, None
        return ProcessOutcome(
            detection=detection,
            final_distributions=finals,
            extras={
                "executor": "sharded",
                "shard_processes": pool.shards,
                "exchange": pool.exchange_report(),
            },
        )
