"""Random-walk transition operators.

A simple random walk on an undirected graph moves from the current vertex
``u`` to a uniformly random neighbour, i.e. with probability ``1/d(u)`` per
incident edge (Section I-C of the paper).  This module exposes the transition
matrix in the orientation used by the paper's flooding computation: the
distribution after one step is ``p_{ℓ} = Aᵀ p_{ℓ-1}`` where ``A`` is the
transpose of the row-stochastic transition matrix — equivalently each node
``u`` sends ``p_{ℓ-1}(u)/d(u)`` along every incident edge and sums what it
receives (Algorithm 1, lines 10-11).

A lazy variant (stay put with probability 1/2) is provided for completeness;
laziness removes periodicity issues on bipartite structures and is the
standard fix when the plain walk does not converge.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..exceptions import RandomWalkError
from ..graphs.graph import Graph

__all__ = [
    "transition_matrix",
    "reverse_transition_matrix",
    "lazy_transition_matrix",
    "step_distribution",
    "sample_walk",
    "second_largest_eigenvalue",
]


def transition_matrix(graph: Graph) -> sp.csr_matrix:
    """Return the row-stochastic transition matrix ``P`` with ``P[u, v] = 1/d(u)``.

    Rows of isolated vertices are all-zero (the walk cannot move from them);
    callers that need a proper stochastic matrix should ensure the graph has
    no isolated vertices, which holds with high probability for the random
    graphs the paper studies.
    """
    degrees = graph.degrees().astype(np.float64)
    adjacency = graph.adjacency_matrix()
    with np.errstate(divide="ignore"):
        inverse_degrees = np.where(degrees > 0, 1.0 / degrees, 0.0)
    return sp.diags(inverse_degrees) @ adjacency


def reverse_transition_matrix(graph: Graph) -> sp.csr_matrix:
    """Return ``Pᵀ`` — the operator that advances a probability column vector.

    ``p_ℓ = Pᵀ p_{ℓ-1}`` is exactly the local flooding rule of Algorithm 1:
    each vertex ``u`` spreads ``p_{ℓ-1}(u)/d(u)`` to each neighbour.

    Because the adjacency matrix is symmetric, ``Pᵀ = A·D⁻¹`` shares the
    graph's CSR structure with entry ``(v, u) = 1/d(u)`` — so the operator is
    assembled with a single degree gather over the adjacency structure
    instead of materializing ``P`` and transposing it.  The values are
    bit-identical to ``transition_matrix(graph).T`` (asserted in tests).
    """
    adjacency = graph.adjacency_matrix()
    degrees = graph.degrees().astype(np.float64)
    with np.errstate(divide="ignore"):
        inverse_degrees = np.where(degrees > 0, 1.0 / degrees, 0.0)
    # Copy the structure arrays: sharing them with the cached adjacency would
    # let in-place mutation of one matrix silently corrupt the other.
    operator = sp.csr_matrix(
        (
            inverse_degrees[adjacency.indices],
            adjacency.indices.copy(),
            adjacency.indptr.copy(),
        ),
        shape=adjacency.shape,
        copy=False,
    )
    operator.has_sorted_indices = True
    return operator


def lazy_transition_matrix(graph: Graph, laziness: float = 0.5) -> sp.csr_matrix:
    """Return the lazy transition matrix ``(1-α) I + α P`` with ``α = 1 - laziness``.

    ``laziness`` is the probability of staying put each step.
    """
    if not (0.0 <= laziness < 1.0):
        raise RandomWalkError(f"laziness must be in [0, 1), got {laziness}")
    plain = transition_matrix(graph)
    identity = sp.identity(graph.num_vertices, format="csr")
    return (laziness * identity + (1.0 - laziness) * plain).tocsr()


def step_distribution(graph: Graph, distribution: np.ndarray) -> np.ndarray:
    """Advance a probability distribution by one random-walk step.

    This is a convenience wrapper over :func:`reverse_transition_matrix` for
    callers that do not want to hold on to the operator.
    """
    distribution = np.asarray(distribution, dtype=np.float64)
    if distribution.shape != (graph.num_vertices,):
        raise RandomWalkError(
            f"distribution has shape {distribution.shape}, expected ({graph.num_vertices},)"
        )
    return reverse_transition_matrix(graph) @ distribution


def sample_walk(
    graph: Graph,
    source: int,
    length: int,
    seed: int | np.random.Generator | None = None,
) -> list[int]:
    """Sample an actual random-walk trajectory of ``length`` steps from ``source``.

    The CDRW algorithm itself propagates the full distribution rather than
    sampling trajectories, but sampled walks are useful in tests (empirical
    visit frequencies must converge to the propagated distribution) and in the
    Walktrap baseline.
    """
    if source not in graph:
        raise RandomWalkError(f"source {source} is not a vertex of {graph!r}")
    if length < 0:
        raise RandomWalkError(f"walk length must be non-negative, got {length}")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    trajectory = [source]
    current = source
    for _ in range(length):
        neighbors = graph.neighbors(current)
        if len(neighbors) == 0:
            break
        current = int(rng.choice(neighbors))
        trajectory.append(current)
    return trajectory


def second_largest_eigenvalue(graph: Graph) -> float:
    """Return ``λ₂``, the second largest absolute eigenvalue of the transition matrix.

    For a connected non-bipartite graph ``λ₂ < 1`` controls the mixing time.
    Equation 2 of the paper bounds ``λ₂ ≈ 1/√d`` for random d-regular graphs.
    The transition matrix is similar to the symmetric matrix
    ``D^{-1/2} A D^{-1/2}``, whose eigenvalues we compute instead (they are
    identical and the symmetric eigenproblem is numerically better behaved).
    """
    n = graph.num_vertices
    if n < 2 or graph.num_edges == 0:
        return 0.0
    degrees = graph.degrees().astype(np.float64)
    if np.any(degrees == 0):
        raise RandomWalkError("second eigenvalue requires a graph with no isolated vertices")
    inverse_sqrt = sp.diags(1.0 / np.sqrt(degrees))
    symmetric = inverse_sqrt @ graph.adjacency_matrix() @ inverse_sqrt
    if n <= 512:
        eigenvalues = np.linalg.eigvalsh(symmetric.toarray())
    else:
        import scipy.sparse.linalg as spla

        try:
            eigenvalues = spla.eigsh(symmetric, k=min(6, n - 1), which="LM",
                                     return_eigenvectors=False)
        except (spla.ArpackNoConvergence, ValueError):
            eigenvalues = np.linalg.eigvalsh(symmetric.toarray())
    magnitudes = np.sort(np.abs(eigenvalues))[::-1]
    if len(magnitudes) < 2:
        return 0.0
    return float(magnitudes[1])
