"""Local mixing sets and local mixing times (Definition 2 of the paper).

A random walk from ``s`` *locally mixes* in a set ``S ∋ s`` at time ``t`` when
the walk's distribution restricted to ``S`` is within ε (in L1) of the
stationary distribution restricted to ``S``:

``|| p^t_S − π_S ||₁ < ε``  with  ``π_S(v) = d(v)/µ(S)`` for ``v ∈ S``.

The *local mixing time* ``τ_s(β, ε)`` is the smallest such ``t`` over all sets
``S`` of size at least ``n/β`` containing ``s``.  This module implements the
definition faithfully (exact ``µ(S)``, explicit candidate sets) and is used by
the property tests and to validate the localized search that Algorithm 1 uses
(see :mod:`repro.core.mixing_set`, which ranks vertices by the paper's
``x_u = |p_ℓ(u) − d(u)/µ'(S)|`` values instead).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import MixingError
from ..graphs.graph import Graph
from ..utils import MIXING_THRESHOLD, ceil_log2
from .distribution import WalkDistribution
from .stationary import restricted_stationary

__all__ = [
    "mixes_locally",
    "local_mixing_deficit",
    "best_mixing_subset_of_size",
    "LocalMixingResult",
    "local_mixing_time",
]


def local_mixing_deficit(
    graph: Graph,
    distribution: np.ndarray,
    subset: Iterable[int],
) -> float:
    """Return ``|| p_S − π_S ||₁`` for the given subset, using the exact ``µ(S)``."""
    subset = sorted(set(int(v) for v in subset))
    if not subset:
        raise MixingError("local mixing requires a non-empty subset")
    pi_s = restricted_stationary(graph, subset)
    distribution = np.asarray(distribution, dtype=np.float64)
    indices = np.asarray(subset, dtype=np.int64)
    return float(np.abs(distribution[indices] - pi_s[indices]).sum())


def mixes_locally(
    graph: Graph,
    distribution: np.ndarray,
    subset: Iterable[int],
    epsilon: float = MIXING_THRESHOLD,
) -> bool:
    """Return ``True`` when the distribution locally mixes in ``subset`` (Definition 2)."""
    if not (0.0 < epsilon < 2.0):
        raise MixingError(f"epsilon must be in (0, 2), got {epsilon}")
    return local_mixing_deficit(graph, distribution, subset) < epsilon


def best_mixing_subset_of_size(
    graph: Graph,
    distribution: np.ndarray,
    size: int,
) -> tuple[frozenset[int], float]:
    """Return the size-``size`` subset with the smallest exact mixing deficit.

    Finding the true optimum over all subsets is exponential; like the paper
    we use the natural greedy relaxation: rank vertices by how close
    ``p(v)`` is to what their share of ``π_S`` would be (using the average
    degree for the provisional volume) and take the best ``size`` of them,
    then evaluate the *exact* deficit of that set.  Tests verify that on PPM
    graphs this recovers the seed's block at the appropriate walk length.
    """
    if size < 1 or size > graph.num_vertices:
        raise MixingError(
            f"subset size must be between 1 and n={graph.num_vertices}, got {size}"
        )
    distribution = np.asarray(distribution, dtype=np.float64)
    degrees = graph.degrees().astype(np.float64)
    average_volume = graph.volume / graph.num_vertices * size
    deviation = np.abs(distribution - degrees / max(average_volume, 1e-300))
    chosen = np.argpartition(deviation, size - 1)[:size]
    subset = frozenset(int(v) for v in chosen)
    return subset, local_mixing_deficit(graph, distribution, subset)


@dataclass(frozen=True)
class LocalMixingResult:
    """Result of a local mixing time computation.

    Attributes
    ----------
    source:
        Walk source ``s``.
    time:
        The local mixing time ``τ_s(β, ε)``; ``None`` when no candidate set
        mixed within the step budget.
    mixing_set:
        A set attaining the minimum (``None`` when ``time`` is ``None``).
    beta:
        The size parameter β (candidate sets have size ≥ ``n/β``).
    epsilon:
        The L1 threshold ε.
    """

    source: int
    time: int | None
    mixing_set: frozenset[int] | None
    beta: float
    epsilon: float


def local_mixing_time(
    graph: Graph,
    source: int,
    beta: float = 1.0,
    epsilon: float = MIXING_THRESHOLD,
    max_steps: int | None = None,
    candidate_sets: Sequence[Iterable[int]] | None = None,
) -> LocalMixingResult:
    """Compute the local mixing time ``τ_s(β, ε)`` from ``source``.

    Parameters
    ----------
    beta:
        Candidate sets must have size at least ``n/β`` (β ≥ 1).
    candidate_sets:
        Optional explicit candidate sets (each containing ``source``).  When
        omitted, for each walk length the greedy best subset of the minimum
        admissible size is evaluated, which matches how the algorithmic
        search proceeds and upper-bounds the true local mixing time.
    max_steps:
        Step budget; defaults to ``4 ⌈log₂ n⌉²``.
    """
    if source not in graph:
        raise MixingError(f"source {source} is not a vertex of {graph!r}")
    if beta < 1.0:
        raise MixingError(f"beta must be >= 1, got {beta}")
    if not (0.0 < epsilon < 2.0):
        raise MixingError(f"epsilon must be in (0, 2), got {epsilon}")

    n = graph.num_vertices
    minimum_size = max(1, int(math.ceil(n / beta)))
    if max_steps is None:
        max_steps = max(16, 4 * ceil_log2(max(n, 2)) ** 2)

    explicit_sets: list[frozenset[int]] | None = None
    if candidate_sets is not None:
        explicit_sets = []
        for candidate in candidate_sets:
            candidate_set = frozenset(int(v) for v in candidate)
            if source not in candidate_set:
                raise MixingError("every candidate set must contain the source")
            if len(candidate_set) < minimum_size:
                raise MixingError(
                    f"candidate set of size {len(candidate_set)} is below the "
                    f"minimum n/beta = {minimum_size}"
                )
            explicit_sets.append(candidate_set)
        if not explicit_sets:
            raise MixingError("candidate_sets must not be empty when provided")

    # Candidate sizes: Definition 2 minimises over all sets of size >= n/beta,
    # so every admissible size is tried (geometrically, as in Algorithm 1).
    from ..utils import geometric_sizes

    candidate_sizes = geometric_sizes(minimum_size, n)

    walk = WalkDistribution(graph, source)
    for t in range(max_steps + 1):
        distribution = walk.probabilities()
        if explicit_sets is not None:
            for candidate_set in explicit_sets:
                if mixes_locally(graph, distribution, candidate_set, epsilon):
                    return LocalMixingResult(source, t, candidate_set, beta, epsilon)
        else:
            for size in candidate_sizes:
                subset, deficit = best_mixing_subset_of_size(graph, distribution, size)
                if deficit < epsilon:
                    return LocalMixingResult(source, t, subset, beta, epsilon)
        walk.step()
    return LocalMixingResult(source, None, None, beta, epsilon)
