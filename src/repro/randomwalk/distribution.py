"""Step-by-step random-walk probability distributions.

:class:`WalkDistribution` is the centralized counterpart of the "local
flooding" of Algorithm 1: starting from the indicator distribution of the
seed vertex (``p_0(s) = 1``), each :meth:`WalkDistribution.step` advances the
distribution by one random-walk step, exactly as if every vertex had sent
``p_{ℓ-1}(u)/d(u)`` to each of its neighbours and summed the incoming values.

The CONGEST implementation in :mod:`repro.congest.cdrw_congest` performs the
same arithmetic with explicit messages; an integration test asserts that the
two produce identical vectors.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..exceptions import RandomWalkError
from ..graphs.graph import Graph
from .transition import lazy_transition_matrix, reverse_transition_matrix

__all__ = ["WalkDistribution"]


class WalkDistribution:
    """The exact probability distribution of a random walk, advanced step by step.

    Parameters
    ----------
    graph:
        Graph on which the walk runs.
    source:
        Seed vertex ``s``; the walk starts with all probability mass on it.
    lazy:
        When ``True`` use the lazy walk (stay put with probability 1/2).  The
        paper's algorithm uses the plain walk; laziness is exposed for
        experimentation on nearly-bipartite inputs.
    """

    def __init__(self, graph: Graph, source: int, lazy: bool = False):
        if source not in graph:
            raise RandomWalkError(f"source {source} is not a vertex of {graph!r}")
        self._graph = graph
        self._source = int(source)
        self._lazy = bool(lazy)
        if lazy:
            self._operator: sp.csr_matrix = lazy_transition_matrix(graph).T.tocsr()
        else:
            self._operator = reverse_transition_matrix(graph)
        self._distribution = np.zeros(graph.num_vertices, dtype=np.float64)
        self._distribution[source] = 1.0
        self._steps = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying graph."""
        return self._graph

    @property
    def source(self) -> int:
        """The seed vertex ``s``."""
        return self._source

    @property
    def steps(self) -> int:
        """The number of steps taken so far (the current walk length ``ℓ``)."""
        return self._steps

    @property
    def lazy(self) -> bool:
        """Whether the lazy walk is used."""
        return self._lazy

    def probabilities(self) -> np.ndarray:
        """Return the current distribution ``p_ℓ`` (read-only view)."""
        view = self._distribution.view()
        view.flags.writeable = False
        return view

    def probability(self, vertex: int) -> float:
        """Return ``p_ℓ(vertex)``."""
        if vertex not in self._graph:
            raise RandomWalkError(f"vertex {vertex} is not a vertex of {self._graph!r}")
        return float(self._distribution[vertex])

    def support(self, tolerance: float = 0.0) -> np.ndarray:
        """Return the vertices with probability strictly greater than ``tolerance``."""
        return np.flatnonzero(self._distribution > tolerance)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self, count: int = 1) -> np.ndarray:
        """Advance the walk by ``count`` steps and return the new distribution."""
        if count < 0:
            raise RandomWalkError(f"cannot step a negative number of times: {count}")
        for _ in range(count):
            self._distribution = self._operator @ self._distribution
            self._steps += 1
        return self.probabilities()

    def run_to(self, length: int) -> np.ndarray:
        """Advance the walk until its length equals ``length`` (no rewinding)."""
        if length < self._steps:
            raise RandomWalkError(
                f"walk is already at length {self._steps}, cannot rewind to {length}"
            )
        return self.step(length - self._steps)

    def restart(self) -> None:
        """Reset the walk to length 0 (all mass at the seed)."""
        self._distribution = np.zeros(self._graph.num_vertices, dtype=np.float64)
        self._distribution[self._source] = 1.0
        self._steps = 0

    # ------------------------------------------------------------------
    # Restrictions (Section I-C)
    # ------------------------------------------------------------------
    def restricted(self, subset: np.ndarray | list[int]) -> np.ndarray:
        """Return ``p_ℓ`` restricted to ``subset`` (zero elsewhere).

        This is the vector ``p^t_S`` of the paper: ``p^t_S(v) = p_t(v)`` for
        ``v ∈ S`` and 0 otherwise.  Note it is generally *not* a probability
        distribution (its total mass can be below 1).
        """
        mask = np.zeros(self._graph.num_vertices, dtype=bool)
        mask[np.asarray(list(subset), dtype=np.int64)] = True
        return np.where(mask, self._distribution, 0.0)

    def mass_in(self, subset: np.ndarray | list[int]) -> float:
        """Return the total probability mass currently inside ``subset``."""
        indices = np.asarray(list(subset), dtype=np.int64)
        return float(self._distribution[indices].sum())

    def __repr__(self) -> str:
        return (
            f"WalkDistribution(source={self._source}, steps={self._steps}, "
            f"lazy={self._lazy}, support={len(self.support())})"
        )
