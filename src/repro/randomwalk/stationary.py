"""Stationary distributions and the distances used by the mixing definitions.

For a connected undirected graph the stationary distribution of the simple
random walk is ``π(v) = d(v) / 2m`` (Section I-C).  The paper's local-mixing
machinery needs its restriction to a subset ``S``:

``π_S(v) = d(v) / µ(S)`` for ``v ∈ S`` and 0 otherwise,

and, for the *localized* Algorithm 1, the approximation in which the subset
volume ``µ(S)`` is replaced by the average volume ``µ'(S) = (2m/n)·|S|`` so
that a vertex can evaluate its term knowing only ``|S|``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..exceptions import RandomWalkError
from ..graphs.graph import Graph

__all__ = [
    "stationary_distribution",
    "restricted_stationary",
    "approximate_restricted_stationary",
    "l1_distance",
    "total_variation_distance",
    "restricted_l1_distance",
]


def stationary_distribution(graph: Graph) -> np.ndarray:
    """Return ``π`` with ``π(v) = d(v)/2m``.

    Raises :class:`RandomWalkError` for graphs with no edges, for which the
    stationary distribution is undefined.
    """
    if graph.num_edges == 0:
        raise RandomWalkError("the stationary distribution requires at least one edge")
    return graph.degrees().astype(np.float64) / graph.volume


def restricted_stationary(graph: Graph, subset: Iterable[int]) -> np.ndarray:
    """Return ``π_S`` over the full vertex set (zero outside ``S``).

    ``π_S(v) = d(v)/µ(S)`` for ``v ∈ S``; this is the target distribution of
    the local mixing definition (Definition 2).
    """
    indices = np.asarray(sorted(set(int(v) for v in subset)), dtype=np.int64)
    if len(indices) == 0:
        raise RandomWalkError("the restricted stationary distribution needs a non-empty set")
    if indices.min() < 0 or indices.max() >= graph.num_vertices:
        raise RandomWalkError("subset contains vertices outside the graph")
    degrees = graph.degrees().astype(np.float64)
    volume = degrees[indices].sum()
    if volume == 0:
        raise RandomWalkError("subset volume is zero; cannot normalise π_S")
    result = np.zeros(graph.num_vertices, dtype=np.float64)
    result[indices] = degrees[indices] / volume
    return result


def approximate_restricted_stationary(graph: Graph, subset_size: int) -> np.ndarray:
    """Return the per-vertex target values ``d(v)/µ'(S)`` used by Algorithm 1.

    Every vertex gets a value (not just members of some set) because the
    algorithm does not yet know which vertices will form the mixing set: it
    ranks vertices by ``x_u = |p_ℓ(u) − d(u)/µ'(S)|`` and picks the ``|S|``
    smallest.
    """
    if subset_size < 1:
        raise RandomWalkError(f"subset size must be >= 1, got {subset_size}")
    if graph.num_edges == 0:
        raise RandomWalkError("approximate stationary values require at least one edge")
    average_volume = graph.volume / graph.num_vertices * subset_size
    return graph.degrees().astype(np.float64) / average_volume


def l1_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Return ``||p − q||₁``."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise RandomWalkError(f"distribution shapes differ: {p.shape} vs {q.shape}")
    return float(np.abs(p - q).sum())


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Return the total-variation distance ``½ ||p − q||₁``."""
    return 0.5 * l1_distance(p, q)


def restricted_l1_distance(
    distribution: np.ndarray,
    target: np.ndarray,
    subset: Iterable[int],
) -> float:
    """Return ``|| p_S − target_S ||₁`` summed over the vertices of ``subset`` only.

    This is the quantity compared against the ``1/(2e)`` threshold in the
    local mixing condition: Σ_{u∈S} |p_ℓ(u) − target(u)|.
    """
    indices = np.asarray(sorted(set(int(v) for v in subset)), dtype=np.int64)
    if len(indices) == 0:
        return 0.0
    distribution = np.asarray(distribution, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if distribution.shape != target.shape:
        raise RandomWalkError(
            f"distribution shapes differ: {distribution.shape} vs {target.shape}"
        )
    return float(np.abs(distribution[indices] - target[indices]).sum())
