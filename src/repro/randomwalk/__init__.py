"""Random-walk substrate: transition operators, distributions, mixing and local mixing."""

from .transition import (
    lazy_transition_matrix,
    reverse_transition_matrix,
    sample_walk,
    second_largest_eigenvalue,
    step_distribution,
    transition_matrix,
)
from .distribution import WalkDistribution
from .batched import BatchedWalkDistribution
from .stationary import (
    approximate_restricted_stationary,
    l1_distance,
    restricted_l1_distance,
    restricted_stationary,
    stationary_distribution,
    total_variation_distance,
)
from .mixing import (
    DEFAULT_EPSILON,
    distance_to_stationarity,
    graph_mixing_time,
    mixing_time_from_source,
    spectral_mixing_time_bound,
)
from .local_mixing import (
    LocalMixingResult,
    best_mixing_subset_of_size,
    local_mixing_deficit,
    local_mixing_time,
    mixes_locally,
)

__all__ = [
    "lazy_transition_matrix",
    "reverse_transition_matrix",
    "sample_walk",
    "second_largest_eigenvalue",
    "step_distribution",
    "transition_matrix",
    "WalkDistribution",
    "BatchedWalkDistribution",
    "approximate_restricted_stationary",
    "l1_distance",
    "restricted_l1_distance",
    "restricted_stationary",
    "stationary_distribution",
    "total_variation_distance",
    "DEFAULT_EPSILON",
    "distance_to_stationarity",
    "graph_mixing_time",
    "mixing_time_from_source",
    "spectral_mixing_time_bound",
    "LocalMixingResult",
    "best_mixing_subset_of_size",
    "local_mixing_deficit",
    "local_mixing_time",
    "mixes_locally",
]
