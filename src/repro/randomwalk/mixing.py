"""Global mixing time of random walks (Definition 1 of the paper).

``τ_s(ε) = min{ t : ||p_t − π||₁ < ε }`` is the ε-near mixing time from a
source ``s`` and ``τ(ε) = max_s τ_s(ε)`` is the mixing time of the graph.

Two estimators are provided: the exact one that propagates the distribution
until the L1 condition is met, and the classical spectral upper bound derived
from the second eigenvalue (``|p_t(u) − π(u)| ≤ λ₂ᵗ √(π(u)/π(s))``, Equation 1
region of the paper), useful for cross-checking on regular graphs.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import MixingError
from ..graphs.graph import Graph
from ..utils import ceil_log2
from .distribution import WalkDistribution
from .stationary import l1_distance, stationary_distribution
from .transition import second_largest_eigenvalue

__all__ = [
    "mixing_time_from_source",
    "graph_mixing_time",
    "spectral_mixing_time_bound",
    "distance_to_stationarity",
]

#: Default ε used when the caller does not specify one.  The paper leaves ε a
#: free parameter in (0, 1); 1/(2e) matches the local mixing threshold.
DEFAULT_EPSILON: float = 1.0 / (2.0 * math.e)


def distance_to_stationarity(graph: Graph, source: int, length: int) -> float:
    """Return ``||p_length − π||₁`` for a walk started at ``source``."""
    walk = WalkDistribution(graph, source)
    walk.run_to(length)
    return l1_distance(walk.probabilities(), stationary_distribution(graph))


def mixing_time_from_source(
    graph: Graph,
    source: int,
    epsilon: float = DEFAULT_EPSILON,
    max_steps: int | None = None,
    lazy: bool = False,
) -> int:
    """Return ``τ_source(ε)`` by explicit propagation.

    Parameters
    ----------
    max_steps:
        Safety cap; defaults to ``10 · ⌈log₂ n⌉²`` which is far beyond the
        ``O(log n)`` mixing time of the connected random graphs the paper
        studies.  A :class:`MixingError` is raised when the cap is hit, which
        in practice signals a disconnected or bipartite component.
    lazy:
        Use the lazy walk (guaranteed to converge on any connected graph).
    """
    if not (0.0 < epsilon < 2.0):
        raise MixingError(f"epsilon must be in (0, 2), got {epsilon}")
    if graph.num_edges == 0:
        raise MixingError("mixing time is undefined for graphs with no edges")
    n = graph.num_vertices
    if max_steps is None:
        max_steps = max(16, 10 * ceil_log2(max(n, 2)) ** 2)

    pi = stationary_distribution(graph)
    walk = WalkDistribution(graph, source, lazy=lazy)
    for t in range(max_steps + 1):
        if l1_distance(walk.probabilities(), pi) < epsilon:
            return t
        walk.step()
    raise MixingError(
        f"walk from {source} did not come within {epsilon} of stationarity in "
        f"{max_steps} steps (graph may be disconnected or bipartite; try lazy=True)"
    )


def graph_mixing_time(
    graph: Graph,
    epsilon: float = DEFAULT_EPSILON,
    sources: list[int] | None = None,
    max_steps: int | None = None,
    lazy: bool = False,
) -> int:
    """Return ``τ(ε) = max_s τ_s(ε)``, optionally over a subset of sources.

    Evaluating every source costs ``O(n · m · τ)``; pass ``sources`` to bound
    the work (the result is then a lower bound on the true mixing time).
    """
    if sources is None:
        sources = list(range(graph.num_vertices))
    if not sources:
        raise MixingError("at least one source is required")
    return max(
        mixing_time_from_source(graph, int(s), epsilon=epsilon, max_steps=max_steps, lazy=lazy)
        for s in sources
    )


def spectral_mixing_time_bound(graph: Graph, epsilon: float = DEFAULT_EPSILON) -> float:
    """Return the spectral upper bound ``ln(n/ε) / ln(1/λ₂)`` on the mixing time.

    Derived from ``||p_t − π||₁ ≤ n · λ₂ᵗ`` on near-regular graphs; for the
    ``G(n, p)`` graphs of the paper (``λ₂ ≈ 1/√d``) this evaluates to
    ``O(log n / log d) = O(log n)``.
    """
    if not (0.0 < epsilon < 2.0):
        raise MixingError(f"epsilon must be in (0, 2), got {epsilon}")
    lam = second_largest_eigenvalue(graph)
    if lam <= 0.0:
        return 1.0
    if lam >= 1.0:
        return math.inf
    n = graph.num_vertices
    return math.log(n / epsilon) / math.log(1.0 / lam)
