"""Batched multi-seed random-walk distributions.

:class:`BatchedWalkDistribution` advances ``B`` independent walk
distributions *simultaneously*: the per-seed probability vectors are the
columns of an ``(n, B)`` matrix and one step is a single CSR
sparse-matrix–matrix product ``P_ℓ = Aᵀ P_{ℓ-1}`` instead of ``B`` separate
matrix–vector products.  The flop count per step is the same — O(m·B) — but
the sparse operator is traversed once per step rather than ``B`` times, which
is what makes 64-seed batches an order of magnitude faster than 64 scalar
:class:`~repro.randomwalk.distribution.WalkDistribution` objects on large
graphs (see ``benchmarks/bench_graph_kernel.py``).

Equivalence guarantee
---------------------
scipy's CSR matrix–matrix kernel accumulates each output column in exactly
the same order as its matrix–vector kernel, so column ``j`` after any number
of steps is **bit-identical** to a scalar ``WalkDistribution`` started from
``sources[j]`` — not merely close.  ``tests/test_batched_walk.py`` asserts
exact equality step for step; the batched CDRW driver in
:mod:`repro.core.batched` relies on it to reproduce the sequential
algorithm's output exactly.

Multi-core stepping
-------------------
The steady-state SpMM is memory-bandwidth-bound on one core (~3× over the
scalar loop, see ROADMAP).  The ``workers`` knob (default ``None`` →
``REPRO_WORKERS`` environment override → ``1``) makes :meth:`step` advance
contiguous *column blocks* on separate threads of the shared pool
(:mod:`repro.execution`).  Each block is an independent CSR SpMM over a
column slice and every output column depends only on its own input column,
so the per-column accumulation order — and therefore every float — is
unchanged: any ``workers`` value is bit-identical to the serial path
(asserted by ``tests/test_execution.py``).

Per-block storage
-----------------
The distributions are stored as a list of per-worker-block **C-contiguous**
``(n, width_b)`` buffers rather than one ``(n, B)`` matrix.  A column slice
of a C-order matrix is strided, so scipy's SpMM used to copy every block on
entry (``other.ravel()`` materialises strided input), and the fresh SpMM
output then had to be copied *back* into a strided slice of the result
matrix — two full-matrix copies per threaded step.  With per-block buffers
each thread's SpMM input is already contiguous (``ravel`` is a view) and its
output becomes the next block buffer directly; the only remaining copy is
the lazy ``(n, B)`` assembly — cached per step — when :meth:`probabilities`
is called, so consumers that read the matrix every step (the batched
detection driver) still save one full-matrix copy per step net.  With one
worker there is exactly one block, so the
serial path is the same zero-copy single-matrix layout as before.  The block
partition never changes any per-column float (each column's SpMM is
independent), so the bit-identity guarantee above is unaffected.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from ..exceptions import RandomWalkError
from ..execution import block_ranges, parallel_map_blocks, resolve_workers
from ..graphs.graph import Graph
from .transition import lazy_transition_matrix, reverse_transition_matrix

__all__ = ["BatchedWalkDistribution"]


class BatchedWalkDistribution:
    """``B`` exact walk distributions advanced together, one SpMM per step.

    Parameters
    ----------
    graph:
        Graph on which the walks run.
    sources:
        Seed vertices, one per walk; duplicates are allowed (the walks are
        independent).  Must be non-empty.
    lazy:
        When ``True`` use the lazy walk (stay put with probability 1/2), as
        in :class:`~repro.randomwalk.distribution.WalkDistribution`.
    workers:
        Thread count for the column-blocked step (``None`` → the
        ``REPRO_WORKERS`` environment override, default serial; ``0`` → all
        cores).  Results are bit-identical for every value — see the module
        docstring.
    operator:
        Optional pre-built reverse transition operator (the transposed CSR
        matrix the walk would otherwise construct from ``graph`` and
        ``lazy``).  Operator construction is a deterministic function of the
        graph, so supplying a cached copy — as
        :class:`repro.session.DetectionSession` does across repeated
        detections — changes no float; it only skips the O(m) rebuild.
    """

    def __init__(
        self,
        graph: Graph,
        sources: Sequence[int],
        lazy: bool = False,
        workers: int | None = None,
        operator: sp.csr_matrix | None = None,
    ):
        # One vectorized bounds check replaces the former per-element
        # `s not in graph` loop (which dominated construction at B in the
        # thousands); the error messages are unchanged.
        source_array = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        if source_array.ndim != 1:
            raise RandomWalkError(
                f"sources must be a flat sequence of vertices, got shape {source_array.shape}"
            )
        if source_array.size == 0:
            raise RandomWalkError("batched walk needs at least one source vertex")
        out_of_range = (source_array < 0) | (source_array >= graph.num_vertices)
        if out_of_range.any():
            bad = int(source_array[int(np.argmax(out_of_range))])
            raise RandomWalkError(f"source {bad} is not a vertex of {graph!r}")
        self._graph = graph
        self._sources = tuple(source_array.tolist())
        self._lazy = bool(lazy)
        self._workers = resolve_workers(workers)
        if operator is not None:
            n = graph.num_vertices
            if operator.shape != (n, n):
                raise RandomWalkError(
                    f"cached walk operator has shape {operator.shape}, "
                    f"expected {(n, n)} for {graph!r}"
                )
            self._operator: sp.csr_matrix = operator
        elif lazy:
            self._operator = lazy_transition_matrix(graph).T.tocsr()
        else:
            self._operator = reverse_transition_matrix(graph)
        self._init_blocks()
        self._steps = 0

    def _init_blocks(self) -> None:
        """(Re)build the per-block one-hot buffers for the current sources."""
        n = self._graph.num_vertices
        blocks: list[np.ndarray] = []
        starts: list[int] = []
        for start, stop in block_ranges(len(self._sources), self._workers):
            block = np.zeros((n, stop - start), dtype=np.float64)
            block[list(self._sources[start:stop]), np.arange(stop - start)] = 1.0
            blocks.append(block)
            starts.append(start)
        self._blocks = blocks
        self._block_starts = np.asarray(starts, dtype=np.int64)
        self._assembled: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying graph."""
        return self._graph

    @property
    def sources(self) -> tuple[int, ...]:
        """The seed vertex of every walk, in column order."""
        return self._sources

    @property
    def num_walks(self) -> int:
        """The batch width ``B``."""
        return len(self._sources)

    @property
    def steps(self) -> int:
        """The number of steps taken so far (the current walk length ``ℓ``)."""
        return self._steps

    @property
    def lazy(self) -> bool:
        """Whether the lazy walk is used."""
        return self._lazy

    @property
    def workers(self) -> int:
        """The resolved thread count used by the column-blocked step."""
        return self._workers

    def _locate(self, walk: int) -> tuple[int, int]:
        """Return ``(block index, local column)`` of global column ``walk``."""
        index = int(np.searchsorted(self._block_starts, walk, side="right")) - 1
        return index, walk - int(self._block_starts[index])

    def _materialize(self) -> np.ndarray:
        """Return the full ``(n, B)`` matrix (a view for one block, else cached)."""
        if len(self._blocks) == 1:
            return self._blocks[0]
        if self._assembled is None:
            # Concatenation only places the per-block columns side by side;
            # every column's floats are exactly the block SpMM's output.
            self._assembled = np.concatenate(self._blocks, axis=1)
        return self._assembled

    def probabilities(self) -> np.ndarray:
        """Return the current ``(n, B)`` distribution matrix (read-only view)."""
        view = self._materialize().view()
        view.flags.writeable = False
        return view

    def column(self, walk: int) -> np.ndarray:
        """Return walk ``walk``'s distribution ``p_ℓ`` as a contiguous read-only vector."""
        if not (0 <= walk < len(self._sources)):
            raise RandomWalkError(
                f"walk index {walk} out of range for a batch of {len(self._sources)}"
            )
        block, local = self._locate(walk)
        vector = np.ascontiguousarray(self._blocks[block][:, local])
        vector.flags.writeable = False
        return vector

    def columns(self, walks: Sequence[int]) -> np.ndarray:
        """Return a contiguous ``(n, k)`` read-only copy of the selected walk columns.

        Column ``i`` of the result equals :meth:`column` of ``walks[i]``
        (bit-identical — the gather copies each column unchanged).  Drivers
        use this to snapshot several final distributions in one call, e.g.
        when the walk-length budget expires for the surviving columns of a
        batched detection.
        """
        indices = np.asarray([int(w) for w in walks], dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(self._sources)):
            raise RandomWalkError(
                f"walk indices {walks!r} out of range for a batch of {len(self._sources)}"
            )
        matrix = np.empty((self._graph.num_vertices, indices.size), dtype=np.float64)
        for position, walk in enumerate(indices):
            block, local = self._locate(int(walk))
            matrix[:, position] = self._blocks[block][:, local]
        matrix.flags.writeable = False
        return matrix

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self, count: int = 1) -> np.ndarray:
        """Advance all walks by ``count`` steps and return the distribution matrix.

        With ``workers > 1`` each step advances the per-block contiguous
        buffers on separate threads; per-column results are bit-identical to
        the serial SpMM (see the module docstring).
        """
        if count < 0:
            raise RandomWalkError(f"cannot step a negative number of times: {count}")
        for _ in range(count):
            self._advance()
            self._steps += 1
        return self.probabilities()

    def _advance(self) -> None:
        """Replace every block with ``operator @ block``, one thread per block."""
        blocks = self._blocks
        if len(blocks) == 1:
            self._blocks = [self._operator @ blocks[0]]
        else:
            advanced: list[np.ndarray | None] = [None] * len(blocks)

            def advance_range(start: int, stop: int) -> None:
                # Each block is an independent SpMM on a C-contiguous buffer
                # (scipy's ravel is a view — no strided-entry copy) writing a
                # fresh output buffer; scipy accumulates every output column
                # in CSR nonzero order regardless of which other columns
                # share the call, so the block partition never changes a
                # single float.
                for index in range(start, stop):
                    advanced[index] = self._operator @ blocks[index]

            parallel_map_blocks(advance_range, len(blocks), self._workers)
            self._blocks = advanced
        self._assembled = None

    def run_to(self, length: int) -> np.ndarray:
        """Advance all walks until their length equals ``length`` (no rewinding)."""
        if length < self._steps:
            raise RandomWalkError(
                f"walks are already at length {self._steps}, cannot rewind to {length}"
            )
        return self.step(length - self._steps)

    def restart(self) -> None:
        """Reset every walk to length 0 (all mass at its seed)."""
        self._init_blocks()
        self._steps = 0

    # ------------------------------------------------------------------
    # Batch maintenance
    # ------------------------------------------------------------------
    def retain(self, walks: Sequence[int]) -> None:
        """Narrow the batch to the given walk columns (in the given order).

        Drivers use this to drop walks whose detection already stopped, so
        later steps spend no flops on finished columns.  The step counter is
        shared by all columns and is unchanged; the surviving columns are
        repartitioned into fresh contiguous block buffers.
        """
        kept = np.asarray([int(w) for w in walks], dtype=np.int64)
        if kept.size == 0:
            raise RandomWalkError("cannot retain an empty set of walks")
        if kept.size and (kept.min() < 0 or kept.max() >= len(self._sources)):
            raise RandomWalkError(
                f"walk indices {walks!r} out of range for a batch of {len(self._sources)}"
            )
        n = self._graph.num_vertices
        old_blocks = self._blocks
        locations = [self._locate(int(w)) for w in kept]
        blocks: list[np.ndarray] = []
        starts: list[int] = []
        for start, stop in block_ranges(kept.size, self._workers):
            block = np.empty((n, stop - start), dtype=np.float64)
            for offset, (old_block, local) in enumerate(locations[start:stop]):
                block[:, offset] = old_blocks[old_block][:, local]
            blocks.append(block)
            starts.append(start)
        self._blocks = blocks
        self._block_starts = np.asarray(starts, dtype=np.int64)
        self._assembled = None
        self._sources = tuple(self._sources[int(w)] for w in kept)

    # ------------------------------------------------------------------
    # Restrictions (Section I-C)
    # ------------------------------------------------------------------
    def mass_in(self, subset: np.ndarray | list[int]) -> np.ndarray:
        """Return each walk's probability mass inside ``subset`` as a ``(B,)`` vector.

        Each column is summed contiguously so the result is bit-identical to
        ``WalkDistribution.mass_in`` (an axis-0 sum over the 2-D gather would
        block the pairwise summation differently and drift in the last ulp).
        """
        indices = np.asarray(list(subset), dtype=np.int64)
        gathered = self._materialize()[indices, :]
        return np.array(
            [float(np.ascontiguousarray(gathered[:, j]).sum()) for j in range(gathered.shape[1])]
        )

    def __repr__(self) -> str:
        return (
            f"BatchedWalkDistribution(num_walks={len(self._sources)}, "
            f"steps={self._steps}, lazy={self._lazy})"
        )
