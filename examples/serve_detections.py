"""Serve concurrent community queries through the coalescing service.

A ``DetectionSession`` answers a stream of queries one at a time — each
single-seed request pays a full batched pass.  ``repro.DetectionService``
puts an admission queue and a dispatcher thread in front of one session:
whatever requests are pending when the session frees up are coalesced into
a single ``detect_batch`` wave, where the batched kernels make extra seeds
nearly free.  Every per-request report stays bit-identical to a one-shot
``detect()`` call.

The example answers eight single-seed requests three ways — a serialized
session loop, sixteen concurrent threads sharing one service, and asyncio
coroutines against the same service — then drives one request over the
JSON-lines TCP front end.

Run with::

    python examples/serve_detections.py
"""

from __future__ import annotations

import asyncio
import math
import threading
import time

from repro import DetectionService, DetectionSession, RunConfig, planted_partition_graph
from repro.graphs import ppm_expected_conductance
from repro.service_net import BackgroundServer, ServiceClient


def main() -> None:
    n, num_blocks = 1024, 4
    p = 2 * math.log(n) ** 2 / n
    q = 1.0 / n
    ppm = planted_partition_graph(n, num_blocks, p, q, seed=0)
    delta = ppm_expected_conductance(n, num_blocks, p, q)
    config = RunConfig(seed=0)
    seeds = (0, 130, 300, 470, 600, 730, 900, 1000)
    print(f"PPM graph: n={n}, r={num_blocks}, {ppm.graph.num_edges} edges")

    # Baseline: the same stream answered one request at a time.
    start = time.perf_counter()
    with DetectionSession(ppm.graph, config=config, delta_hint=delta) as session:
        serialized = {s: session.detect(seeds=(s,)) for s in seeds}
    serialized_seconds = time.perf_counter() - start
    print(f"serialized session: {serialized_seconds:.4f} s for {len(seeds)} requests")

    # The service: concurrent threads submit, the dispatcher coalesces.
    replies = {}
    lock = threading.Lock()
    start = time.perf_counter()
    with DetectionService(ppm.graph, config=config, delta_hint=delta) as service:

        def client(vertex: int) -> None:
            report = service.submit(vertex).result(timeout=600)
            with lock:
                replies[vertex] = report

        threads = [threading.Thread(target=client, args=(s,)) for s in seeds]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        metrics = service.metrics()
    service_seconds = time.perf_counter() - start

    identical = all(
        replies[s].detection == serialized[s].detection for s in seeds
    )
    print(
        f"coalescing service: {service_seconds:.4f} s — "
        f"{metrics['requests_served']} requests in {metrics['waves']} wave(s), "
        f"coalescing ratio {metrics['coalescing_ratio']:.1f}, "
        f"replies bit-identical: {identical}"
    )
    sample = replies[seeds[0]].metadata
    print(
        f"  first reply rode wave {sample['service_wave']} "
        f"(size {sample['service_wave_size']}, "
        f"coalesced={sample['service_coalesced']})"
    )

    # The same queue from asyncio: await service.detect(seed).
    async def gather_detections(service: DetectionService) -> bool:
        reports = await asyncio.gather(
            *(service.detect(vertex) for vertex in seeds)
        )
        return all(
            report.detection == serialized[vertex].detection
            for vertex, report in zip(seeds, reports)
        )

    with DetectionService(ppm.graph, config=config, delta_hint=delta) as service:
        print(f"async front end identical: {asyncio.run(gather_detections(service))}")

    # And over the wire: JSON lines on a TCP socket (repro serve --port N).
    with DetectionService(ppm.graph, config=config, delta_hint=delta) as service:
        with BackgroundServer(service) as server:
            with ServiceClient(server.host, server.port) as wire:
                report = wire.detect(seeds[0])
                print(
                    f"wire reply from {server.host}:{server.port} identical: "
                    f"{report.detection == serialized[seeds[0]].detection}"
                )


if __name__ == "__main__":
    main()
