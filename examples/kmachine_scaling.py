"""Scale CDRW across k machines (Section III-B of the paper).

The input graph is split across k machines by the random vertex partition
(each vertex hashed to a home machine); the CONGEST algorithm is simulated on
top, and only messages crossing machine boundaries cost communication rounds.
The example sweeps k and prints the measured round counts next to the
Conversion-Theorem prediction, showing the k^-1 .. k^-2 improvement the paper
derives.

Run with::

    python examples/kmachine_scaling.py
"""

from __future__ import annotations

import math

from repro import RunConfig, detect
from repro.graphs import planted_partition_graph, ppm_expected_conductance
from repro.kmachine import RandomVertexPartition, cdrw_kmachine_round_bound


def main() -> None:
    n, num_blocks = 1024, 2
    p = 2 * math.log(n) ** 2 / n
    q = 0.6 / n
    ppm = planted_partition_graph(n, num_blocks, p, q, seed=0)
    delta = ppm_expected_conductance(n, num_blocks, p, q)

    print(f"PPM graph: n={n}, m={ppm.graph.num_edges}, r={num_blocks}")
    print(f"{'k':>4} {'rounds':>12} {'speedup':>9} {'inter-machine msgs':>20} "
          f"{'closed-form bound':>18} {'balance':>9}")
    previous_rounds = None
    for k in (2, 4, 8, 16, 32):
        partition = RandomVertexPartition(n, k, method="hash", seed=0)
        balance = partition.balance_report(ppm.graph).max_vertex_imbalance
        # The "kmachine" backend with one explicit seed and the matching
        # partition seed reproduces the single-community detection.
        report = detect(
            ppm.graph,
            backend="kmachine",
            delta_hint=delta,
            config=RunConfig(seeds=(0,), num_machines=k, partition_seed=0),
        )
        cost = report.total_cost
        bound = cdrw_kmachine_round_bound(n, num_blocks, p, q, k)
        speedup = "" if previous_rounds is None else f"{previous_rounds / cost.rounds:.2f}x"
        previous_rounds = cost.rounds
        print(
            f"{k:>4} {cost.rounds:>12} {speedup:>9} "
            f"{cost.inter_machine_messages:>20} {bound:>18.0f} {balance:>9.2f}"
        )

    print(
        "\nDoubling the number of machines reduces the measured rounds by a "
        "factor between 2 (the ΔT/k term) and 4 (the M/k² term), matching the "
        "Conversion-Theorem analysis of Section III-B."
    )


if __name__ == "__main__":
    main()
