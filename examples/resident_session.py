"""Resident session: answer a stream of community queries on one big graph.

The one-shot ``detect()`` facade pays its full setup on every call — on the
process tier that is a shared-memory broadcast of the CSR arrays plus a
worker-pool fork, on the thread tier the transition-operator build, the
mixing-set search construction and the δ resolution.  For the resident
service shape (one graph, many small queries) ``repro.DetectionSession``
keeps all of that alive across calls while every answer stays bit-identical
to the one-shot facade.

The example detects communities for three separate seed batches, first with
fresh ``detect()`` calls and then through a single session, and prints the
wall-clock for both along with the session's reuse counters.

Run with::

    python examples/resident_session.py
"""

from __future__ import annotations

import math
import time

from repro import DetectionSession, RunConfig, detect, planted_partition_graph
from repro.graphs import ppm_expected_conductance


def main() -> None:
    n, num_blocks = 1024, 4
    p = 2 * math.log(n) ** 2 / n
    q = 1.0 / n
    ppm = planted_partition_graph(n, num_blocks, p, q, seed=0)
    delta = ppm_expected_conductance(n, num_blocks, p, q)
    print(f"PPM graph: n={n}, r={num_blocks}, {ppm.graph.num_edges} edges")

    # A stream of small requests against the same graph.  batch_size covers
    # each request so every call is a single coalesced shard wave; switch
    # executor="process" (and workers=4) to amortise the broadcast + fork.
    requests = [(0, 300, 600, 900), (5, 310, 620, 930), (17, 333, 641, 955)]
    config = RunConfig(seed=0, batch_size=4)

    start = time.perf_counter()
    one_shot = [
        detect(
            ppm.graph,
            backend="batched",
            delta_hint=delta,
            config=config.with_overrides(seeds=request),
        )
        for request in requests
    ]
    one_shot_seconds = time.perf_counter() - start

    start = time.perf_counter()
    with DetectionSession(ppm.graph, config=config, delta_hint=delta) as session:
        resident = [session.detect(seeds=request) for request in requests]
        last = resident[-1].metadata
        print(
            f"\nSession after {session.calls} calls: "
            f"broadcasts={session.broadcasts}, "
            f"operator_reused={last['session_operator_reused']}, "
            f"search_reused={last['session_search_reused']}, "
            f"delta_reused={last['session_delta_reused']}"
        )
    session_seconds = time.perf_counter() - start

    identical = all(
        fresh.detection == cached.detection
        for fresh, cached in zip(one_shot, resident)
    )
    print(f"one-shot: {one_shot_seconds:.4f} s for {len(requests)} requests")
    print(f"session:  {session_seconds:.4f} s for {len(requests)} requests")
    print(f"answers bit-identical: {identical}")

    for request, report in zip(requests, resident):
        sizes = [len(c.community) for c in report.detection.communities]
        print(f"  seeds {request}: community sizes {sizes}")


if __name__ == "__main__":
    main()
