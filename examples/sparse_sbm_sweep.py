"""Sweep the separation parameter q on sparse PPM graphs (the Figure 3 workload).

The paper's headline regime is community detection *near the connectivity
threshold*: intra-community density p = 2 log n / n, which is as sparse as a
connected community can be.  This example sweeps the inter-community
probability q from "very well separated" to "essentially merged" and shows
how the detection accuracy degrades, mirroring Figure 3.

Run with::

    python examples/sparse_sbm_sweep.py
"""

from __future__ import annotations

import math

from repro import RunConfig, detect, planted_partition_graph
from repro.graphs import mixing_parameter, ppm_expected_conductance
from repro.metrics import average_f_score


def main() -> None:
    n, num_blocks = 2048, 2
    p = 2 * math.log(n) / n
    q_values = {
        "0.1/n": 0.1 / n,
        "0.6/n": 0.6 / n,
        "2/n": 2.0 / n,
        "logn/n": math.log(n) / n,
    }

    print(f"Sparse PPM sweep: n={n}, r={num_blocks}, p=2log(n)/n={p:.5f}")
    print(f"{'q':>10}  {'p/q':>8}  {'escape prob/step':>17}  {'F-score':>8}")
    for label, q in q_values.items():
        ppm = planted_partition_graph(n, num_blocks, p, q, seed=1)
        delta = ppm_expected_conductance(n, num_blocks, p, q)
        detection = detect(
            ppm.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(seed=1, batch_size=1),
        ).detection
        f_score = average_f_score(detection, ppm.partition)
        escape = mixing_parameter(n, num_blocks, p, q)
        print(f"{label:>10}  {p / q:>8.1f}  {escape:>17.4f}  {f_score:>8.3f}")

    print(
        "\nTheorem 6 requires q = o(p / (r log(n/r))), i.e. p/q >> "
        f"{num_blocks * math.log(n / num_blocks):.0f} here; accuracy degrades as "
        "q approaches that threshold, exactly as Figure 3 shows."
    )


if __name__ == "__main__":
    main()
