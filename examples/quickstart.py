"""Quickstart: detect the planted communities of a stochastic block model graph.

Generates a small planted partition graph (two blocks), runs the CDRW
algorithm (Community Detection by Random Walks) through the unified
``repro.api.detect`` facade and prints the per-seed precision / recall /
F-score against the ground truth plus the structured run report.

Every execution backend — ``scalar``, ``batched``, ``parallel``,
``congest``, ``kmachine`` and the ``baseline:*`` methods — plugs into the
same call; swap the ``backend=`` argument to try them.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro import RunConfig, available_backends, detect, planted_partition_graph
from repro.graphs import ppm_expected_conductance
from repro.metrics import average_f_score, score_detection


def main() -> None:
    n, num_blocks = 1024, 2
    p = 2 * math.log(n) ** 2 / n      # intra-community edge probability
    q = 0.6 / n                        # inter-community edge probability

    print(f"Generating a PPM graph: n={n}, r={num_blocks}, p={p:.4f}, q={q:.6f}")
    ppm = planted_partition_graph(n, num_blocks, p, q, seed=0)
    print(f"  -> {ppm.graph.num_edges} edges, "
          f"average degree {ppm.graph.average_degree():.1f}")

    # The paper assumes the graph conductance Φ_G is known (it parameterises
    # the stopping rule); for a synthetic PPM instance the analytic value is
    # available in closed form.
    delta = ppm_expected_conductance(n, num_blocks, p, q)
    print(f"Stopping parameter δ = Φ_G ≈ {delta:.4f}")

    print(f"Registered backends: {', '.join(available_backends())}")
    report = detect(
        ppm.graph,
        backend="batched",
        delta_hint=delta,
        config=RunConfig(seed=0, batch_size=8),
    )
    detection = report.detection

    print(f"\nDetected {detection.num_communities} communities "
          f"(coverage {detection.coverage():.1%}) "
          f"in {report.timings['total_seconds']:.3f} s via '{report.backend}'")
    for score in score_detection(detection, ppm.partition):
        print(
            f"  seed {score.seed:4d}: detected {score.detected_size:4d} vertices, "
            f"precision {score.precision:.3f}, recall {score.recall:.3f}, "
            f"F-score {score.f_score:.3f}"
        )
    print(f"\nAverage F-score: {average_f_score(detection, ppm.partition):.3f}")

    # The report is a structured, JSON-serializable record of the run.
    print(f"Serialized report: {len(report.to_json())} bytes of JSON "
          f"(try report.to_json(indent=2))")


if __name__ == "__main__":
    main()
