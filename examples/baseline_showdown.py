"""Compare CDRW against the related-work baselines on the same SBM instance.

Runs CDRW, label propagation, averaging dynamics, the Clementi-style
two-community protocol, spectral clustering and Walktrap on one planted
partition graph, and prints accuracy and runtime side by side — the concrete
version of the comparison the paper's related-work section makes in prose.

Run with::

    python examples/baseline_showdown.py
"""

from __future__ import annotations

from repro.experiments import compare_baselines, render_experiment


def main() -> None:
    print("Two well-separated blocks (every method should do well):\n")
    table = compare_baselines(n=1024, num_blocks=2, p_spec="2log2n/n", q_spec="0.6/n", seed=0)
    print(render_experiment(table))

    print("\n\nFour blocks (the two-community protocols hit their structural limit):\n")
    table = compare_baselines(
        n=2048,
        num_blocks=4,
        p_spec="2log2n/n",
        q_spec="0.1/n",
        seed=1,
        methods=("cdrw", "averaging_dynamics", "clementi", "spectral", "label_propagation"),
    )
    print(render_experiment(table))


if __name__ == "__main__":
    main()
