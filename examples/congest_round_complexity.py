"""Measure the distributed cost of CDRW in the CONGEST model (Theorem 5).

The same detection that the quickstart runs centrally is executed here on the
CONGEST simulator: every BFS flooding round, probability-propagation round
and binary-search convergecast is charged, and the measured rounds/messages
are compared against the O(log^4 n) / Õ((n²/r)(p+q(r−1))) bounds of the paper.

Run with::

    python examples/congest_round_complexity.py
"""

from __future__ import annotations

import math

from repro import RunConfig, detect
from repro.congest import (
    message_bound_single_community,
    round_bound_single_community,
)
from repro.graphs import planted_partition_graph, ppm_expected_conductance


def main() -> None:
    num_blocks = 2
    print(f"{'n':>6} {'rounds':>10} {'log^4 n':>10} {'ratio':>7} "
          f"{'messages':>12} {'msg bound':>12} {'ratio':>7}")
    for n in (128, 256, 512, 1024):
        p = 2 * math.log(n) ** 2 / n
        q = 0.6 / n
        ppm = planted_partition_graph(n, num_blocks, p, q, seed=0)
        delta = ppm_expected_conductance(n, num_blocks, p, q)
        # The "congest" backend with one explicit seed reproduces the
        # single-community detection; the measured cost is the report's
        # (single) phase cost.
        report = detect(
            ppm.graph,
            backend="congest",
            delta_hint=delta,
            config=RunConfig(seeds=(0,)),
        )
        cost = report.total_cost

        round_bound = round_bound_single_community(n)
        message_bound = message_bound_single_community(n, num_blocks, p, q)
        print(
            f"{n:>6} {cost.rounds:>10} {round_bound:>10.0f} "
            f"{cost.rounds / round_bound:>7.1f} "
            f"{cost.messages:>12} {message_bound:>12.0f} "
            f"{cost.messages / message_bound:>7.2f}"
        )

    print(
        "\nThe measured/bound ratios stay roughly flat as n grows: the measured "
        "complexity follows the polylogarithmic round bound and the edge-"
        "proportional message bound of Theorem 5."
    )


if __name__ == "__main__":
    main()
