"""Tests for the pluggable CSR storage backends (``repro.graphs.storage``).

The contract: every backend (``dense`` in-RAM, ``shm`` shared-memory
segments, ``memmap`` disk-backed) holds the same three CSR arrays
bit-identically, pins them read-only, and routes through
``Graph.from_csr``/``csr_arrays`` as the universal interchange — so a graph
built under any ``REPRO_STORAGE`` behaves identically everywhere else in
the engine.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.api import RunConfig, detect
from repro.exceptions import GraphError
from repro.graphs import (
    Graph,
    planted_partition_graph,
    ppm_expected_conductance,
)
from repro.graphs.storage import (
    STORAGE_DENSE,
    STORAGE_ENV_VAR,
    STORAGE_MEMMAP,
    STORAGE_SHM,
    DenseStorage,
    MemmapStorage,
    SharedCSRStorage,
    resolve_storage,
    storage_from_arrays,
)

ALL_KINDS = (STORAGE_DENSE, STORAGE_SHM, STORAGE_MEMMAP)


@pytest.fixture(scope="module")
def ppm():
    n = 128
    p = 3 * math.log(n) ** 2 / n
    q = 1.0 / n
    instance = planted_partition_graph(n, 2, p, q, seed=7)
    delta = ppm_expected_conductance(n, 2, p, q)
    return instance, delta


def csr_of(graph: Graph) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    return graph.csr_arrays()


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
class TestResolveStorage:
    def test_default_is_dense(self, monkeypatch):
        monkeypatch.delenv(STORAGE_ENV_VAR, raising=False)
        assert resolve_storage(None) == STORAGE_DENSE

    def test_env_var_routes(self, monkeypatch):
        for kind in ALL_KINDS:
            monkeypatch.setenv(STORAGE_ENV_VAR, kind)
            assert resolve_storage(None) == kind

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(STORAGE_ENV_VAR, STORAGE_MEMMAP)
        assert resolve_storage(STORAGE_DENSE) == STORAGE_DENSE

    def test_unknown_kind_rejected(self):
        with pytest.raises(GraphError):
            resolve_storage("tape")

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(STORAGE_ENV_VAR, "punchcards")
        with pytest.raises(GraphError):
            resolve_storage(None)

    def test_dispatcher_rejects_unknown_kind(self, triangle_graph):
        indptr, indices, degrees = triangle_graph.csr_arrays()
        with pytest.raises(GraphError):
            storage_from_arrays("tape", 3, indptr, indices, degrees)


# ----------------------------------------------------------------------
# Backend equivalence: same arrays on every tier
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_graph_construction_bit_identical(self, ppm, monkeypatch, kind):
        instance, _ = ppm
        reference = csr_of(instance.graph)
        monkeypatch.setenv(STORAGE_ENV_VAR, kind)
        rebuilt = Graph.from_edge_array(
            instance.graph.num_vertices, instance.graph.edge_array()
        )
        assert rebuilt.storage_kind == kind
        for built, expected in zip(csr_of(rebuilt), reference):
            assert np.array_equal(built, expected)
            assert built.dtype == np.int64

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_arrays_are_read_only(self, ppm, monkeypatch, kind):
        instance, _ = ppm
        monkeypatch.setenv(STORAGE_ENV_VAR, kind)
        graph = Graph.from_edge_array(
            instance.graph.num_vertices, instance.graph.edge_array()
        )
        for array in csr_of(graph):
            assert not array.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                array[0] = -1

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_detection_identical_across_tiers(self, ppm, monkeypatch, kind):
        instance, delta = ppm
        base = detect(
            instance.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(seed=3, max_seeds=2),
        )
        monkeypatch.setenv(STORAGE_ENV_VAR, kind)
        rebuilt = Graph.from_edge_array(
            instance.graph.num_vertices, instance.graph.edge_array()
        )
        report = detect(
            rebuilt,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(seed=3, max_seeds=2),
        )
        assert report.detection == base.detection
        assert report.to_dict()["total_cost"] == base.to_dict()["total_cost"]

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_empty_and_edgeless_graphs(self, monkeypatch, kind):
        monkeypatch.setenv(STORAGE_ENV_VAR, kind)
        for n in (0, 5):
            graph = Graph(n, [])
            assert graph.num_vertices == n
            assert graph.num_edges == 0
            indptr, indices, degrees = csr_of(graph)
            assert indptr.shape == (n + 1,)
            assert indices.shape == (0,)
            assert degrees.shape == (n,)


# ----------------------------------------------------------------------
# The individual backends
# ----------------------------------------------------------------------
class TestDenseStorage:
    def test_zero_copy_and_pinned(self, triangle_graph):
        indptr, indices, degrees = triangle_graph.csr_arrays()
        storage = DenseStorage(
            3, indptr.copy(), indices.copy(), degrees.copy()
        )
        arrays = storage.arrays()
        for array, expected in zip(arrays, (indptr, indices, degrees)):
            assert np.array_equal(array, expected)
            assert not array.flags.writeable
        assert storage.kind == STORAGE_DENSE


class TestSharedCSRStorage:
    def test_attach_round_trips(self, triangle_graph):
        with SharedCSRStorage.from_graph(triangle_graph) as storage:
            attachment = storage.handle.attach()
            try:
                assert attachment.graph == triangle_graph
            finally:
                attachment.close()

    def test_close_unlinks_segments(self, triangle_graph):
        storage = SharedCSRStorage.from_graph(triangle_graph)
        handle = storage.handle
        storage.close()
        storage.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            handle.attach()

    def test_graph_on_shm_storage_reports_kind(self, triangle_graph, monkeypatch):
        monkeypatch.setenv(STORAGE_ENV_VAR, STORAGE_SHM)
        graph = Graph.from_edge_array(3, triangle_graph.edge_array())
        assert graph.storage_kind == STORAGE_SHM


class TestMemmapStorage:
    def test_materialize_round_trips(self, triangle_graph, tmp_path):
        indptr, indices, degrees = triangle_graph.csr_arrays()
        storage = MemmapStorage.materialize(3, indptr, indices, degrees)
        try:
            for array, expected in zip(
                storage.arrays(), (indptr, indices, degrees)
            ):
                assert np.array_equal(array, expected)
                assert not array.flags.writeable
        finally:
            storage.close()

    def test_save_load_detect_round_trip_bit_identical(self, ppm, tmp_path):
        """ISSUE acceptance: memmap save -> load -> detect pins the exact
        detection of the in-RAM graph."""
        from repro.graphs import read_csr_graph, write_csr_graph

        instance, delta = ppm
        base = detect(
            instance.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(seed=5, max_seeds=3, capture_distributions=True),
        )
        path = tmp_path / "round_trip.csr"
        write_csr_graph(instance.graph, path)
        mapped = read_csr_graph(path)
        assert mapped.storage_kind == STORAGE_MEMMAP
        report = detect(
            mapped,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(seed=5, max_seeds=3, capture_distributions=True),
        )
        assert report.detection == base.detection
        assert (
            report.artifacts["final_distributions"]
            == base.artifacts["final_distributions"]
        )

    def test_mapped_arrays_are_views_not_copies(self, ppm, tmp_path):
        from repro.graphs import read_csr_graph, write_csr_graph

        instance, _ = ppm
        path = tmp_path / "views.csr"
        write_csr_graph(instance.graph, path)
        mapped = read_csr_graph(path)
        _, indices, _ = mapped.csr_arrays()
        # The adjacency data is not duplicated into RAM-resident arrays.
        assert not indices.flags.owndata


# ----------------------------------------------------------------------
# Read-only CSR hardening: kernels must not write into graph storage
# ----------------------------------------------------------------------
class TestReadOnlyHardening:
    @pytest.mark.parametrize(
        "backend", ["scalar", "batched", "sharded", "congest", "kmachine"]
    )
    def test_backends_run_on_pinned_arrays(self, ppm, backend):
        """Every backend completes on a graph whose CSR arrays are
        write-protected — any kernel writing into graph storage would raise."""
        instance, delta = ppm
        graph = instance.graph
        for array in graph.csr_arrays():
            assert not array.flags.writeable
        config = RunConfig(seed=3, max_seeds=1, workers=2, num_machines=2)
        report = detect(graph, backend=backend, delta_hint=delta, config=config)
        assert report.detection.num_communities >= 1
