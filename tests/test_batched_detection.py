"""End-to-end equivalence of the batched CDRW driver with the sequential loop."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    CDRWParameters,
    detect_communities,
    detect_communities_batched,
    detect_community,
    detect_community_batch,
)
from repro.core.result import DetectionResult
from repro.exceptions import AlgorithmError
from repro.graphs import Graph


@pytest.fixture(scope="module")
def ppm():
    from repro.graphs import planted_partition_graph

    n = 256
    return planted_partition_graph(n, 2, 3 * math.log(n) ** 2 / n, 1.0 / n, seed=7)


class TestDetectCommunityBatch:
    def test_identical_to_scalar_map_on_ppm(self, ppm):
        seeds = [0, 10, 130, 200, 10]  # includes a duplicate
        batch = detect_community_batch(ppm.graph, seeds, delta_hint=0.05)
        for seed_vertex, result in zip(seeds, batch):
            assert result == detect_community(ppm.graph, seed_vertex, delta_hint=0.05)

    def test_identical_to_scalar_map_on_two_cliques(self, two_cliques_graph):
        parameters = CDRWParameters(initial_size=2)
        seeds = list(range(10))
        batch = detect_community_batch(
            two_cliques_graph, seeds, parameters, delta_hint=1 / 21
        )
        for seed_vertex, result in zip(seeds, batch):
            expected = detect_community(
                two_cliques_graph, seed_vertex, parameters, delta_hint=1 / 21
            )
            assert result == expected

    def test_empty_seed_list(self, two_cliques_graph):
        assert detect_community_batch(two_cliques_graph, []) == []

    def test_edgeless_graph_fast_path(self):
        graph = Graph(4, [])
        results = detect_community_batch(graph, [0, 3])
        assert [r.community for r in results] == [frozenset({0}), frozenset({3})]
        assert all(r.stop_reason == "graph has no edges" for r in results)

    def test_isolated_seed_matches_scalar(self):
        graph = Graph(5, [(1, 2), (2, 3)])
        batch = detect_community_batch(graph, [0, 2], delta_hint=0.1)
        assert batch[0] == detect_community(graph, 0, delta_hint=0.1)
        assert batch[1] == detect_community(graph, 2, delta_hint=0.1)

    def test_invalid_seed_rejected(self, two_cliques_graph):
        with pytest.raises(AlgorithmError):
            detect_community_batch(two_cliques_graph, [0, 99])


class TestDetectCommunitiesBatched:
    def test_fixed_seeds_identical_to_sequential_loop(self, ppm):
        """The satellite e2e guarantee: batched == sequential for fixed seeds."""
        seeds = [5, 60, 140, 250, 33, 199]
        sequential = DetectionResult(
            num_vertices=ppm.graph.num_vertices,
            communities=tuple(
                detect_community(ppm.graph, s, delta_hint=0.05) for s in seeds
            ),
        )
        for batch_size in (1, 2, 4, len(seeds), len(seeds) + 3):
            batched = detect_communities_batched(
                ppm.graph, delta_hint=0.05, seeds=seeds, batch_size=batch_size
            )
            assert batched == sequential

    def test_pool_mode_batch_size_one_identical_to_detect_communities(self, ppm):
        sequential = detect_communities(ppm.graph, delta_hint=0.05, seed=11)
        batched = detect_communities_batched(
            ppm.graph, delta_hint=0.05, seed=11, batch_size=1
        )
        assert batched == sequential

    def test_pool_mode_deterministic_and_covering(self, ppm):
        a = detect_communities_batched(ppm.graph, delta_hint=0.05, seed=4, batch_size=4)
        b = detect_communities_batched(ppm.graph, delta_hint=0.05, seed=4, batch_size=4)
        assert a == b
        covered = set()
        for result in a.communities:
            covered |= result.community
            covered.add(result.seed)
        assert covered == set(range(ppm.graph.num_vertices))

    def test_each_pool_result_matches_scalar_detection(self, ppm):
        detection = detect_communities_batched(
            ppm.graph, delta_hint=0.05, seed=9, batch_size=4
        )
        for result in detection.communities:
            assert result == detect_community(ppm.graph, result.seed, delta_hint=0.05)

    def test_max_seeds_cap(self, ppm):
        detection = detect_communities_batched(
            ppm.graph, delta_hint=0.05, seed=2, batch_size=4, max_seeds=3
        )
        assert len(detection.communities) <= 3

    def test_max_seeds_cap_with_explicit_seeds(self, ppm):
        detection = detect_communities_batched(
            ppm.graph, delta_hint=0.05, seeds=[1, 2, 3, 4], max_seeds=2, batch_size=8
        )
        assert [r.seed for r in detection.communities] == [1, 2]

    def test_empty_graph(self):
        detection = detect_communities_batched(Graph(0, []), batch_size=4)
        assert detection.communities == ()

    def test_invalid_batch_size(self, two_cliques_graph):
        with pytest.raises(AlgorithmError):
            detect_communities_batched(two_cliques_graph, batch_size=0)


class TestSeedDrawRegression:
    def test_pool_draw_sequence_matches_sorted_set_semantics(self, ppm):
        """The boolean-mask pool must draw the exact seeds `sorted(set)` drew.

        Replays the original implementation (a Python set pool, sorted before
        every draw) next to `detect_communities` with the same RNG seed and
        asserts the drawn seed sequence is identical.
        """
        rng = np.random.default_rng(11)
        pool = set(range(ppm.graph.num_vertices))
        expected_order = []
        while pool:
            seed_vertex = int(rng.choice(sorted(pool)))
            result = detect_community(ppm.graph, seed_vertex, delta_hint=0.05)
            expected_order.append(seed_vertex)
            detected = result.community if result.community else frozenset({seed_vertex})
            pool.difference_update(detected)
            pool.discard(seed_vertex)

        detection = detect_communities(ppm.graph, delta_hint=0.05, seed=11)
        assert [r.seed for r in detection.communities] == expected_order
