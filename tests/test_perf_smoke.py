"""Performance smoke guard for the vectorized hot paths.

Constructs a 100k-edge graph and advances a 64-seed batched walk one step
under a *very* generous wall-clock ceiling.  The point is not to measure
speed (``benchmarks/bench_graph_kernel.py`` does that) but to fail loudly if
a future change accidentally reintroduces a per-edge or per-seed Python loop
— the scalar paths take tens of seconds at this size, the vectorized paths
well under a second.

Deselect with ``-m "not perf"`` if the suite must run on heavily loaded CI.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.graphs import Graph
from repro.randomwalk import BatchedWalkDistribution

NUM_VERTICES = 50_000
NUM_EDGES = 100_000
NUM_SEEDS = 64
#: Generous ceilings (seconds); the vectorized paths run ~100x faster.
CONSTRUCTION_CEILING = 10.0
WALK_STEP_CEILING = 10.0


@pytest.mark.perf
def test_100k_edge_construction_and_batched_step_under_ceiling():
    rng = np.random.default_rng(0)
    edges = rng.integers(0, NUM_VERTICES, size=(NUM_EDGES, 2), dtype=np.int64)
    edges = edges[edges[:, 0] != edges[:, 1]]

    start = time.perf_counter()
    graph = Graph.from_edge_array(NUM_VERTICES, edges)
    construction_seconds = time.perf_counter() - start
    assert graph.num_edges > 0
    assert construction_seconds < CONSTRUCTION_CEILING, (
        f"100k-edge construction took {construction_seconds:.2f}s "
        f"(ceiling {CONSTRUCTION_CEILING}s) — did a Python loop sneak back in?"
    )

    seeds = rng.integers(0, NUM_VERTICES, size=NUM_SEEDS).tolist()
    start = time.perf_counter()
    walk = BatchedWalkDistribution(graph, seeds)
    walk.step()
    step_seconds = time.perf_counter() - start
    assert step_seconds < WALK_STEP_CEILING, (
        f"64-seed batched walk advance took {step_seconds:.2f}s "
        f"(ceiling {WALK_STEP_CEILING}s) — did a per-seed loop sneak back in?"
    )
