"""Scalar ↔ vectorized equivalence suite.

The vectorized graph kernels (CSR construction, subset operations,
``edge_array``) and the batched walk substrate must produce results
*identical* to the original scalar implementations preserved in
:mod:`repro.graphs.reference`.  This module sweeps random graphs across
sizes and densities plus adversarial shapes (empty, single edge, star,
clique, path, disconnected) and asserts exact agreement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph
from repro.graphs.reference import (
    scalar_csr_arrays,
    scalar_cut_size,
    scalar_edge_array,
    scalar_induced_edge_count,
    scalar_induced_subgraph_edges,
)
from repro.randomwalk import reverse_transition_matrix, transition_matrix


def _random_graph_cases():
    """Random (n, edge list) cases across sizes and densities."""
    rng = np.random.default_rng(20240517)
    cases = []
    for n in (1, 2, 3, 5, 8, 13, 21, 40, 77):
        for density in (0.0, 0.1, 0.5, 1.5, 3.0):
            m = int(density * n)
            edges = rng.integers(0, n, size=(m, 2))
            edges = edges[edges[:, 0] != edges[:, 1]]
            cases.append((n, edges))
    return cases


def _edge_case_graphs():
    star = [(0, i) for i in range(1, 8)]
    clique = [(i, j) for i in range(6) for j in range(i + 1, 6)]
    path = [(i, i + 1) for i in range(7)]
    return [
        ("empty", 5, []),
        ("single-edge", 2, [(0, 1)]),
        ("single-edge-large", 9, [(3, 7)]),
        ("star", 8, star),
        ("clique", 6, clique),
        ("path", 8, path),
        ("disconnected", 10, [(0, 1), (2, 3), (8, 9)]),
        ("duplicates", 4, [(0, 1), (1, 0), (0, 1), (2, 3)]),
    ]


def _subsets_for(n: int, rng: np.random.Generator):
    subsets = [[], list(range(n))]
    if n >= 1:
        subsets.append([0])
        subsets.append([n - 1])
    if n >= 2:
        half = rng.permutation(n)[: n // 2].tolist()
        subsets.append(half)
        subsets.append(rng.permutation(n)[: max(1, n // 3)].tolist())
    return subsets


def _assert_graph_equivalent(n: int, edges) -> None:
    graph = Graph(n, edges)
    edge_tuples = [tuple(int(x) for x in e) for e in np.asarray(edges).reshape(-1, 2)]
    num_edges, degrees, indptr, indices = scalar_csr_arrays(n, edge_tuples)
    assert graph.num_edges == num_edges
    assert np.array_equal(graph.degrees(), degrees)
    assert np.array_equal(graph._indptr, indptr)
    assert np.array_equal(graph._indices, indices)
    assert np.array_equal(graph.edge_array(), scalar_edge_array(graph))

    rng = np.random.default_rng(n * 7919 + num_edges)
    for subset in _subsets_for(n, rng):
        assert graph.cut_size(subset) == scalar_cut_size(graph, subset)
        assert graph.induced_edge_count(subset) == scalar_induced_edge_count(graph, subset)
        if subset:
            sub_n, sub_edges, expected_mapping = scalar_induced_subgraph_edges(graph, subset)
            subgraph, mapping = graph.induced_subgraph(subset)
            assert mapping == expected_mapping
            assert subgraph == Graph(sub_n, sub_edges)


@pytest.mark.parametrize("n,edges", _random_graph_cases())
def test_random_graphs_match_scalar_reference(n, edges):
    _assert_graph_equivalent(n, edges)


@pytest.mark.parametrize("name,n,edges", _edge_case_graphs())
def test_edge_case_graphs_match_scalar_reference(name, n, edges):
    _assert_graph_equivalent(n, edges)


def test_edge_array_round_trips_through_constructor():
    rng = np.random.default_rng(5)
    edges = rng.integers(0, 30, size=(60, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    graph = Graph(30, edges)
    rebuilt = Graph.from_edge_array(30, graph.edge_array())
    assert rebuilt == graph


def test_ndarray_and_tuple_constructors_agree():
    rng = np.random.default_rng(6)
    edges = rng.integers(0, 25, size=(50, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    from_array = Graph(25, edges)
    from_tuples = Graph(25, [tuple(e) for e in edges.tolist()])
    assert from_array == from_tuples


def test_reverse_transition_matrix_matches_transpose_construction():
    """The direct A·D⁻¹ assembly must be bit-identical to the seed's Pᵀ."""
    rng = np.random.default_rng(7)
    for n, m in ((2, 1), (10, 15), (50, 120)):
        edges = rng.integers(0, n, size=(m, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        if len(edges) == 0:
            continue
        graph = Graph(n, edges)
        direct = reverse_transition_matrix(graph)
        transposed = transition_matrix(graph).T.tocsr()
        assert (direct != transposed).nnz == 0
        probe = rng.random(n)
        assert np.array_equal(direct @ probe, transposed @ probe)


def test_reverse_transition_matrix_does_not_alias_adjacency_cache():
    graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
    operator = reverse_transition_matrix(graph)
    original = graph.adjacency_matrix().indices.copy()
    operator.indices[0] = 3  # deliberate in-place vandalism
    assert np.array_equal(graph.adjacency_matrix().indices, original)
