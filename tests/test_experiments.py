"""Tests for the experiment harness (runner, figure grids, complexity, reporting, CLI)."""

from __future__ import annotations

import math

import pytest

from repro.cli import main
from repro.exceptions import ExperimentError
from repro.experiments import (
    PROBABILITY_SPECS,
    RATIO_SPECS,
    ExperimentTable,
    compare_baselines,
    congest_scaling,
    figure1_stats,
    figure2_grid,
    figure3_grid,
    figure4a_grid,
    figure4b_grid,
    format_table,
    kmachine_scaling,
    parallel_detection_scaling,
    render_experiment,
    run_trials,
)
from repro.experiments.runner import TrialAggregate


class TestRunner:
    def test_run_trials_aggregates(self):
        aggregate = run_trials(lambda rng: float(rng.integers(10)), num_trials=5, seed=0)
        assert len(aggregate) == 5
        assert aggregate.minimum <= aggregate.mean <= aggregate.maximum

    def test_run_trials_reproducible(self):
        a = run_trials(lambda rng: float(rng.random()), 3, seed=2)
        b = run_trials(lambda rng: float(rng.random()), 3, seed=2)
        assert a.values == b.values

    def test_run_trials_validation(self):
        with pytest.raises(ExperimentError):
            run_trials(lambda rng: 1.0, 0)
        with pytest.raises(ExperimentError):
            run_trials(lambda rng: float("nan"), 1, seed=0)

    def test_trial_aggregate_statistics(self):
        aggregate = TrialAggregate(values=(1.0, 2.0, 3.0))
        assert aggregate.mean == pytest.approx(2.0)
        assert aggregate.std == pytest.approx(math.sqrt(2 / 3))

    def test_experiment_table_columns_and_series(self):
        table = ExperimentTable(name="t", description="d")
        table.add_row({"n": 10}, {"f": 0.5})
        table.add_row({"n": 20}, {"f": 0.9, "extra": 1.0})
        parameters, measurements = table.columns()
        assert parameters == ["n"]
        assert measurements == ["f", "extra"]
        assert table.series("f") == [0.5, 0.9]


class TestParameterSpecs:
    def test_probability_specs_evaluate(self):
        n = 2048
        assert PROBABILITY_SPECS["2logn/n"](n) == pytest.approx(2 * math.log(n) / n)
        assert PROBABILITY_SPECS["0.6/n"](n) == pytest.approx(0.6 / n)

    def test_ratio_specs_evaluate(self):
        n = 8192
        assert RATIO_SPECS["1.2log2^2(n)"](n) == pytest.approx(1.2 * math.log2(n) ** 2)

    def test_specs_reject_tiny_n(self):
        with pytest.raises(ExperimentError):
            PROBABILITY_SPECS["2logn/n"](1)


class TestFigureGrids:
    def test_figure1_stats_structure(self):
        table = figure1_stats(n=200, num_blocks=4, p=0.2, q=0.01, seed=0)
        assert len(table.rows) == 4
        for row in table.rows:
            assert row.measurements["intra_edges"] > row.measurements["inter_edges"]

    def test_figure2_small_grid_high_accuracy(self):
        table = figure2_grid(sizes=(128, 256), p_specs=("2log2n/n",), trials=1, seed=0)
        assert len(table.rows) == 2
        assert all(row.measurements["f_score"] > 0.9 for row in table.rows)

    def test_figure3_small_grid(self):
        table = figure3_grid(
            n=256, p_specs=("2log2n/n",), q_specs=("0.1/n", "logn/n"), trials=1, seed=0
        )
        assert len(table.rows) == 2
        easy = table.rows[0].measurements["f_score"]
        hard = table.rows[1].measurements["f_score"]
        assert easy > 0.8
        assert easy >= hard - 0.05

    def test_figure4a_small_grid(self):
        table = figure4a_grid(
            block_counts=(2,), community_size=128, ratio_specs=("1.2log2^2(n)",),
            trials=1, seed=0,
        )
        assert len(table.rows) == 1
        assert table.rows[0].measurements["f_score"] > 0.7

    def test_figure4b_uses_fixed_total_size(self):
        table = figure4b_grid(
            block_counts=(2, 4), total_size=256, ratio_specs=("1.2log2^2(n)",),
            trials=1, seed=0,
        )
        assert all(row.parameters["n"] == 256 for row in table.rows)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ExperimentError):
            figure2_grid(sizes=(128,), p_specs=("bogus",), trials=1)


class TestComplexityExperiments:
    def test_congest_scaling_rows(self):
        table = congest_scaling(sizes=(128, 256), seed=0)
        assert len(table.rows) == 2
        small, large = table.rows
        assert large.measurements["rounds"] > 0
        assert large.measurements["messages"] > small.measurements["messages"]

    def test_kmachine_scaling_monotone(self):
        table = kmachine_scaling(n=256, machine_counts=(2, 4, 8), seed=0)
        rounds = table.series("rounds")
        assert rounds[0] > rounds[1] > rounds[2]
        predictions = table.series("conversion_prediction")
        assert predictions[0] > predictions[-1]


class TestBaselineComparison:
    def test_compare_all_methods(self):
        table = compare_baselines(n=256, num_blocks=2, seed=0)
        methods = [row.parameters["method"] for row in table.rows]
        assert "cdrw" in methods and "spectral" in methods
        for row in table.rows:
            assert 0.0 <= row.measurements["f_score"] <= 1.0
            assert row.measurements["runtime_seconds"] >= 0.0

    def test_subset_of_methods(self):
        table = compare_baselines(n=256, num_blocks=2, seed=0, methods=("cdrw", "spectral"))
        assert len(table.rows) == 2

    def test_unknown_method_rejected(self):
        with pytest.raises(ExperimentError):
            compare_baselines(n=128, methods=("bogus",))


class TestParallelDetectionScaling:
    def test_rows_disjoint_and_accurate(self):
        table = parallel_detection_scaling(
            n=256, num_blocks=2, seed_counts=(1, 2), seed=0
        )
        assert [row.parameters["r"] for row in table.rows] == [1, 2]
        for row in table.rows:
            assert row.measurements["disjoint"] == 1.0
            assert row.measurements["parallel_seconds"] > 0.0
            assert 0.0 <= row.measurements["f_score"] <= 1.0
            assert 1 <= row.measurements["communities"] <= row.parameters["r"]

    def test_empty_seed_counts_rejected(self):
        with pytest.raises(ExperimentError):
            parallel_detection_scaling(n=128, seed_counts=())
        with pytest.raises(ExperimentError):
            parallel_detection_scaling(n=128, seed_counts=(0,))


class TestReportingAndCli:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_experiment(self):
        table = ExperimentTable(name="demo", description="demo table")
        table.add_row({"n": 128}, {"f_score": 0.987654})
        text = render_experiment(table)
        assert "demo" in text
        assert "0.9877" in text

    def test_render_empty_table(self):
        table = ExperimentTable(name="empty", description="no rows")
        assert "(no rows)" in render_experiment(table)

    def test_cli_figure1(self, capsys):
        exit_code = main(["figure1", "--n", "100", "--blocks", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "figure1" in captured.out

    def test_cli_kmachine(self, capsys):
        exit_code = main(["kmachine", "--n", "128", "--machines", "2", "4"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "kmachine_scaling" in captured.out

    def test_cli_parallel(self, capsys):
        exit_code = main(["parallel", "--n", "256", "--blocks", "2", "--seed-counts", "1", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "parallel_detection_scaling" in captured.out

    def test_cli_detect_summary(self, capsys):
        exit_code = main(["detect", "--backend", "batched", "--n", "128", "--blocks", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "backend=batched" in captured.out
        assert "f_score" in captured.out

    def test_cli_detect_json_is_a_run_report(self, capsys):
        import json

        exit_code = main(
            ["detect", "--backend", "congest", "--n", "128", "--max-seeds", "1", "--json"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["backend"] == "congest"
        assert payload["total_cost"]["rounds"] > 0

    def test_cli_detect_list_backends(self, capsys):
        exit_code = main(["detect", "--list-backends"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in ("scalar", "batched", "congest", "kmachine", "baseline:spectral"):
            assert name in captured.out

    def test_cli_detect_unknown_backend_exits_nonzero(self, capsys):
        exit_code = main(["detect", "--backend", "bogus", "--n", "64"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "available backends" in captured.err
        for name in ("scalar", "batched", "parallel"):
            assert name in captured.err

    def test_cli_seed_accepted_after_subcommand(self, capsys):
        """`repro detect --seed 5` used to die with 'unrecognized arguments'."""
        exit_code = main(["detect", "--seed", "5", "--n", "128", "--blocks", "2"])
        after = capsys.readouterr()
        assert exit_code == 0
        exit_code = main(["--seed", "5", "detect", "--n", "128", "--blocks", "2"])
        before = capsys.readouterr()
        assert exit_code == 0
        # Same seed, same graph, same result — wherever the flag is placed.
        assert after.out.splitlines()[:3] == before.out.splitlines()[:3]

    def test_cli_top_level_seed_not_clobbered_by_subparser_default(self, capsys):
        main(["--seed", "5", "detect", "--n", "128", "--blocks", "2"])
        seeded = capsys.readouterr()
        main(["detect", "--n", "128", "--blocks", "2"])
        default = capsys.readouterr()
        # Seed 5 generates a different PPM instance than the default seed 0,
        # so the graph lines must differ (the old parser silently reset the
        # top-level --seed to the subparser default).
        assert seeded.out.splitlines()[1] != default.out.splitlines()[1]

    def test_cli_detect_process_executor(self, capsys):
        exit_code = main(
            [
                "detect",
                "--n", "128",
                "--blocks", "2",
                "--executor", "process",
                "--workers", "2",
                "--max-seeds", "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "backend=batched" in captured.out

    def test_cli_process_experiment(self, capsys):
        exit_code = main(
            [
                "process",
                "--n", "128",
                "--blocks", "2",
                "--num-seeds", "4",
                "--worker-counts", "1", "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "process_detection_scaling" in captured.out
