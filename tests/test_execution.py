"""The multi-core execution layer: pool helpers and worker-count invariance.

The contract under test is the one the threaded kernels are built on
(:mod:`repro.execution`): the ``workers`` knob may only move wall-clock
time, never a single output bit.  Batched walks, the batched mixing-set
search, batched detection and parallel detection are therefore asserted
**bit-identical** across ``workers ∈ {1, 2, 4}`` and against their scalar
references; the float32 fast path of the search — explicitly outside the
exactness guarantee — is asserted ≈-close instead.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    BatchedMixingSetSearch,
    MixingSetSearch,
    block_ranges,
    detect_communities_parallel,
    detect_community,
    detect_community_batch,
    parallel_map_blocks,
    resolve_workers,
)
from repro.exceptions import AlgorithmError, ReproError
from repro.execution import WORKERS_ENV_VAR
from repro.graphs import Graph, planted_partition_graph, ppm_expected_conductance
from repro.randomwalk import BatchedWalkDistribution, WalkDistribution
from repro.utils import log_size

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def ppm():
    n = 512
    p = 3 * math.log(n) ** 2 / n
    return planted_partition_graph(n, 4, p, 1.0 / n, seed=11)


@pytest.fixture(scope="module")
def search_case():
    """A noisy graph plus a 33-column distribution matrix (non-multiple of 2/4)."""
    rng = np.random.default_rng(5)
    n = 1500
    edges = rng.integers(0, n, size=(8000, 2), dtype=np.int64)
    graph = Graph.from_edge_array(n, edges[edges[:, 0] != edges[:, 1]])
    walk = BatchedWalkDistribution(graph, rng.integers(0, n, size=33).tolist())
    walk.step(6)
    return graph, np.array(walk.probabilities())


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(None) == 1

    def test_explicit_count_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        assert resolve_workers(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        assert resolve_workers(None) == 2

    def test_zero_means_all_cores(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_invalid_values_raise(self, monkeypatch):
        with pytest.raises(ReproError):
            resolve_workers(-1)
        monkeypatch.setenv(WORKERS_ENV_VAR, "not-a-number")
        with pytest.raises(ReproError):
            resolve_workers(None)


class TestBlockRanges:
    def test_exact_partition_in_order(self):
        for count in (0, 1, 5, 64, 65):
            for blocks in (1, 2, 4, 100):
                ranges = block_ranges(count, blocks)
                flattened = [i for start, stop in ranges for i in range(start, stop)]
                assert flattened == list(range(count))
                assert len(ranges) <= blocks
                if ranges:
                    sizes = [stop - start for start, stop in ranges]
                    assert max(sizes) - min(sizes) <= 1

    def test_validation(self):
        with pytest.raises(ReproError):
            block_ranges(-1, 2)
        with pytest.raises(ReproError):
            block_ranges(4, 0)


class TestParallelMapBlocks:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_results_in_block_order(self, workers):
        results = parallel_map_blocks(lambda start, stop: (start, stop), 10, workers)
        assert results == block_ranges(10, workers)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_disjoint_slice_writes_cover_everything(self, workers):
        out = np.zeros(97, dtype=np.int64)

        def fill(start, stop):
            out[start:stop] = np.arange(start, stop)

        parallel_map_blocks(fill, out.size, workers)
        assert np.array_equal(out, np.arange(out.size))

    def test_exceptions_propagate(self):
        def boom(start, stop):
            raise ValueError("block failed")

        with pytest.raises(ValueError, match="block failed"):
            parallel_map_blocks(boom, 8, 2)


class TestThreadedWalkInvariance:
    @pytest.mark.parametrize("lazy", [False, True])
    def test_bit_identical_across_workers_and_to_scalar(self, ppm, lazy):
        seeds = [0, 101, 300, 499, 101]
        reference = [WalkDistribution(ppm.graph, s, lazy=lazy) for s in seeds]
        walks = {
            w: BatchedWalkDistribution(ppm.graph, seeds, lazy=lazy, workers=w)
            for w in WORKER_COUNTS
        }
        for _ in range(10):
            for walk in reference:
                walk.step()
            for w, batched in walks.items():
                batched.step()
                assert np.array_equal(
                    batched.probabilities(), walks[1].probabilities()
                ), f"workers={w} diverged from the serial path"
            for j, walk in enumerate(reference):
                assert np.array_equal(walks[4].column(j), walk.probabilities())

    def test_workers_survive_retain(self, ppm):
        walk = BatchedWalkDistribution(ppm.graph, [1, 2, 3, 4, 5], workers=4)
        walk.step(3)
        walk.retain([0, 2, 4])
        serial = BatchedWalkDistribution(ppm.graph, [1, 3, 5], workers=1)
        serial.step(3)
        walk.step(2)
        serial.step(2)
        assert np.array_equal(walk.probabilities(), serial.probabilities())

    def test_per_block_buffers_are_contiguous(self, ppm):
        """The threaded step must see C-contiguous SpMM inputs.

        The distributions are stored as per-worker-block buffers precisely so
        scipy's SpMM gets contiguous input (its ``ravel`` is then a view, not
        a strided-entry copy).  One worker keeps the single-matrix layout.
        """
        threaded = BatchedWalkDistribution(ppm.graph, list(range(10)), workers=3)
        serial = BatchedWalkDistribution(ppm.graph, list(range(10)), workers=1)
        assert len(threaded._blocks) == 3
        assert len(serial._blocks) == 1
        threaded.step(4)
        serial.step(4)
        for block in threaded._blocks:
            assert block.flags["C_CONTIGUOUS"]
        assert np.array_equal(threaded.probabilities(), serial.probabilities())
        threaded.retain([1, 4, 7, 9])
        for block in threaded._blocks:
            assert block.flags["C_CONTIGUOUS"]

    def test_columns_and_mass_match_across_layouts(self, ppm):
        threaded = BatchedWalkDistribution(ppm.graph, [3, 7, 11, 13, 17], workers=4)
        serial = BatchedWalkDistribution(ppm.graph, [3, 7, 11, 13, 17], workers=1)
        threaded.step(5)
        serial.step(5)
        subset = [0, 50, 100, 150]
        assert np.array_equal(
            threaded.columns([0, 2, 4]), serial.columns([0, 2, 4])
        )
        assert np.array_equal(threaded.mass_in(subset), serial.mass_in(subset))
        threaded.restart()
        serial.restart()
        assert np.array_equal(threaded.probabilities(), serial.probabilities())


class TestVectorizedSourceValidation:
    def test_empty_sources_message_unchanged(self, ppm):
        with pytest.raises(Exception, match="at least one source vertex"):
            BatchedWalkDistribution(ppm.graph, [])

    def test_first_offending_source_reported(self, ppm):
        with pytest.raises(Exception, match="source 9999 is not a vertex"):
            BatchedWalkDistribution(ppm.graph, [3, 9999, -1])
        with pytest.raises(Exception, match="source -1 is not a vertex"):
            BatchedWalkDistribution(ppm.graph, [3, -1, 9999])

    def test_large_batches_accept_arrays(self, ppm):
        sources = np.arange(ppm.graph.num_vertices, dtype=np.int64)
        walk = BatchedWalkDistribution(ppm.graph, sources)
        assert walk.num_walks == ppm.graph.num_vertices
        assert walk.sources[:3] == (0, 1, 2)


class TestThreadedSearchInvariance:
    @pytest.mark.parametrize("stop_at_first_failure", [False, True])
    def test_equal_across_workers_and_to_scalar(self, search_case, stop_at_first_failure):
        graph, distributions = search_case
        initial = log_size(graph.num_vertices)
        scalar = MixingSetSearch(
            graph, initial_size=initial, stop_at_first_failure=stop_at_first_failure
        )
        reference = [
            scalar.largest_mixing_set(np.ascontiguousarray(distributions[:, j]), 6)
            for j in range(distributions.shape[1])
        ]
        for workers in WORKER_COUNTS:
            batched = BatchedMixingSetSearch(
                graph,
                initial_size=initial,
                stop_at_first_failure=stop_at_first_failure,
                workers=workers,
            )
            assert batched.largest_mixing_sets(distributions, 6) == reference, (
                f"workers={workers} diverged from the scalar search"
            )

    def test_float32_fast_path_is_close_not_exact(self, search_case):
        graph, distributions = search_case
        initial = log_size(graph.num_vertices)
        exact = BatchedMixingSetSearch(graph, initial_size=initial)
        fast = BatchedMixingSetSearch(
            graph, initial_size=initial, workers=2, dtype=np.float32
        )
        assert fast.dtype == np.dtype(np.float32)
        exact_results = exact.largest_mixing_sets(distributions, 6)
        fast_results = fast.largest_mixing_sets(distributions, 6)
        for fast_result, exact_result in zip(fast_results, exact_results):
            assert fast_result.sizes_examined == exact_result.sizes_examined
            assert np.isclose(fast_result.deficit, exact_result.deficit, rtol=1e-4, atol=1e-5)
            assert np.isclose(fast_result.mass, exact_result.mass, rtol=1e-4, atol=1e-5)

    def test_float32_width_one_uses_batched_precision(self, search_case):
        graph, distributions = search_case
        initial = log_size(graph.num_vertices)
        fast = BatchedMixingSetSearch(graph, initial_size=initial, dtype=np.float32)
        wide = fast.largest_mixing_sets(distributions[:, :2], 6)[0]
        narrow = fast.largest_mixing_sets(distributions[:, :1], 6)[0]
        assert narrow == wide

    def test_rejects_unknown_dtype(self, search_case):
        graph, _ = search_case
        with pytest.raises(AlgorithmError, match="float64 or float32"):
            BatchedMixingSetSearch(graph, initial_size=4, dtype=np.int32)


class TestThreadedDetectionInvariance:
    def test_batched_detection_matches_scalar_at_every_worker_count(self, ppm):
        delta = ppm_expected_conductance(512, 4, 3 * math.log(512) ** 2 / 512, 1.0 / 512)
        seeds = [7, 130, 260, 400, 505]
        reference = [
            detect_community(ppm.graph, s, delta_hint=delta) for s in seeds
        ]
        for workers in WORKER_COUNTS:
            results = detect_community_batch(
                ppm.graph, seeds, delta_hint=delta, workers=workers
            )
            assert results == reference, f"workers={workers} changed a detection"

    def test_parallel_detection_identical_across_worker_counts(self, ppm):
        delta = ppm_expected_conductance(512, 4, 3 * math.log(512) ** 2 / 512, 1.0 / 512)
        detections = [
            detect_communities_parallel(
                ppm.graph, 4, delta_hint=delta, seed=3, workers=workers
            )
            for workers in WORKER_COUNTS
        ]
        assert detections[0] == detections[1] == detections[2]

    def test_env_override_reaches_the_kernels(self, ppm, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        walk = BatchedWalkDistribution(ppm.graph, [1, 2, 3])
        assert walk.workers == 2
        search = BatchedMixingSetSearch(ppm.graph, initial_size=4)
        assert search.workers == 2
