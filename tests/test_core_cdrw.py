"""Tests for the CDRW algorithm itself (single seed, pool loop, parallel variant)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    CDRWParameters,
    detect_communities,
    detect_communities_parallel,
    detect_community,
    select_spread_seeds,
)
from repro.exceptions import AlgorithmError
from repro.graphs import Graph, Partition, gnp_random_graph, ppm_expected_conductance
from repro.metrics import average_f_score, community_f_score, score_detection


class TestDetectCommunity:
    def test_clique_detected_from_any_seed(self, two_cliques_graph):
        for seed_vertex in (0, 3, 7):
            result = detect_community(
                two_cliques_graph, seed_vertex, CDRWParameters(initial_size=2), delta_hint=1 / 21
            )
            expected = set(range(5)) if seed_vertex < 5 else set(range(5, 10))
            assert seed_vertex in result.community
            assert community_f_score(result.community, expected) > 0.8

    def test_gnp_detected_as_single_community(self, small_gnp_graph):
        result = detect_community(small_gnp_graph, 0, delta_hint=0.0)
        assert result.size > 0.9 * small_gnp_graph.num_vertices

    def test_ppm_block_detected(self, small_ppm):
        graph, truth = small_ppm.graph, small_ppm.partition
        n = graph.num_vertices
        delta = ppm_expected_conductance(n, 2, small_ppm.intra_probability, small_ppm.inter_probability)
        result = detect_community(graph, 10, delta_hint=delta)
        assert community_f_score(result.community, truth.community_containing(10)) > 0.85

    def test_history_recorded_and_seed_included(self, small_ppm):
        result = detect_community(small_ppm.graph, 3, delta_hint=0.05)
        assert len(result.history) == result.walk_length
        assert 3 in result.community
        assert result.delta >= 0.02

    def test_isolated_seed_is_own_community(self):
        graph = Graph(5, [(1, 2), (2, 3)])
        result = detect_community(graph, 0, delta_hint=0.1)
        assert result.community == frozenset({0})

    def test_edgeless_graph(self):
        result = detect_community(Graph(3, []), 1)
        assert result.community == frozenset({1})
        assert result.stop_reason == "graph has no edges"

    def test_invalid_seed_vertex(self, two_cliques_graph):
        with pytest.raises(AlgorithmError):
            detect_community(two_cliques_graph, 99)

    def test_explicit_delta_parameter_wins(self, two_cliques_graph):
        parameters = CDRWParameters(delta=0.5, initial_size=2)
        result = detect_community(two_cliques_graph, 0, parameters, delta_hint=0.01)
        assert result.delta == 0.5

    def test_tight_budget_falls_back_to_last_found(self, small_gnp_graph):
        parameters = CDRWParameters(max_walk_length=2)
        result = detect_community(small_gnp_graph, 0, parameters, delta_hint=0.0)
        assert result.walk_length <= 2
        assert 0 in result.community


class TestDetectCommunities:
    def test_two_cliques_full_detection(self, two_cliques_graph):
        detection = detect_communities(
            two_cliques_graph, CDRWParameters(initial_size=2), delta_hint=1 / 21, seed=1
        )
        truth = Partition.from_labels([0] * 5 + [1] * 5)
        assert average_f_score(detection, truth) > 0.8
        assert detection.coverage() == 1.0

    def test_ppm_detection_accuracy(self, small_ppm):
        graph, truth = small_ppm.graph, small_ppm.partition
        delta = ppm_expected_conductance(
            graph.num_vertices, 2, small_ppm.intra_probability, small_ppm.inter_probability
        )
        detection = detect_communities(graph, delta_hint=delta, seed=3)
        assert average_f_score(detection, truth) > 0.85
        scores = score_detection(detection, truth)
        assert all(score.precision > 0.7 for score in scores)

    def test_four_block_ppm(self, medium_ppm):
        graph, truth = medium_ppm.graph, medium_ppm.partition
        delta = ppm_expected_conductance(
            graph.num_vertices, 4, medium_ppm.intra_probability, medium_ppm.inter_probability
        )
        detection = detect_communities(graph, delta_hint=delta, seed=5)
        assert average_f_score(detection, truth) > 0.8

    def test_deterministic_given_seed(self, small_ppm):
        a = detect_communities(small_ppm.graph, delta_hint=0.05, seed=11)
        b = detect_communities(small_ppm.graph, delta_hint=0.05, seed=11)
        assert a.detected_sets() == b.detected_sets()

    def test_max_seeds_caps_detections(self, small_ppm):
        detection = detect_communities(small_ppm.graph, delta_hint=0.05, seed=2, max_seeds=1)
        assert detection.num_communities == 1

    def test_every_vertex_covered(self, small_ppm):
        detection = detect_communities(small_ppm.graph, delta_hint=0.05, seed=2)
        assert detection.coverage() == 1.0

    def test_to_partition_is_disjoint(self, small_ppm):
        detection = detect_communities(small_ppm.graph, delta_hint=0.05, seed=2)
        partition = detection.to_partition()
        assert partition.num_vertices == small_ppm.graph.num_vertices


class TestParallelVariant:
    def test_spread_seeds_distinct(self, small_ppm):
        seeds = select_spread_seeds(small_ppm.graph, 4, seed=0)
        assert len(seeds) == len(set(seeds)) == 4

    def test_spread_seeds_validation(self, two_cliques_graph):
        with pytest.raises(AlgorithmError):
            select_spread_seeds(two_cliques_graph, 0)
        with pytest.raises(AlgorithmError):
            select_spread_seeds(two_cliques_graph, 99)

    def test_parallel_detection_on_ppm(self, small_ppm):
        graph, truth = small_ppm.graph, small_ppm.partition
        delta = ppm_expected_conductance(
            graph.num_vertices, 2, small_ppm.intra_probability, small_ppm.inter_probability
        )
        detection = detect_communities_parallel(
            graph, num_communities=2, delta_hint=delta, seed=4
        )
        assert 1 <= detection.num_communities <= 2
        assert average_f_score(detection, truth) > 0.8

    def test_duplicate_seeds_in_same_block_are_merged(self, two_cliques_graph):
        detection = detect_communities_parallel(
            two_cliques_graph,
            num_communities=4,
            parameters=CDRWParameters(initial_size=2),
            delta_hint=1 / 21,
            seed=0,
            seed_min_distance=0,
        )
        # At most one surviving community per clique.
        assert detection.num_communities <= 2 + 1

    def test_invalid_arguments(self, two_cliques_graph):
        with pytest.raises(AlgorithmError):
            detect_communities_parallel(two_cliques_graph, 0)
        with pytest.raises(AlgorithmError):
            detect_communities_parallel(two_cliques_graph, 2, overlap_merge_threshold=0.0)
