"""Tests for the batched parallel detection path and its conflict resolution.

Covers the regression for the previously missing overlap-resolution step
(surviving communities must be pairwise disjoint), exact equivalence of the
ported ``detect_communities_parallel`` with a scalar reference
implementation, the ``capture_distributions`` plumbing, and the
``select_spread_seeds`` fallback fixes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CDRWParameters,
    detect_communities_parallel,
    detect_community,
    detect_community_batch,
    select_spread_seeds,
)
from repro.core.result import CommunityResult, DetectionResult
from repro.graphs import Graph, ppm_expected_conductance
from repro.graphs.traversal import shortest_path_length
from repro.randomwalk import WalkDistribution


def _jaccard(a: frozenset, b: frozenset) -> float:
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


def assert_pairwise_disjoint(detection: DetectionResult) -> None:
    communities = detection.detected_sets()
    for i in range(len(communities)):
        for j in range(i + 1, len(communities)):
            overlap = communities[i] & communities[j]
            assert not overlap, (
                f"communities {i} and {j} overlap after resolution: {sorted(overlap)}"
            )


def reference_parallel(
    graph: Graph,
    num_communities: int,
    delta_hint: float,
    seed: int,
    overlap_merge_threshold: float = 0.5,
    seed_min_distance: int = 2,
) -> DetectionResult:
    """Scalar re-implementation of the parallel path (per-seed walks, same rules)."""
    from dataclasses import replace

    rng = np.random.default_rng(seed)
    seeds = select_spread_seeds(
        graph, num_communities, min_distance=seed_min_distance, seed=rng
    )
    raw = [detect_community(graph, s, delta_hint=delta_hint) for s in seeds]

    survivors: list[int] = []
    for index, result in enumerate(raw):
        if not any(
            _jaccard(result.community, raw[kept].community) >= overlap_merge_threshold
            for kept in survivors
        ):
            survivors.append(index)

    finals = {}
    for index in survivors:
        walk = WalkDistribution(graph, raw[index].seed)
        walk.run_to(raw[index].walk_length)
        finals[index] = np.array(walk.probabilities())

    claimants: dict[int, list[int]] = {}
    for position, index in enumerate(survivors):
        for vertex in raw[index].community:
            claimants.setdefault(vertex, []).append(position)
    own_seed = {raw[index].seed: position for position, index in enumerate(survivors)}
    members = [set(raw[index].community) for index in survivors]
    for vertex, positions in claimants.items():
        if len(positions) < 2:
            continue
        if own_seed.get(vertex) in positions:
            winner = own_seed[vertex]
        else:
            winner = max(
                positions,
                key=lambda p: (finals[survivors[p]][vertex], -p),
            )
        for position in positions:
            if position != winner:
                members[position].discard(vertex)

    resolved: list[CommunityResult] = []
    for position, index in enumerate(survivors):
        resolved.append(replace(raw[index], community=frozenset(members[position])))
    return DetectionResult(num_vertices=graph.num_vertices, communities=tuple(resolved))


class TestOverlapResolutionRegression:
    def test_two_seeds_in_same_block_yield_disjoint_communities(self, two_cliques_graph):
        """Regression: the docstring's step 3 used to be silently skipped.

        With spacing disabled, several seeds land in the same clique; after
        duplicate-merge the survivors previously could still overlap (e.g.
        through the bridge vertices).  Resolution must make them disjoint.
        """
        for seed in range(6):
            detection = detect_communities_parallel(
                two_cliques_graph,
                num_communities=4,
                parameters=CDRWParameters(initial_size=2),
                delta_hint=1 / 21,
                seed=seed,
                seed_min_distance=0,
            )
            assert_pairwise_disjoint(detection)

    def test_disjoint_on_ppm_with_excess_seeds(self, small_ppm):
        graph = small_ppm.graph
        delta = ppm_expected_conductance(
            graph.num_vertices, 2, small_ppm.intra_probability, small_ppm.inter_probability
        )
        for seed in (0, 4, 9):
            detection = detect_communities_parallel(
                graph, num_communities=4, delta_hint=delta, seed=seed
            )
            assert_pairwise_disjoint(detection)

    def test_every_surviving_community_keeps_its_seed(self, small_ppm):
        graph = small_ppm.graph
        detection = detect_communities_parallel(
            graph, num_communities=4, delta_hint=0.05, seed=3
        )
        for result in detection.communities:
            assert result.seed in result.community

    def test_accuracy_preserved_after_resolution(self, small_ppm):
        graph, truth = small_ppm.graph, small_ppm.partition
        delta = ppm_expected_conductance(
            graph.num_vertices, 2, small_ppm.intra_probability, small_ppm.inter_probability
        )
        from repro.metrics import average_f_score

        detection = detect_communities_parallel(
            graph, num_communities=2, delta_hint=delta, seed=4
        )
        assert average_f_score(detection, truth) > 0.8


class TestPortedParallelEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_identical_to_scalar_reference_on_ppm(self, small_ppm, seed):
        """The batched port must reproduce the scalar reference exactly."""
        graph = small_ppm.graph
        delta = 0.05
        expected = reference_parallel(graph, 3, delta, seed)
        actual = detect_communities_parallel(
            graph, num_communities=3, delta_hint=delta, seed=seed
        )
        assert actual == expected

    def test_identical_to_scalar_reference_on_two_cliques(self, two_cliques_graph):
        for seed in range(4):
            expected = reference_parallel(
                two_cliques_graph, 2, 1 / 21, seed, seed_min_distance=0
            )
            actual = detect_communities_parallel(
                two_cliques_graph,
                num_communities=2,
                delta_hint=1 / 21,
                seed=seed,
                seed_min_distance=0,
            )
            # The reference rebuilds every CommunityResult via replace(); the
            # ported path keeps untouched results identical as well.
            assert actual == expected


class TestCaptureDistributions:
    def test_final_distributions_match_scalar_walks(self, small_ppm):
        graph = small_ppm.graph
        seeds = [0, 40, 200]
        results, finals = detect_community_batch(
            graph, seeds, delta_hint=0.05, capture_distributions=True
        )
        assert finals.shape == (graph.num_vertices, len(seeds))
        for j, result in enumerate(results):
            walk = WalkDistribution(graph, result.seed)
            walk.run_to(result.walk_length)
            assert np.array_equal(finals[:, j], walk.probabilities())

    def test_edgeless_graph_one_hot(self):
        graph = Graph(4, [])
        results, finals = detect_community_batch(
            graph, [0, 3], capture_distributions=True
        )
        assert [r.community for r in results] == [frozenset({0}), frozenset({3})]
        expected = np.zeros((4, 2))
        expected[0, 0] = expected[3, 1] = 1.0
        assert np.array_equal(finals, expected)

    def test_empty_seed_list(self, two_cliques_graph):
        results, finals = detect_community_batch(
            two_cliques_graph, [], capture_distributions=True
        )
        assert results == []
        assert finals.shape == (10, 0)

    def test_default_return_type_unchanged(self, two_cliques_graph):
        results = detect_community_batch(two_cliques_graph, [0], delta_hint=0.1)
        assert isinstance(results, list)


class TestSpreadSeedFallbackFixes:
    @pytest.fixture(scope="class")
    def three_triangles(self) -> Graph:
        edges = []
        for offset in (0, 3, 6):
            edges += [(offset, offset + 1), (offset + 1, offset + 2), (offset, offset + 2)]
        return Graph(9, edges)

    @pytest.fixture(scope="class")
    def clique_plus_isolated(self) -> Graph:
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        return Graph(6, edges)  # K5 on 0-4 plus the isolated vertex 5

    def test_no_attempts_burned_on_blocked_redraws(self, three_triangles):
        """Regression: valid spread seeds exist but used to need luck to find.

        One seed per triangle satisfies min_distance=3.  The old rejection
        loop burned an attempt per blocked redraw, so with a tight
        ``max_attempts`` it fell back to arbitrary (violating) seeds; the
        fixed draw only ever samples still-valid vertices.
        """
        for seed in range(10):
            seeds = select_spread_seeds(
                three_triangles, 3, min_distance=3, seed=seed, max_attempts=3
            )
            triangles = {s // 3 for s in seeds}
            assert triangles == {0, 1, 2}, seeds

    def test_fallback_prefers_unblocked_vertices(self, clique_plus_isolated):
        """Regression: the fallback ignored ``blocked`` and could violate spacing.

        With ``max_attempts=1`` the main loop picks one seed; the second must
        come from the fallback.  A vertex at distance >= 2 from the first
        always exists (the isolated vertex, or any K5 vertex when the first
        draw was the isolated one), so the fallback must never return an
        adjacent pair.
        """
        for seed in range(20):
            first, second = select_spread_seeds(
                clique_plus_isolated, 2, min_distance=2, seed=seed, max_attempts=1
            )
            distance = shortest_path_length(clique_plus_isolated, first, second)
            # -1 means unreachable, i.e. infinitely far apart.
            assert distance == -1 or distance >= 2, (first, second)

    def test_fallback_extras_are_pairwise_spread(self, three_triangles):
        """Regression: the fallback drew its extras in one batch, so two of
        them could violate the spacing *with each other* even though spread
        vertices remained.  With ``max_attempts=1`` the main loop places one
        seed; the two fallback draws must still land one per triangle.
        """
        for seed in range(10):
            seeds = select_spread_seeds(
                three_triangles, 3, min_distance=3, seed=seed, max_attempts=1
            )
            triangles = {s // 3 for s in seeds}
            assert triangles == {0, 1, 2}, seeds

    def test_relaxation_still_fills_the_count(self, triangle_graph):
        # Only one spread seed can exist at min_distance=2 in a triangle; the
        # remaining two must come from the relaxed fallback, still distinct.
        seeds = select_spread_seeds(triangle_graph, 3, min_distance=2, seed=0)
        assert sorted(seeds) == [0, 1, 2]

    def test_deterministic_given_seed(self, small_ppm):
        a = select_spread_seeds(small_ppm.graph, 5, seed=8)
        b = select_spread_seeds(small_ppm.graph, 5, seed=8)
        assert a == b
        assert len(set(a)) == 5


class TestMinDistanceZeroFastPath:
    """``min_distance=0`` collapses to one draw without replacement.

    This is the deliberate RNG refresh the ROADMAP flagged: no spacing
    constraint means no draw blocks any other vertex, so the O(count·n)
    rescan loop is replaced by a single ``rng.choice(n, size, replace=False)``
    whose draw sequence these tests pin down.
    """

    def test_matches_single_choice_draw(self, small_ppm):
        n = small_ppm.graph.num_vertices
        for seed in (0, 8, 123):
            seeds = select_spread_seeds(small_ppm.graph, 6, min_distance=0, seed=seed)
            expected = np.random.default_rng(seed).choice(n, size=6, replace=False)
            assert seeds == [int(v) for v in expected]

    def test_distinct_and_complete(self, small_ppm):
        seeds = select_spread_seeds(small_ppm.graph, 10, min_distance=0, seed=4)
        assert len(seeds) == len(set(seeds)) == 10

    def test_full_graph_draw_is_a_permutation(self, triangle_graph):
        seeds = select_spread_seeds(triangle_graph, 3, min_distance=0, seed=1)
        assert sorted(seeds) == [0, 1, 2]
