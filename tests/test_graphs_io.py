"""Tests for graph serialization (edge lists, JSON bundles, binary CSR,
SNAP-style public datasets) and the format-sniffing ``load_graph_file``."""

from __future__ import annotations

import gzip
import json

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    Graph,
    Partition,
    graph_from_dict,
    graph_to_dict,
    load_graph_file,
    read_csr_graph,
    read_edge_list,
    read_graph_json,
    read_snap_edge_list,
    write_csr_graph,
    write_edge_list,
    write_graph_json,
)
from repro.graphs.io import CSR_MAGIC, read_csr_layout
from repro.graphs.storage import STORAGE_DENSE, STORAGE_MEMMAP, STORAGE_SHM


class TestEdgeList:
    def test_round_trip(self, two_cliques_graph, tmp_path):
        path = tmp_path / "graph.edges"
        write_edge_list(two_cliques_graph, path)
        loaded = read_edge_list(path)
        assert loaded == two_cliques_graph

    def test_isolated_vertices_preserved_via_header(self, tmp_path):
        graph = Graph(5, [(0, 1)])
        path = tmp_path / "graph.edges"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_vertices == 5

    def test_read_without_header_infers_size(self, tmp_path):
        path = tmp_path / "plain.edges"
        path.write_text("0 1\n2 3\n# a comment\n\n", encoding="utf-8")
        loaded = read_edge_list(path)
        assert loaded.num_vertices == 4
        assert loaded.num_edges == 2

    def test_explicit_vertex_count_override(self, tmp_path):
        path = tmp_path / "plain.edges"
        path.write_text("0 1\n", encoding="utf-8")
        loaded = read_edge_list(path, num_vertices=10)
        assert loaded.num_vertices == 10

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_non_integer_token_raises_graph_error(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 x\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "weighted.edges"
        path.write_text("0 1 7\n1 2 9\n", encoding="utf-8")
        loaded = read_edge_list(path)
        assert loaded.num_vertices == 3
        assert loaded.num_edges == 2

    def test_indented_header_still_recognised(self, tmp_path):
        # The per-line reader stripped before matching, so an indented
        # header must keep working (regression: the first regex rewrite
        # anchored at column 0 and silently dropped the vertex count).
        path = tmp_path / "indented.edges"
        path.write_text("  # vertices: 500\n0 1\n", encoding="utf-8")
        loaded = read_edge_list(path)
        assert loaded.num_vertices == 500

    def test_last_header_wins(self, tmp_path):
        path = tmp_path / "two_headers.edges"
        path.write_text("# vertices: 5\n0 1\n# vertices: 9\n", encoding="utf-8")
        assert read_edge_list(path).num_vertices == 9

    def test_malformed_header_raises(self, tmp_path):
        path = tmp_path / "bad_header.edges"
        path.write_text("# vertices: 5x\n0 1\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_comment_only_file_is_empty(self, tmp_path):
        path = tmp_path / "comments.edges"
        path.write_text("# nothing here\n\n# still nothing\n", encoding="utf-8")
        loaded = read_edge_list(path)
        assert loaded.num_vertices == 0
        assert loaded.num_edges == 0

    @pytest.mark.slow
    def test_million_edge_round_trip(self, tmp_path):
        """The array-path reader/writer must survive (and stay fast at) 1M edges."""
        import time

        import numpy as np

        n = 200_000
        rng = np.random.default_rng(0)
        edges = rng.integers(0, n, size=(1_000_000, 2), dtype=np.int64)
        edges = edges[edges[:, 0] != edges[:, 1]]
        graph = Graph.from_edge_array(n, edges)

        path = tmp_path / "million.edges"
        start = time.perf_counter()
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        elapsed = time.perf_counter() - start
        assert loaded == graph
        # Very generous ceiling: the vectorized round trip runs in ~1.5s;
        # the former per-edge tuple loops took over a minute at this size.
        assert elapsed < 30.0, f"1M-edge edge-list round trip took {elapsed:.1f}s"

        start = time.perf_counter()
        document = graph_to_dict(graph)
        rebuilt, _, _ = graph_from_dict(document)
        elapsed = time.perf_counter() - start
        assert rebuilt == graph
        assert elapsed < 30.0, f"1M-edge dict round trip took {elapsed:.1f}s"


class TestJsonBundle:
    def test_dict_round_trip_with_partition_and_metadata(self, two_cliques_graph):
        partition = Partition.from_labels([0] * 5 + [1] * 5)
        document = graph_to_dict(two_cliques_graph, partition, metadata={"p": 0.5})
        graph, loaded_partition, metadata = graph_from_dict(document)
        assert graph == two_cliques_graph
        assert loaded_partition == partition
        assert metadata == {"p": 0.5}

    def test_file_round_trip(self, two_cliques_graph, tmp_path):
        path = tmp_path / "bundle.json"
        write_graph_json(path, two_cliques_graph)
        graph, partition, metadata = read_graph_json(path)
        assert graph == two_cliques_graph
        assert partition is None
        assert metadata == {}

    def test_partition_size_mismatch_rejected(self, two_cliques_graph):
        partition = Partition.from_labels([0, 1])
        with pytest.raises(GraphError):
            graph_to_dict(two_cliques_graph, partition)

    def test_malformed_document_rejected(self):
        with pytest.raises(GraphError):
            graph_from_dict({"edges": [[0, 1]]})

    def test_partition_length_mismatch_rejected(self):
        document = {"num_vertices": 3, "edges": [[0, 1]], "partition": [0, 1]}
        with pytest.raises(GraphError):
            graph_from_dict(document)


class TestCsrBinary:
    def test_round_trip_bit_identical(self, two_cliques_graph, tmp_path):
        path = tmp_path / "graph.csr"
        write_csr_graph(two_cliques_graph, path)
        loaded = read_csr_graph(path)
        assert loaded == two_cliques_graph
        for mapped, expected in zip(
            loaded.csr_arrays(), two_cliques_graph.csr_arrays()
        ):
            assert np.array_equal(mapped, expected)
            assert mapped.dtype == np.int64

    def test_default_read_is_memmap(self, two_cliques_graph, tmp_path):
        path = tmp_path / "graph.csr"
        write_csr_graph(two_cliques_graph, path)
        assert read_csr_graph(path).storage_kind == STORAGE_MEMMAP

    @pytest.mark.parametrize("kind", (STORAGE_DENSE, STORAGE_SHM))
    def test_loading_into_ram_tiers(self, two_cliques_graph, tmp_path, kind):
        path = tmp_path / "graph.csr"
        write_csr_graph(two_cliques_graph, path)
        loaded = read_csr_graph(path, storage=kind)
        assert loaded == two_cliques_graph
        assert loaded.storage_kind == kind

    def test_empty_graph_round_trips(self, tmp_path):
        path = tmp_path / "empty.csr"
        write_csr_graph(Graph(4, []), path)
        loaded = read_csr_graph(path)
        assert loaded.num_vertices == 4
        assert loaded.num_edges == 0

    def test_layout_offsets_are_8_byte_aligned(self, two_cliques_graph, tmp_path):
        path = tmp_path / "graph.csr"
        write_csr_graph(two_cliques_graph, path)
        layout = read_csr_layout(path)
        assert layout.num_vertices == two_cliques_graph.num_vertices
        assert layout.num_arcs == 2 * two_cliques_graph.num_edges
        for offset in (
            layout.indptr_offset,
            layout.indices_offset,
            layout.degrees_offset,
        ):
            assert offset % 8 == 0
        assert layout.indices_offset - layout.indptr_offset == 8 * (
            layout.num_vertices + 1
        )

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.csr"
        path.write_bytes(b"NOTACSR!" + b"\x00" * 64)
        with pytest.raises(GraphError, match="not a"):
            read_csr_graph(path)

    def test_unsupported_version_rejected(self, two_cliques_graph, tmp_path):
        path = tmp_path / "future.csr"
        write_csr_graph(two_cliques_graph, path)
        raw = bytearray(path.read_bytes())
        header_bytes = int.from_bytes(raw[8:16], "little")
        header = json.loads(raw[16 : 16 + header_bytes])
        header["version"] = 99
        reencoded = json.dumps(header).encode("ascii")
        reencoded += b" " * (header_bytes - len(reencoded))
        raw[16 : 16 + header_bytes] = reencoded
        path.write_bytes(bytes(raw))
        with pytest.raises(GraphError, match="version"):
            read_csr_graph(path)

    def test_truncated_file_rejected(self, two_cliques_graph, tmp_path):
        path = tmp_path / "cut.csr"
        write_csr_graph(two_cliques_graph, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 16])
        with pytest.raises(GraphError, match="truncated"):
            read_csr_graph(path)

    def test_truncated_preamble_rejected(self, tmp_path):
        path = tmp_path / "stub.csr"
        path.write_bytes(CSR_MAGIC[:4])
        with pytest.raises(GraphError):
            read_csr_graph(path)


class TestSnapEdgeList:
    def test_comments_and_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text(
            "# Directed graph: something\n"
            "# FromNodeId\tToNodeId\n"
            "0\t1\t1337\n"
            "1\t2\t42\n",
            encoding="utf-8",
        )
        snap = read_snap_edge_list(path)
        assert snap.graph.num_vertices == 3
        assert snap.graph.num_edges == 2
        assert snap.num_self_loops == 0

    def test_arbitrary_ids_remapped_in_ascending_order(self, tmp_path):
        path = tmp_path / "sparse_ids.txt"
        path.write_text("900 7\n7 31\n900 31\n", encoding="utf-8")
        snap = read_snap_edge_list(path)
        assert list(snap.vertex_ids) == [7, 31, 900]
        assert snap.graph.num_vertices == 3
        # 7<->31, 7<->900, 31<->900 under the remap: a triangle.
        assert snap.graph.num_edges == 3
        assert snap.graph.has_edge(0, 2)

    def test_self_loops_dropped_and_counted(self, tmp_path):
        path = tmp_path / "loops.txt"
        path.write_text("0 0\n0 1\n1 1\n", encoding="utf-8")
        snap = read_snap_edge_list(path)
        assert snap.num_self_loops == 2
        assert snap.graph.num_edges == 1

    def test_loop_only_vertex_kept_as_isolated(self, tmp_path):
        path = tmp_path / "loop_only.txt"
        path.write_text("5 5\n0 1\n", encoding="utf-8")
        snap = read_snap_edge_list(path)
        # Id 5 appears only in a dropped self loop but stays a vertex.
        assert snap.graph.num_vertices == 3
        assert list(snap.vertex_ids) == [0, 1, 5]
        assert snap.graph.degree(2) == 0

    def test_duplicate_edges_collapse(self, tmp_path):
        path = tmp_path / "dupes.txt"
        path.write_text("0 1\n1 0\n0 1\n", encoding="utf-8")
        snap = read_snap_edge_list(path)
        assert snap.graph.num_edges == 1

    def test_gzip_detected_by_content(self, tmp_path):
        path = tmp_path / "snap.data"  # deliberately not .gz
        path.write_bytes(gzip.compress(b"# comment\n0 1\n1 2\n"))
        snap = read_snap_edge_list(path)
        assert snap.graph.num_edges == 2

    def test_comment_only_file_is_empty(self, tmp_path):
        path = tmp_path / "nothing.txt"
        path.write_text("# no data\n\n", encoding="utf-8")
        snap = read_snap_edge_list(path)
        assert snap.graph.num_vertices == 0
        assert snap.num_self_loops == 0

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 x\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_snap_edge_list(path)


class TestLoadGraphFile:
    def test_dispatches_csr(self, two_cliques_graph, tmp_path):
        path = tmp_path / "graph.csr"
        write_csr_graph(two_cliques_graph, path)
        graph, partition, info = load_graph_file(path)
        assert graph == two_cliques_graph
        assert partition is None
        assert info["format"] == "csr"
        assert info["storage"] == STORAGE_MEMMAP

    def test_csr_storage_override(self, two_cliques_graph, tmp_path):
        path = tmp_path / "graph.csr"
        write_csr_graph(two_cliques_graph, path)
        graph, _, info = load_graph_file(path, storage=STORAGE_DENSE)
        assert graph.storage_kind == STORAGE_DENSE
        assert info["storage"] == STORAGE_DENSE

    def test_dispatches_json_with_partition(self, two_cliques_graph, tmp_path):
        truth = Partition.from_labels([0] * 5 + [1] * 5)
        path = tmp_path / "bundle.json"
        write_graph_json(path, two_cliques_graph, truth, metadata={"p": 0.5})
        graph, partition, info = load_graph_file(path)
        assert graph == two_cliques_graph
        assert partition == truth
        assert info["format"] == "json"
        assert info["metadata"] == {"p": 0.5}

    def test_dispatches_headered_edge_list(self, tmp_path):
        path = tmp_path / "graph.edges"
        write_edge_list(Graph(5, [(0, 1)]), path)
        graph, partition, info = load_graph_file(path)
        assert graph.num_vertices == 5
        assert partition is None
        assert info["format"] == "edge-list"

    def test_dispatches_snap_for_headerless_text(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("# SNAP comment\n10 20\n20 30\n", encoding="utf-8")
        graph, partition, info = load_graph_file(path)
        assert graph.num_edges == 2
        assert partition is None
        assert info["format"] == "snap"
        assert info["num_self_loops"] == 0
        assert info["num_source_ids"] == 3

    def test_dispatches_gzipped_snap(self, tmp_path):
        path = tmp_path / "snap.txt.gz"
        path.write_bytes(gzip.compress(b"0 1\n"))
        graph, _, info = load_graph_file(path)
        assert graph.num_edges == 1
        assert info["format"] == "snap"

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_graph_file(tmp_path / "missing.csr")
