"""Tests for graph serialization (edge lists and JSON bundles)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    Graph,
    Partition,
    graph_from_dict,
    graph_to_dict,
    read_edge_list,
    read_graph_json,
    write_edge_list,
    write_graph_json,
)


class TestEdgeList:
    def test_round_trip(self, two_cliques_graph, tmp_path):
        path = tmp_path / "graph.edges"
        write_edge_list(two_cliques_graph, path)
        loaded = read_edge_list(path)
        assert loaded == two_cliques_graph

    def test_isolated_vertices_preserved_via_header(self, tmp_path):
        graph = Graph(5, [(0, 1)])
        path = tmp_path / "graph.edges"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_vertices == 5

    def test_read_without_header_infers_size(self, tmp_path):
        path = tmp_path / "plain.edges"
        path.write_text("0 1\n2 3\n# a comment\n\n", encoding="utf-8")
        loaded = read_edge_list(path)
        assert loaded.num_vertices == 4
        assert loaded.num_edges == 2

    def test_explicit_vertex_count_override(self, tmp_path):
        path = tmp_path / "plain.edges"
        path.write_text("0 1\n", encoding="utf-8")
        loaded = read_edge_list(path, num_vertices=10)
        assert loaded.num_vertices == 10

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_non_integer_token_raises_graph_error(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 x\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "weighted.edges"
        path.write_text("0 1 7\n1 2 9\n", encoding="utf-8")
        loaded = read_edge_list(path)
        assert loaded.num_vertices == 3
        assert loaded.num_edges == 2

    def test_indented_header_still_recognised(self, tmp_path):
        # The per-line reader stripped before matching, so an indented
        # header must keep working (regression: the first regex rewrite
        # anchored at column 0 and silently dropped the vertex count).
        path = tmp_path / "indented.edges"
        path.write_text("  # vertices: 500\n0 1\n", encoding="utf-8")
        loaded = read_edge_list(path)
        assert loaded.num_vertices == 500

    def test_last_header_wins(self, tmp_path):
        path = tmp_path / "two_headers.edges"
        path.write_text("# vertices: 5\n0 1\n# vertices: 9\n", encoding="utf-8")
        assert read_edge_list(path).num_vertices == 9

    def test_malformed_header_raises(self, tmp_path):
        path = tmp_path / "bad_header.edges"
        path.write_text("# vertices: 5x\n0 1\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_comment_only_file_is_empty(self, tmp_path):
        path = tmp_path / "comments.edges"
        path.write_text("# nothing here\n\n# still nothing\n", encoding="utf-8")
        loaded = read_edge_list(path)
        assert loaded.num_vertices == 0
        assert loaded.num_edges == 0

    @pytest.mark.slow
    def test_million_edge_round_trip(self, tmp_path):
        """The array-path reader/writer must survive (and stay fast at) 1M edges."""
        import time

        import numpy as np

        n = 200_000
        rng = np.random.default_rng(0)
        edges = rng.integers(0, n, size=(1_000_000, 2), dtype=np.int64)
        edges = edges[edges[:, 0] != edges[:, 1]]
        graph = Graph.from_edge_array(n, edges)

        path = tmp_path / "million.edges"
        start = time.perf_counter()
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        elapsed = time.perf_counter() - start
        assert loaded == graph
        # Very generous ceiling: the vectorized round trip runs in ~1.5s;
        # the former per-edge tuple loops took over a minute at this size.
        assert elapsed < 30.0, f"1M-edge edge-list round trip took {elapsed:.1f}s"

        start = time.perf_counter()
        document = graph_to_dict(graph)
        rebuilt, _, _ = graph_from_dict(document)
        elapsed = time.perf_counter() - start
        assert rebuilt == graph
        assert elapsed < 30.0, f"1M-edge dict round trip took {elapsed:.1f}s"


class TestJsonBundle:
    def test_dict_round_trip_with_partition_and_metadata(self, two_cliques_graph):
        partition = Partition.from_labels([0] * 5 + [1] * 5)
        document = graph_to_dict(two_cliques_graph, partition, metadata={"p": 0.5})
        graph, loaded_partition, metadata = graph_from_dict(document)
        assert graph == two_cliques_graph
        assert loaded_partition == partition
        assert metadata == {"p": 0.5}

    def test_file_round_trip(self, two_cliques_graph, tmp_path):
        path = tmp_path / "bundle.json"
        write_graph_json(path, two_cliques_graph)
        graph, partition, metadata = read_graph_json(path)
        assert graph == two_cliques_graph
        assert partition is None
        assert metadata == {}

    def test_partition_size_mismatch_rejected(self, two_cliques_graph):
        partition = Partition.from_labels([0, 1])
        with pytest.raises(GraphError):
            graph_to_dict(two_cliques_graph, partition)

    def test_malformed_document_rejected(self):
        with pytest.raises(GraphError):
            graph_from_dict({"edges": [[0, 1]]})

    def test_partition_length_mismatch_rejected(self):
        document = {"num_vertices": 3, "edges": [[0, 1]], "partition": [0, 1]}
        with pytest.raises(GraphError):
            graph_from_dict(document)
