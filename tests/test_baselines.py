"""Tests for the baseline community detection algorithms."""

from __future__ import annotations

import pytest

from repro.baselines import (
    averaging_dynamics,
    clementi_two_communities,
    label_propagation,
    spectral_clustering,
    walktrap_communities,
)
from repro.exceptions import AlgorithmError
from repro.graphs import Graph, Partition
from repro.metrics import partition_average_f_score


@pytest.fixture(scope="module")
def cliques_truth() -> Partition:
    return Partition.from_labels([0] * 5 + [1] * 5)


class TestLabelPropagation:
    def test_recovers_two_cliques(self, two_cliques_graph, cliques_truth):
        result = label_propagation(two_cliques_graph, seed=0)
        assert partition_average_f_score(result.partition, cliques_truth) > 0.9
        assert result.converged

    def test_synchronous_variant_runs(self, two_cliques_graph):
        result = label_propagation(two_cliques_graph, synchronous=True, seed=0, max_iterations=30)
        assert result.iterations <= 30
        assert result.partition.num_vertices == 10

    def test_recovers_ppm_blocks(self, small_ppm):
        result = label_propagation(small_ppm.graph, seed=1)
        assert partition_average_f_score(result.partition, small_ppm.partition) > 0.85

    def test_empty_graph(self):
        result = label_propagation(Graph(0, []))
        assert result.converged
        assert result.partition.num_communities == 0

    def test_isolated_vertices_keep_own_label(self):
        graph = Graph(3, [(0, 1)])
        result = label_propagation(graph, seed=0)
        assert result.partition.community_of(2) != result.partition.community_of(0)

    def test_invalid_budget(self, two_cliques_graph):
        with pytest.raises(AlgorithmError):
            label_propagation(two_cliques_graph, max_iterations=0)


class TestAveragingDynamics:
    def test_recovers_two_cliques(self, two_cliques_graph, cliques_truth):
        result = averaging_dynamics(two_cliques_graph, seed=3)
        assert result.partition.num_communities <= 2
        assert partition_average_f_score(result.partition, cliques_truth) > 0.8

    def test_recovers_two_block_ppm(self, small_ppm):
        result = averaging_dynamics(small_ppm.graph, seed=5)
        assert partition_average_f_score(result.partition, small_ppm.partition) > 0.8

    def test_values_returned(self, two_cliques_graph):
        result = averaging_dynamics(two_cliques_graph, rounds=10, seed=0)
        assert result.rounds == 10
        assert result.values.shape == (10,)

    def test_validation(self, two_cliques_graph):
        with pytest.raises(AlgorithmError):
            averaging_dynamics(Graph(0, []))
        with pytest.raises(AlgorithmError):
            averaging_dynamics(Graph(3, []))
        with pytest.raises(AlgorithmError):
            averaging_dynamics(two_cliques_graph, rounds=0)


class TestSpectralClustering:
    def test_recovers_two_cliques(self, two_cliques_graph, cliques_truth):
        result = spectral_clustering(two_cliques_graph, 2, seed=0)
        assert partition_average_f_score(result.partition, cliques_truth) == pytest.approx(1.0)

    def test_recovers_ppm_blocks(self, small_ppm):
        result = spectral_clustering(small_ppm.graph, 2, seed=0)
        assert partition_average_f_score(result.partition, small_ppm.partition) > 0.95

    def test_embedding_shape(self, two_cliques_graph):
        result = spectral_clustering(two_cliques_graph, 2, seed=0)
        assert result.embedding.shape == (10, 2)
        assert result.inertia >= 0.0

    def test_edgeless_graph_single_cluster(self):
        result = spectral_clustering(Graph(4, []), 2, seed=0)
        assert result.partition.num_communities == 1

    def test_validation(self, two_cliques_graph):
        with pytest.raises(AlgorithmError):
            spectral_clustering(two_cliques_graph, 0)
        with pytest.raises(AlgorithmError):
            spectral_clustering(two_cliques_graph, 11)
        with pytest.raises(AlgorithmError):
            spectral_clustering(Graph(0, []), 1)


class TestWalktrap:
    def test_recovers_two_cliques(self, two_cliques_graph, cliques_truth):
        result = walktrap_communities(two_cliques_graph, 2)
        assert partition_average_f_score(result.partition, cliques_truth) == pytest.approx(1.0)
        assert result.merges == 8

    def test_recovers_ppm_blocks(self, small_ppm):
        result = walktrap_communities(small_ppm.graph, 2)
        assert partition_average_f_score(result.partition, small_ppm.partition) > 0.9

    def test_edgeless_graph_gives_singletons(self):
        result = walktrap_communities(Graph(3, []), 2)
        assert result.partition.num_communities == 3

    def test_validation(self, two_cliques_graph):
        with pytest.raises(AlgorithmError):
            walktrap_communities(two_cliques_graph, 0)
        with pytest.raises(AlgorithmError):
            walktrap_communities(two_cliques_graph, 11)
        with pytest.raises(AlgorithmError):
            walktrap_communities(two_cliques_graph, 2, walk_length=0)
        with pytest.raises(AlgorithmError):
            walktrap_communities(two_cliques_graph, 2, max_vertices=5)


class TestClementi:
    def test_splits_two_cliques_reasonably(self, two_cliques_graph, cliques_truth):
        result = clementi_two_communities(two_cliques_graph, seed=2)
        assert result.partition.num_communities <= 2
        assert partition_average_f_score(result.partition, cliques_truth) > 0.5

    def test_sources_are_distinct_and_anchored(self, small_ppm):
        result = clementi_two_communities(small_ppm.graph, seed=1)
        source_a, source_b = result.sources
        assert source_a != source_b
        assert result.partition.community_of(source_a) != result.partition.community_of(source_b)

    def test_validation(self, two_cliques_graph):
        with pytest.raises(AlgorithmError):
            clementi_two_communities(Graph(1, []))
        with pytest.raises(AlgorithmError):
            clementi_two_communities(Graph(3, []))
        with pytest.raises(AlgorithmError):
            clementi_two_communities(two_cliques_graph, rounds=0)
