"""Tests for the stopping rule and the result containers."""

from __future__ import annotations

import pytest

from repro.core import GrowthStoppingRule, LargestMixingSet
from repro.core.result import CommunityResult, DetectionResult
from repro.exceptions import AlgorithmError
from repro.graphs import Partition


def _mixing_set(size: int, length: int) -> LargestMixingSet:
    return LargestMixingSet(
        walk_length=length,
        size=size,
        members=frozenset(range(size)),
        deficit=0.1,
        mass=0.9,
        sizes_examined=size,
    )


class TestGrowthStoppingRule:
    def test_stops_on_plateau_and_returns_previous(self):
        rule = GrowthStoppingRule(delta=0.1)
        assert not rule.observe(_mixing_set(10, 1)).should_stop
        assert not rule.observe(_mixing_set(40, 2)).should_stop
        decision = rule.observe(_mixing_set(42, 3))
        assert decision.should_stop
        assert decision.community.size == 40

    def test_does_not_stop_while_growing(self):
        rule = GrowthStoppingRule(delta=0.1)
        rule.observe(_mixing_set(10, 1))
        for length, size in enumerate([20, 40, 80, 160], start=2):
            assert not rule.observe(_mixing_set(size, length)).should_stop

    def test_no_previous_set_no_stop(self):
        rule = GrowthStoppingRule(delta=0.1)
        decision = rule.observe(_mixing_set(0, 1))
        assert not decision.should_stop
        decision = rule.observe(_mixing_set(10, 2))
        assert not decision.should_stop

    def test_vanishing_set_does_not_stop(self):
        rule = GrowthStoppingRule(delta=0.1)
        rule.observe(_mixing_set(10, 1))
        decision = rule.observe(_mixing_set(0, 2))
        assert not decision.should_stop

    def test_shrinking_set_triggers_stop(self):
        rule = GrowthStoppingRule(delta=0.05)
        rule.observe(_mixing_set(50, 1))
        decision = rule.observe(_mixing_set(30, 2))
        assert decision.should_stop
        assert decision.community.size == 50

    def test_require_consecutive_two(self):
        rule = GrowthStoppingRule(delta=0.1, require_consecutive=2)
        rule.observe(_mixing_set(10, 1))
        assert not rule.observe(_mixing_set(10, 2)).should_stop
        assert rule.observe(_mixing_set(10, 3)).should_stop

    def test_reset(self):
        rule = GrowthStoppingRule(delta=0.1)
        rule.observe(_mixing_set(10, 1))
        rule.reset()
        assert rule.previous is None
        assert not rule.observe(_mixing_set(10, 2)).should_stop

    def test_invalid_parameters(self):
        with pytest.raises(AlgorithmError):
            GrowthStoppingRule(delta=-0.1)
        with pytest.raises(AlgorithmError):
            GrowthStoppingRule(delta=0.1, require_consecutive=0)


def _community(seed: int, members, length: int = 3) -> CommunityResult:
    return CommunityResult(
        seed=seed,
        community=frozenset(members),
        walk_length=length,
        history=(_mixing_set(len(members), length),),
        stop_reason="test",
        delta=0.1,
    )


class TestResultContainers:
    def test_community_result_accessors(self):
        result = _community(0, range(5))
        assert result.size == 5
        assert result.size_trace() == [5]
        assert result.sizes_examined() == 5

    def test_detection_result_coverage_and_seeds(self):
        detection = DetectionResult(
            num_vertices=10,
            communities=(_community(0, range(5)), _community(7, range(5, 10))),
        )
        assert detection.num_communities == 2
        assert detection.seeds() == [0, 7]
        assert detection.coverage() == 1.0
        assert detection.covered_vertices() == frozenset(range(10))
        assert detection.total_walk_steps() == 6

    def test_to_partition_resolves_overlap_by_first_claim(self):
        detection = DetectionResult(
            num_vertices=8,
            communities=(_community(0, range(5)), _community(6, range(3, 8))),
        )
        partition = detection.to_partition()
        assert partition.community_of(3) == 0
        assert partition.community_of(6) == 1
        assert partition.num_communities == 2

    def test_to_partition_min_size_drops_small_leftovers(self):
        detection = DetectionResult(
            num_vertices=6,
            communities=(_community(0, range(5)), _community(5, [4, 5])),
        )
        partition = detection.to_partition(min_size=2)
        assert partition.community_of(5) == Partition.UNASSIGNED

    def test_empty_detection(self):
        detection = DetectionResult(num_vertices=0, communities=())
        assert detection.coverage() == 0.0
        assert len(detection) == 0
