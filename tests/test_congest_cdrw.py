"""Tests for distributed CDRW in the CONGEST model and the complexity bounds."""

from __future__ import annotations

import math

import pytest

from repro.congest import (
    detect_communities_congest,
    detect_community_congest,
    expected_edges,
    message_bound_all_communities,
    message_bound_single_community,
    round_bound_all_communities,
    round_bound_single_community,
)
from repro.core import CDRWParameters, detect_community
from repro.exceptions import SimulationError
from repro.graphs import ppm_expected_conductance
from repro.metrics import average_f_score


class TestCongestDetection:
    def test_matches_centralized_community(self, small_ppm):
        graph = small_ppm.graph
        delta = ppm_expected_conductance(
            graph.num_vertices, 2, small_ppm.intra_probability, small_ppm.inter_probability
        )
        congest = detect_community_congest(graph, 5, delta_hint=delta)
        centralized = detect_community(graph, 5, delta_hint=delta)
        assert congest.community.size == centralized.size
        assert congest.community.walk_length == centralized.walk_length
        assert congest.community.community == centralized.community

    def test_message_level_equals_count_only(self, two_cliques_graph):
        parameters = CDRWParameters(initial_size=2, max_walk_length=8)
        fast = detect_community_congest(
            two_cliques_graph, 0, parameters, delta_hint=1 / 21, count_only=True
        )
        slow = detect_community_congest(
            two_cliques_graph, 0, parameters, delta_hint=1 / 21, count_only=False
        )
        assert fast.community.community == slow.community.community

    def test_costs_are_positive_and_recorded(self, small_ppm):
        outcome = detect_community_congest(small_ppm.graph, 0, delta_hint=0.05)
        assert outcome.cost.rounds > 0
        assert outcome.cost.messages > 0
        assert outcome.bfs_depth >= 1
        assert "probability" in outcome.cost.messages_by_kind

    def test_rounds_polylog_in_n(self, small_ppm):
        n = small_ppm.graph.num_vertices
        outcome = detect_community_congest(small_ppm.graph, 0, delta_hint=0.05)
        # Generous constant: the point is polylog, not linear in n.
        assert outcome.cost.rounds < 100 * math.log(n) ** 4

    def test_full_detection_accuracy_and_cost_accumulation(self, small_ppm):
        graph, truth = small_ppm.graph, small_ppm.partition
        delta = ppm_expected_conductance(
            graph.num_vertices, 2, small_ppm.intra_probability, small_ppm.inter_probability
        )
        result = detect_communities_congest(graph, delta_hint=delta, seed=1)
        assert average_f_score(result.detection, truth) > 0.85
        per_community_total = sum(c.cost.rounds for c in result.per_community)
        assert result.total_cost.rounds == per_community_total

    def test_invalid_seed_vertex(self, two_cliques_graph):
        with pytest.raises(SimulationError):
            detect_community_congest(two_cliques_graph, 50)


class TestComplexityBounds:
    def test_round_bounds(self):
        assert round_bound_single_community(1024) == pytest.approx(math.log(1024) ** 4)
        assert round_bound_all_communities(1024, 4) == pytest.approx(4 * math.log(1024) ** 4)

    def test_message_bounds_scale_with_r(self):
        single = message_bound_single_community(1024, 4, 0.05, 0.001)
        full = message_bound_all_communities(1024, 4, 0.05, 0.001)
        assert full == pytest.approx(4 * single)

    def test_expected_edges_formula(self):
        value = expected_edges(1000, 5, 0.05, 0.001)
        intra = 5 * 200 * 199 / 2 * 0.05
        inter = 10 * 200 * 200 * 0.001
        assert value == pytest.approx(intra + inter)

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            round_bound_single_community(1)
        with pytest.raises(SimulationError):
            message_bound_single_community(10, 3, 0.1, 0.1)

    def test_measured_messages_within_bound(self, small_ppm):
        graph = small_ppm.graph
        n = graph.num_vertices
        outcome = detect_community_congest(graph, 0, delta_hint=0.05)
        bound = message_bound_single_community(
            n, 2, small_ppm.intra_probability, small_ppm.inter_probability
        )
        # The bound includes the log^4 factor, so measured messages should be
        # well below it (generous constant for small n).
        assert outcome.cost.messages < 50 * bound
