"""Tests for the CONGEST simulator: messages, network, BFS, aggregation primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import (
    CongestNetwork,
    Message,
    broadcast,
    convergecast,
    distributed_bfs,
    distributed_bfs_counted,
    message_size_in_words,
    select_k_smallest,
    tree_edge_count,
)
from repro.exceptions import BandwidthExceededError, SimulationError
from repro.graphs import Graph, bfs_tree


class TestMessage:
    def test_scalar_payload_sizes(self):
        assert message_size_in_words(None) == 1
        assert message_size_in_words(3.5) == 1
        assert message_size_in_words((1, 2)) == 2
        assert message_size_in_words({"a": 1}) == 2

    def test_unknown_payload_rejected(self):
        with pytest.raises(SimulationError):
            message_size_in_words(object())

    def test_oversized_payload_rejected(self):
        with pytest.raises(SimulationError):
            Message(0, 1, "big", payload=(1, 2, 3, 4, 5, 6))

    def test_size_in_words_includes_tag(self):
        message = Message(0, 1, "x", payload=2.0)
        assert message.size_in_words() == 2


class TestCongestNetwork:
    def test_round_and_message_counting(self, triangle_graph):
        network = CongestNetwork(triangle_graph)
        network.begin_round()
        network.send(0, 1, "ping")
        network.send(1, 2, "ping")
        delivered = network.end_round()
        assert network.rounds == 1
        assert network.messages == 2
        assert set(delivered) == {1, 2}
        assert network.cost_report().messages_by_kind == {"ping": 2}

    def test_send_requires_open_round(self, triangle_graph):
        network = CongestNetwork(triangle_graph)
        with pytest.raises(SimulationError):
            network.send(0, 1, "ping")

    def test_send_over_non_edge_rejected(self, path_graph):
        network = CongestNetwork(path_graph)
        network.begin_round()
        with pytest.raises(SimulationError):
            network.send(0, 4, "ping")

    def test_bandwidth_limit_one_message_per_edge(self, triangle_graph):
        network = CongestNetwork(triangle_graph)
        network.begin_round()
        network.send(0, 1, "a")
        with pytest.raises(BandwidthExceededError):
            network.send(0, 1, "b")
        # The reverse direction is a separate channel.
        network.send(1, 0, "c")
        network.end_round()

    def test_double_begin_round_rejected(self, triangle_graph):
        network = CongestNetwork(triangle_graph)
        network.begin_round()
        with pytest.raises(SimulationError):
            network.begin_round()

    def test_charge_counters(self, triangle_graph):
        network = CongestNetwork(triangle_graph)
        network.charge_rounds(5)
        network.charge_messages("bulk", 12)
        report = network.cost_report()
        assert report.rounds == 5
        assert report.messages == 12
        network.reset_costs()
        assert network.rounds == 0

    def test_cost_report_addition(self, triangle_graph):
        network = CongestNetwork(triangle_graph)
        network.charge_messages("a", 2)
        a = network.cost_report()
        network.charge_messages("b", 3)
        combined = a + network.cost_report()
        assert combined.messages == 2 + 5

    def test_cost_report_sum_builtin(self, triangle_graph):
        """sum() starts from 0; __radd__ must absorb it so phase reports aggregate."""
        network = CongestNetwork(triangle_graph)
        reports = []
        for kind, count in (("a", 2), ("b", 3), ("a", 4)):
            network.reset_costs()
            network.charge_rounds(1)
            network.charge_messages(kind, count)
            reports.append(network.cost_report())
        total = sum(reports)
        assert total.rounds == 3
        assert total.messages == 9
        assert total.messages_by_kind == {"a": 6, "b": 3}
        assert sum(reports[:1]) == reports[0]

    def test_cost_report_foreign_addition_raises_type_error(self, triangle_graph):
        report = CongestNetwork(triangle_graph).cost_report()
        with pytest.raises(TypeError):
            report + 1
        with pytest.raises(TypeError):
            1 + report
        with pytest.raises(TypeError):
            report + "rounds"
        # Only sum()'s int 0 is absorbed — zero-equal foreigners are not.
        with pytest.raises(TypeError):
            0.0 + report
        with pytest.raises(TypeError):
            False + report

    def test_empty_graph_rejected(self):
        with pytest.raises(SimulationError):
            CongestNetwork(Graph(0, []))


class TestDistributedBfs:
    def test_matches_sequential_bfs(self, two_cliques_graph):
        network = CongestNetwork(two_cliques_graph)
        distributed = distributed_bfs(network, 0)
        sequential = bfs_tree(two_cliques_graph, 0)
        assert np.array_equal(distributed.distances, sequential.distances)

    def test_counted_variant_same_result_and_cost(self, two_cliques_graph):
        message_network = CongestNetwork(two_cliques_graph)
        counted_network = CongestNetwork(two_cliques_graph)
        a = distributed_bfs(message_network, 3)
        b = distributed_bfs_counted(counted_network, 3)
        assert np.array_equal(a.distances, b.distances)
        assert message_network.rounds == counted_network.rounds
        assert message_network.messages == counted_network.messages

    def test_round_count_is_depth_plus_one(self, path_graph):
        network = CongestNetwork(path_graph)
        result = distributed_bfs(network, 0)
        assert network.rounds == result.depth() + 1

    def test_max_depth_respected(self, path_graph):
        network = CongestNetwork(path_graph)
        result = distributed_bfs(network, 0, max_depth=2)
        assert result.depth() == 2

    def test_invalid_root(self, path_graph):
        network = CongestNetwork(path_graph)
        with pytest.raises(SimulationError):
            distributed_bfs(network, 99)


class TestAggregation:
    def test_convergecast_sum_matches_numpy(self, two_cliques_graph):
        network = CongestNetwork(two_cliques_graph)
        tree = bfs_tree(two_cliques_graph, 0)
        values = np.arange(10, dtype=float)
        total = convergecast(network, tree, values, combine=lambda a, b: a + b)
        assert total == pytest.approx(values.sum())

    def test_convergecast_message_level_same_value_and_cost(self, two_cliques_graph):
        tree = bfs_tree(two_cliques_graph, 0)
        values = np.arange(10, dtype=float)
        fast = CongestNetwork(two_cliques_graph)
        slow = CongestNetwork(two_cliques_graph)
        a = convergecast(fast, tree, values, combine=max, count_only=True)
        b = convergecast(slow, tree, values, combine=max, count_only=False)
        assert a == b == 9.0
        assert fast.rounds == slow.rounds
        assert fast.messages == slow.messages

    def test_broadcast_costs(self, two_cliques_graph):
        tree = bfs_tree(two_cliques_graph, 0)
        network = CongestNetwork(two_cliques_graph)
        broadcast(network, tree, payload=1.0, count_only=True)
        assert network.rounds == tree.depth()
        assert network.messages == tree_edge_count(tree)

    def test_convergecast_shape_check(self, two_cliques_graph):
        network = CongestNetwork(two_cliques_graph)
        tree = bfs_tree(two_cliques_graph, 0)
        with pytest.raises(SimulationError):
            convergecast(network, tree, np.zeros(3), combine=max)

    def test_select_k_smallest_matches_sort(self, small_gnp_graph):
        network = CongestNetwork(small_gnp_graph)
        tree = bfs_tree(small_gnp_graph, 0)
        rng = np.random.default_rng(0)
        values = rng.random(small_gnp_graph.num_vertices)
        selected, total, iterations = select_k_smallest(network, tree, values, 10)
        expected = np.sort(values)[:10].sum()
        assert total == pytest.approx(expected)
        assert len(selected) == 10
        assert iterations >= 1
        assert network.rounds > 0

    def test_select_k_smallest_message_level_agrees(self, two_cliques_graph):
        tree = bfs_tree(two_cliques_graph, 0)
        rng = np.random.default_rng(1)
        values = rng.random(10)
        fast = CongestNetwork(two_cliques_graph)
        slow = CongestNetwork(two_cliques_graph)
        a, sum_a, _ = select_k_smallest(fast, tree, values, 4, count_only=True)
        b, sum_b, _ = select_k_smallest(slow, tree, values, 4, count_only=False)
        assert np.array_equal(a, b)
        assert sum_a == pytest.approx(sum_b)

    def test_select_k_validation(self, two_cliques_graph):
        network = CongestNetwork(two_cliques_graph)
        tree = bfs_tree(two_cliques_graph, 0)
        with pytest.raises(SimulationError):
            select_k_smallest(network, tree, np.zeros(10), 0)
        with pytest.raises(SimulationError):
            select_k_smallest(network, tree, np.zeros(10), 11)
