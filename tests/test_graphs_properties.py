"""Tests for conductance, volume, modularity and the analytic PPM quantities."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    Graph,
    Partition,
    average_volume,
    conductance,
    edge_density,
    graph_conductance_estimate,
    mixing_parameter,
    modularity,
    partition_conductance,
    planted_partition_graph,
    ppm_expected_conductance,
    ppm_expected_degree,
    ppm_expected_inter_edges,
    ppm_expected_intra_edges,
    subset_volume,
)


class TestVolumeAndConductance:
    def test_subset_volume_matches_graph_method(self, two_cliques_graph):
        assert subset_volume(two_cliques_graph, range(5)) == two_cliques_graph.subset_volume(range(5))

    def test_average_volume_formula(self, two_cliques_graph):
        expected = two_cliques_graph.volume / two_cliques_graph.num_vertices * 3
        assert average_volume(two_cliques_graph, 3) == pytest.approx(expected)

    def test_average_volume_negative_size_rejected(self, two_cliques_graph):
        with pytest.raises(GraphError):
            average_volume(two_cliques_graph, -1)

    def test_conductance_of_clique_half(self, two_cliques_graph):
        # One bridge edge over a volume of 21.
        assert conductance(two_cliques_graph, range(5)) == pytest.approx(1 / 21)

    def test_conductance_empty_and_full(self, two_cliques_graph):
        assert conductance(two_cliques_graph, []) == 0.0
        assert conductance(two_cliques_graph, range(10)) == 0.0

    def test_partition_conductance_minimum(self, two_cliques_graph):
        partition = Partition.from_labels([0] * 5 + [1] * 5)
        assert partition_conductance(two_cliques_graph, partition) == pytest.approx(1 / 21)

    def test_sweep_estimate_close_to_true_value(self, two_cliques_graph):
        estimate = graph_conductance_estimate(two_cliques_graph)
        assert estimate == pytest.approx(1 / 21, rel=0.5)

    def test_sweep_estimate_trivial_graphs(self):
        assert graph_conductance_estimate(Graph(2, [])) == 0.0


class TestAnalyticPpmQuantities:
    def test_expected_degree(self):
        value = ppm_expected_degree(1000, 5, 0.05, 0.001)
        assert value == pytest.approx(0.05 * 199 + 0.001 * 800)

    def test_expected_intra_and_inter_edges(self):
        assert ppm_expected_intra_edges(1000, 5, 0.05) == pytest.approx(200 * 199 / 2 * 0.05)
        assert ppm_expected_inter_edges(1000, 5, 0.001) == pytest.approx(200 * 800 * 0.001)

    def test_expected_conductance_single_block_zero(self):
        assert ppm_expected_conductance(1000, 1, 0.05, 0.0) == 0.0

    def test_expected_conductance_formula(self):
        n, r, p, q = 1000, 5, 0.05, 0.001
        expected = (q * 800) / (p * 200 + q * 800)
        assert ppm_expected_conductance(n, r, p, q) == pytest.approx(expected)

    def test_expected_conductance_matches_empirical(self):
        n, r, p, q = 1000, 5, 0.05, 0.001
        ppm = planted_partition_graph(n, r, p, q, seed=0)
        empirical = partition_conductance(ppm.graph, ppm.partition)
        assert empirical == pytest.approx(ppm_expected_conductance(n, r, p, q), rel=0.3)

    def test_mixing_parameter(self):
        assert mixing_parameter(1000, 1, 0.1, 0.0) == 0.0
        value = mixing_parameter(1000, 5, 0.05, 0.001)
        assert value == pytest.approx(0.004 / 0.054)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(GraphError):
            ppm_expected_degree(10, 3, 0.1, 0.1)
        with pytest.raises(GraphError):
            ppm_expected_conductance(10, 2, 1.5, 0.1)


class TestModularityAndDensity:
    def test_edge_density_complete_graph(self):
        complete = Graph(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert edge_density(complete) == 1.0

    def test_edge_density_empty(self):
        assert edge_density(Graph(1, [])) == 0.0

    def test_modularity_good_partition_positive(self, two_cliques_graph):
        good = Partition.from_labels([0] * 5 + [1] * 5)
        bad = Partition.from_labels([0, 1] * 5)
        assert modularity(two_cliques_graph, good) > modularity(two_cliques_graph, bad)
        assert modularity(two_cliques_graph, good) > 0.3

    def test_modularity_single_community_zero(self, two_cliques_graph):
        whole = Partition.single_community(10)
        assert modularity(two_cliques_graph, whole) == pytest.approx(0.0)

    def test_modularity_empty_graph(self):
        assert modularity(Graph(3, []), Partition.single_community(3)) == 0.0
