"""Tests for the shared-memory process execution tier.

The contract under test (see ``src/repro/execution_process.py``): for the
same :class:`~repro.api.RunConfig` knobs, the ``"process"`` executor must
produce detections, cost totals and serialized reports **identical** to the
serial facade at every worker count — pool start-up, sharding and
shared-memory broadcast may only move the wall clock.
"""

from __future__ import annotations

import gc
import math

import numpy as np
import pytest

from repro.api import RunConfig, RunReport, detect
from repro.core.batched import detect_community_batch
from repro.exceptions import AlgorithmError, BackendError, ReproError
from repro.execution import resolve_executor
from repro.execution_process import (
    ProcessGraphPool,
    SharedGraph,
    detect_batched_process,
    detect_parallel_process,
)
from repro.graphs import Graph, planted_partition_graph, ppm_expected_conductance

WORKER_COUNTS = (1, 2, 4)

#: The parts of a serialized report the run *computes* — required identical
#: across execution tiers.  The remaining keys (``config``, ``timings``,
#: ``metadata``) describe the run itself and naturally name the tier.
PAYLOAD_KEYS = ("backend", "detection", "phase_costs", "total_cost", "artifacts", "params")


def payload(report) -> dict:
    data = report.to_dict()
    return {key: data[key] for key in PAYLOAD_KEYS}


@pytest.fixture(scope="module")
def ppm():
    """A small PPM instance plus its analytic conductance hint."""
    n = 256
    p = 3 * math.log(n) ** 2 / n
    q = 1.0 / n
    instance = planted_partition_graph(n, 2, p, q, seed=7)
    delta = ppm_expected_conductance(n, 2, p, q)
    return instance, delta


# ----------------------------------------------------------------------
# Shared-memory graph broadcast
# ----------------------------------------------------------------------
class TestSharedGraph:
    def test_attach_reproduces_graph(self, two_cliques_graph):
        with SharedGraph(two_cliques_graph) as shared:
            attachment = shared.handle.attach()
            try:
                assert attachment.graph == two_cliques_graph
                assert attachment.graph.num_edges == two_cliques_graph.num_edges
                assert list(attachment.graph.neighbors(0)) == list(
                    two_cliques_graph.neighbors(0)
                )
            finally:
                attachment.close()

    def test_attached_arrays_alias_shared_segments(self, two_cliques_graph):
        with SharedGraph(two_cliques_graph) as shared:
            attachment = shared.handle.attach()
            try:
                indptr, indices, degrees = attachment.graph.csr_arrays()
                # No per-worker copy: the views live inside the segments.
                assert not indices.flags.owndata
                assert not indptr.flags.owndata
                assert np.array_equal(
                    indices, two_cliques_graph.csr_arrays()[1]
                )
            finally:
                attachment.close()

    def test_edgeless_graph_broadcasts(self):
        graph = Graph(5, [])
        with SharedGraph(graph) as shared:
            attachment = shared.handle.attach()
            try:
                assert attachment.graph == graph
            finally:
                attachment.close()

    def test_close_is_idempotent(self, triangle_graph):
        shared = SharedGraph(triangle_graph)
        shared.close()
        shared.close()
        with pytest.raises(FileNotFoundError):
            shared.handle.attach()

    def test_handle_is_picklable(self, triangle_graph):
        import pickle

        with SharedGraph(triangle_graph) as shared:
            clone = pickle.loads(pickle.dumps(shared.handle))
            attachment = clone.attach()
            try:
                assert attachment.graph == triangle_graph
            finally:
                attachment.close()


# ----------------------------------------------------------------------
# Executor resolution and config validation
# ----------------------------------------------------------------------
class TestExecutorKnob:
    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert resolve_executor(None) == "thread"
        assert resolve_executor("process") == "process"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        assert resolve_executor(None) == "process"
        # An explicit knob beats the environment.
        assert resolve_executor("thread") == "thread"

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ReproError):
            resolve_executor("gpu")
        monkeypatch.setenv("REPRO_EXECUTOR", "bogus")
        with pytest.raises(ReproError):
            resolve_executor(None)

    def test_run_config_validates_executor(self):
        assert RunConfig(executor="process").executor == "process"
        assert RunConfig().executor is None
        with pytest.raises(BackendError):
            RunConfig(executor="gpu")

    def test_run_config_round_trips_executor(self):
        config = RunConfig(executor="process", workers=2, capture_distributions=True)
        assert RunConfig.from_dict(config.to_dict()) == config


# ----------------------------------------------------------------------
# Identity against the serial facade
# ----------------------------------------------------------------------
class TestProcessIdentity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_batched_explicit_seeds_identical(self, ppm, workers):
        instance, delta = ppm
        seeds = tuple(range(0, 96, 12))
        serial = detect(
            instance.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(seeds=seeds, batch_size=4),
        )
        process = detect(
            instance.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(seeds=seeds, batch_size=4, executor="process", workers=workers),
        )
        assert process.detection == serial.detection
        assert process.phase_costs == serial.phase_costs
        assert process.total_cost == serial.total_cost
        # The full computed payload of the serialized report matches, not
        # just the detection sub-dict.
        assert payload(process) == payload(serial)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_batched_pool_mode_identical(self, ppm, workers):
        """Pool mode must reproduce the serial draw sequence exactly."""
        instance, delta = ppm
        serial = detect(
            instance.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(seed=11, batch_size=4, max_seeds=6),
        )
        process = detect(
            instance.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(
                seed=11, batch_size=4, max_seeds=6, executor="process", workers=workers
            ),
        )
        assert process.detection == serial.detection
        assert [c.seed for c in process.detection.communities] == [
            c.seed for c in serial.detection.communities
        ]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_parallel_identical(self, ppm, workers):
        instance, delta = ppm
        serial = detect(
            instance.graph,
            backend="parallel",
            delta_hint=delta,
            config=RunConfig(seed=5, num_communities=2),
        )
        process = detect(
            instance.graph,
            backend="parallel",
            delta_hint=delta,
            config=RunConfig(
                seed=5, num_communities=2, executor="process", workers=workers
            ),
        )
        assert process.detection == serial.detection
        assert payload(process) == payload(serial)

    def test_env_override_routes_through_process(self, ppm, monkeypatch):
        instance, delta = ppm
        serial = detect(
            instance.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(seeds=(0, 3, 9)),
        )
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        process = detect(
            instance.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(seeds=(0, 3, 9)),
        )
        assert process.metadata["executor"] == "process"
        assert process.detection == serial.detection

    def test_capture_distributions_identical(self, ppm):
        instance, delta = ppm
        seeds = (0, 17, 40)
        serial = detect(
            instance.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(seeds=seeds, capture_distributions=True),
        )
        process = detect(
            instance.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(
                seeds=seeds,
                capture_distributions=True,
                executor="process",
                workers=2,
            ),
        )
        assert process.artifacts == serial.artifacts
        assert payload(process) == payload(serial)
        rows = serial.artifacts["final_distributions"]
        assert len(rows) == len(seeds)
        assert all(len(row) == instance.graph.num_vertices for row in rows)

    def test_edgeless_graph_falls_back_inline(self):
        graph = Graph(4, [])
        serial = detect(graph, backend="batched", config=RunConfig(seed=0))
        process = detect(
            graph, backend="batched", config=RunConfig(seed=0, executor="process")
        )
        assert process.detection == serial.detection
        assert process.metadata["worker_processes"] == 0


# ----------------------------------------------------------------------
# Report contents and serialization
# ----------------------------------------------------------------------
class TestProcessReport:
    def test_report_json_round_trip_is_exact(self, ppm):
        instance, delta = ppm
        report = detect(
            instance.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(
                seeds=(0, 9, 30),
                executor="process",
                workers=2,
                capture_distributions=True,
            ),
        )
        assert RunReport.from_json(report.to_json()) == report

    def test_timings_and_extras(self, ppm):
        instance, delta = ppm
        report = detect(
            instance.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(seeds=tuple(range(8)), executor="process", workers=2),
        )
        assert report.metadata["executor"] == "process"
        assert report.metadata["worker_processes"] == 2
        assert report.metadata["process_tasks"] >= 2
        shard_keys = [key for key in report.timings if key.startswith("shard_")]
        assert shard_keys
        assert all(report.timings[key] >= 0.0 for key in shard_keys)

    def test_thread_reports_name_their_executor(self, ppm):
        instance, delta = ppm
        report = detect(
            instance.graph,
            backend="batched",
            delta_hint=delta,
            config=RunConfig(seeds=(0,), executor="thread"),
        )
        assert report.metadata["executor"] == "thread"


# ----------------------------------------------------------------------
# Direct process-tier entry points
# ----------------------------------------------------------------------
class TestProcessEntryPoints:
    def test_invalid_seed_rejected_before_pool_start(self, two_cliques_graph):
        with pytest.raises(AlgorithmError):
            detect_batched_process(two_cliques_graph, seeds=(99,), workers=2)

    def test_invalid_batch_size_rejected(self, two_cliques_graph):
        with pytest.raises(AlgorithmError):
            detect_batched_process(two_cliques_graph, batch_size=0)

    def test_parallel_validations(self, two_cliques_graph):
        with pytest.raises(AlgorithmError):
            detect_parallel_process(two_cliques_graph, 0)
        with pytest.raises(AlgorithmError):
            detect_parallel_process(two_cliques_graph, 2, overlap_merge_threshold=0.0)

    def test_shim_capture_matches_direct_impl(self, ppm):
        from repro.core.batched import _detect_community_batch_impl

        instance, delta = ppm
        seeds = [0, 17, 40]
        direct_results, direct_finals = _detect_community_batch_impl(
            instance.graph, seeds, None, delta, capture_distributions=True
        )
        shim_results, shim_finals = detect_community_batch(
            instance.graph, seeds, delta_hint=delta, capture_distributions=True
        )
        assert shim_results == direct_results
        assert np.array_equal(shim_finals, direct_finals)
        assert shim_finals.shape == (instance.graph.num_vertices, len(seeds))

    def test_pool_reuse_across_batches(self, ppm):
        """One pool serves several batches without re-broadcasting the graph."""
        instance, delta = ppm
        from repro.core.batched import _detect_community_batch_impl

        with ProcessGraphPool(instance.graph, workers=2) as pool:
            first, _ = pool.run_seeds([0, 9], None, delta, batch_size=2)
            second, _ = pool.run_seeds([30, 55, 70], None, delta, batch_size=2)
        expected_first = _detect_community_batch_impl(instance.graph, [0, 9], None, delta)
        expected_second = _detect_community_batch_impl(
            instance.graph, [30, 55, 70], None, delta
        )
        assert first == expected_first
        assert second == expected_second
        assert pool.tasks_issued >= 3


# ----------------------------------------------------------------------
# Segment lifetime: the finalizer guard and externally-owned broadcasts
# ----------------------------------------------------------------------
class TestSharedGraphFinalizer:
    def test_orphaned_owner_unlinks_segments(self, triangle_graph):
        """If the owner is garbage-collected without close(), no segment leaks."""
        shared = SharedGraph(triangle_graph)
        handle = shared.handle
        del shared
        gc.collect()
        with pytest.raises(FileNotFoundError):
            handle.attach()

    def test_close_after_finalizer_fired_is_safe(self, triangle_graph):
        """close() and the finalizer share one release path — never a double unlink."""
        shared = SharedGraph(triangle_graph)
        shared._finalizer()
        shared.close()
        shared.close()
        with pytest.raises(FileNotFoundError):
            shared.handle.attach()

    def test_pool_with_external_broadcast_does_not_unlink(self, ppm):
        """A pool built on a session-owned SharedGraph leaves its segments alive."""
        instance, delta = ppm
        with SharedGraph(instance.graph) as shared:
            pool = ProcessGraphPool(instance.graph, workers=1, shared=shared)
            try:
                results, _ = pool.run_seeds([0], None, delta, batch_size=1)
                assert len(results) == 1
            finally:
                pool.close()
            # Workers are gone, but the broadcast must still be attachable.
            attachment = shared.handle.attach()
            attachment.close()
        with pytest.raises(FileNotFoundError):
            shared.handle.attach()

    def test_owned_broadcast_unlinked_on_pool_close(self, ppm):
        instance, delta = ppm
        pool = ProcessGraphPool(instance.graph, workers=1)
        handle = pool._shared.handle
        pool.run_seeds([0], None, delta, batch_size=1)
        pool.close()
        with pytest.raises(FileNotFoundError):
            handle.attach()


# ----------------------------------------------------------------------
# Accounting when a shard raises
# ----------------------------------------------------------------------
class TestPoolAccountingOnFailure:
    def test_poisoned_shard_leaves_pool_consistent_and_usable(self, ppm):
        instance, delta = ppm
        with ProcessGraphPool(instance.graph, workers=2) as pool:
            baseline, _ = pool.run_seeds([0, 9], None, delta, batch_size=1)
            mark = pool.mark()
            assert pool.tasks_issued == mark
            with pytest.raises(ReproError):
                pool.run_seeds(
                    [17, instance.graph.num_vertices + 5],
                    None,
                    delta,
                    batch_size=1,
                )
            # Only completed shards are recorded — the counter and the
            # timing list stay in lockstep, with no placeholder entries.
            assert pool.tasks_issued == pool.mark()
            timings = pool.shard_timings(since=mark)
            aggregates = ("shard_seconds_total", "shard_seconds_max")
            per_shard = [key for key in timings if key not in aggregates]
            assert len(per_shard) == pool.mark() - mark
            # The pool survives the failure and keeps answering correctly.
            again, _ = pool.run_seeds([0, 9], None, delta, batch_size=1)
            assert again == baseline
