"""Tests for the JSON-lines wire protocol (:mod:`repro.service_net`).

The contract: a detection requested over the socket returns the same
report — payload bit-identical after the exact JSON round trip — as the
in-process service, and every typed service error crosses the wire as
the same exception class the in-process surface raises.
"""

from __future__ import annotations

import json
import math
import socket
import threading

import pytest

from repro.api import RunConfig, detect
from repro.exceptions import (
    AlgorithmError,
    BackendError,
    DeadlineExpiredError,
    ServiceError,
)
from repro.graphs import planted_partition_graph, ppm_expected_conductance
from repro.service import DetectionService
from repro.service_net import BackgroundServer, ServiceClient

PAYLOAD_KEYS = ("backend", "detection", "phase_costs", "total_cost", "artifacts", "params")


def payload(report) -> dict:
    data = report.to_dict()
    return {key: data[key] for key in PAYLOAD_KEYS}


@pytest.fixture(scope="module")
def ppm():
    n = 256
    p = 3 * math.log(n) ** 2 / n
    q = 1.0 / n
    instance = planted_partition_graph(n, 2, p, q, seed=7)
    delta = ppm_expected_conductance(n, 2, p, q)
    return instance, delta


@pytest.fixture()
def served(ppm):
    """A running service + server; yields (config, delta, host, port, service)."""
    instance, delta = ppm
    config = RunConfig(workers=2)
    with DetectionService(
        instance.graph, config=config, delta_hint=delta
    ) as service:
        with BackgroundServer(service) as server:
            yield instance, delta, config, server.host, server.port, service


class TestWireDetect:
    def test_detect_over_wire_identical_to_facade(self, served):
        instance, delta, config, host, port, _service = served
        with ServiceClient(host, port) as client:
            reply = client.detect(40)
        one_shot = detect(
            instance.graph,
            "batched",
            config=config.with_overrides(seeds=(40,)),
            delta_hint=delta,
        )
        assert payload(reply) == payload(one_shot)
        assert reply.metadata["service_wave_size"] == 1

    def test_concurrent_connections_coalesce(self, served):
        instance, delta, config, host, port, service = served
        seeds = (0, 40, 77, 130, 171, 200)
        replies = {}
        lock = threading.Lock()
        barrier = threading.Barrier(len(seeds))

        def wire_client(vertex):
            with ServiceClient(host, port) as client:
                barrier.wait()
                report = client.detect(vertex)
            with lock:
                replies[vertex] = report

        threads = [
            threading.Thread(target=wire_client, args=(s,)) for s in seeds
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for vertex in seeds:
            one_shot = detect(
                instance.graph,
                "batched",
                config=config.with_overrides(seeds=(vertex,)),
                delta_hint=delta,
            )
            assert payload(replies[vertex]) == payload(one_shot)
        metrics = service.metrics()
        assert metrics["requests_served"] >= len(seeds)
        assert metrics["waves"] <= metrics["requests_served"]

    def test_ping_and_metrics_ops(self, served):
        *_rest, host, port, _service = served
        with ServiceClient(host, port) as client:
            assert client.ping()
            client.detect(0)
            metrics = client.metrics()
        assert metrics["requests_served"] >= 1
        assert "wave_sizes" in metrics
        assert "coalescing_ratio" in metrics


class TestWireErrors:
    def test_out_of_range_seed_raises_algorithm_error(self, served):
        instance, *_rest = served
        *_ignored, host, port, _service = served
        with ServiceClient(host, port) as client:
            with pytest.raises(AlgorithmError, match="is not a vertex of"):
                client.detect(instance.graph.num_vertices)

    def test_deadline_expiry_crosses_the_wire(self, ppm):
        instance, delta = ppm
        with DetectionService(
            instance.graph, config=RunConfig(workers=1), delta_hint=delta, start=False
        ) as service:
            with BackgroundServer(service) as server:
                # Start the dispatcher only after the request is queued, so
                # the deadline has provably expired at wave formation.
                starter = threading.Timer(0.2, service.start)
                starter.start()
                try:
                    with ServiceClient(server.host, server.port) as client:
                        with pytest.raises(DeadlineExpiredError):
                            client.detect(0, deadline=0.0)
                finally:
                    starter.cancel()

    def test_malformed_json_line_gets_bad_request(self, served):
        *_rest, host, port, _service = served
        with socket.create_connection((host, port), timeout=30) as raw:
            raw.sendall(b"this is not json\n")
            line = raw.makefile("rb").readline()
        response = json.loads(line)
        assert response["ok"] is False
        assert response["kind"] == "bad-request"

    def test_unknown_op_and_missing_seed(self, served):
        *_rest, host, port, _service = served
        with socket.create_connection((host, port), timeout=30) as raw:
            reader = raw.makefile("rb")
            raw.sendall(b'{"op": "explode", "id": 1}\n')
            response = json.loads(reader.readline())
            assert response["ok"] is False and response["kind"] == "bad-request"
            assert response["id"] == 1
            raw.sendall(b'{"op": "detect", "seed": "zero", "id": 2}\n')
            response = json.loads(reader.readline())
            assert response["ok"] is False and response["kind"] == "bad-request"
            assert "integer 'seed'" in response["error"]

    def test_client_raises_service_error_when_server_goes_away(self, ppm):
        instance, delta = ppm
        with DetectionService(
            instance.graph, config=RunConfig(workers=1), delta_hint=delta
        ) as service:
            server = BackgroundServer(service)
            host, port = server.start()
            client = ServiceClient(host, port)
            assert client.ping()
            server.stop()
            with pytest.raises((ServiceError, OSError)):
                client.detect(0)
            client.close()

    def test_bad_request_maps_to_backend_error(self, served):
        *_rest, host, port, _service = served
        with ServiceClient(host, port) as client:
            # A JSON boolean is not an acceptable wire seed, and the
            # "bad-request" kind must surface client-side as BackendError.
            with pytest.raises(BackendError, match="integer 'seed'"):
                client._roundtrip({"op": "detect", "seed": True})
