"""Tests for repro.utils: schedules, RNG handling and math helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.utils import (
    GROWTH_FACTOR,
    MIXING_THRESHOLD,
    as_rng,
    chunked,
    geometric_sizes,
    harmonic_mean,
    linear_sizes,
    log_size,
    safe_ratio,
    spawn_rngs,
    stable_hash,
)


class TestConstants:
    def test_mixing_threshold_is_half_over_e(self):
        assert MIXING_THRESHOLD == pytest.approx(1.0 / (2.0 * math.e))

    def test_growth_factor_is_paper_value(self):
        assert GROWTH_FACTOR == pytest.approx(1.0 + 1.0 / (8.0 * math.e))


class TestRng:
    def test_as_rng_accepts_int(self):
        rng = as_rng(7)
        assert isinstance(rng, np.random.Generator)

    def test_as_rng_passes_through_generator(self):
        generator = np.random.default_rng(1)
        assert as_rng(generator) is generator

    def test_as_rng_same_seed_same_stream(self):
        assert as_rng(5).integers(1 << 30) == as_rng(5).integers(1 << 30)

    def test_spawn_rngs_count_and_independence(self):
        children = spawn_rngs(3, 4)
        assert len(children) == 4
        draws = [child.integers(1 << 30) for child in children]
        assert len(set(draws)) > 1

    def test_spawn_rngs_reproducible(self):
        first = [g.integers(1 << 30) for g in spawn_rngs(3, 3)]
        second = [g.integers(1 << 30) for g in spawn_rngs(3, 3)]
        assert first == second

    def test_spawn_rngs_negative_count_raises(self):
        with pytest.raises(ReproError):
            spawn_rngs(0, -1)


class TestLogSize:
    def test_log_size_examples(self):
        assert log_size(1024) == round(math.log(1024))
        assert log_size(2) >= 1

    def test_log_size_minimum_one(self):
        assert log_size(1) == 1

    def test_log_size_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            log_size(0)


class TestGeometricSizes:
    def test_includes_start_and_stop(self):
        sizes = geometric_sizes(8, 1000)
        assert sizes[0] == 8
        assert sizes[-1] == 1000

    def test_strictly_increasing(self):
        sizes = geometric_sizes(5, 5000)
        assert all(b > a for a, b in zip(sizes, sizes[1:]))

    def test_growth_factor_respected_for_large_sizes(self):
        sizes = geometric_sizes(100, 100000, factor=2.0)
        ratios = [b / a for a, b in zip(sizes, sizes[1:-1])]
        assert all(ratio <= 2.0 + 1e-9 for ratio in ratios)

    def test_stop_below_start_returns_stop(self):
        assert geometric_sizes(10, 5) == [5]

    def test_invalid_inputs(self):
        with pytest.raises(ReproError):
            geometric_sizes(0, 10)
        with pytest.raises(ReproError):
            geometric_sizes(1, 10, factor=1.0)

    @given(start=st.integers(1, 50), stop=st.integers(1, 5000))
    @settings(max_examples=50, deadline=None)
    def test_covers_range_property(self, start, stop):
        sizes = geometric_sizes(start, stop)
        assert sizes[-1] == stop
        assert all(size >= 1 for size in sizes)
        assert sizes == sorted(set(sizes))


class TestLinearSizes:
    def test_simple_range(self):
        assert linear_sizes(3, 7) == [3, 4, 5, 6, 7]

    def test_step_and_stop_inclusion(self):
        assert linear_sizes(2, 9, step=3) == [2, 5, 8, 9]

    def test_invalid_step(self):
        with pytest.raises(ReproError):
            linear_sizes(1, 5, step=0)


class TestHarmonicMean:
    def test_equal_inputs(self):
        assert harmonic_mean(0.5, 0.5) == pytest.approx(0.5)

    def test_zero_input_gives_zero(self):
        assert harmonic_mean(0.0, 0.9) == 0.0

    def test_matches_f_score_formula(self):
        precision, recall = 0.8, 0.4
        expected = 2 * precision * recall / (precision + recall)
        assert harmonic_mean(precision, recall) == pytest.approx(expected)

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            harmonic_mean(-0.1, 0.5)

    @given(
        a=st.floats(0, 1, allow_subnormal=False),
        b=st.floats(0, 1, allow_subnormal=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_min_and_max(self, a, b):
        value = harmonic_mean(a, b)
        assert 0.0 <= value <= max(a, b) * (1 + 1e-9) + 1e-12
        if a > 0 and b > 0:
            assert value <= min(a, b) * 2 * (1 + 1e-9)


class TestSafeRatio:
    def test_normal_division(self):
        assert safe_ratio(6, 3) == 2

    def test_zero_denominator_default(self):
        assert safe_ratio(1, 0) == 0.0
        assert safe_ratio(1, 0, default=5.0) == 5.0


class TestChunked:
    def test_even_chunks(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunked([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]

    def test_invalid_size(self):
        with pytest.raises(ReproError):
            list(chunked([1], 0))


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(12345, 16) == stable_hash(12345, 16)

    def test_within_modulus(self):
        for value in range(100):
            assert 0 <= stable_hash(value, 7) < 7

    def test_spreads_values(self):
        buckets = {stable_hash(v, 8) for v in range(1000)}
        assert buckets == set(range(8))

    def test_invalid_modulus(self):
        with pytest.raises(ReproError):
            stable_hash(1, 0)
