"""Tests for the concurrent :class:`repro.service.DetectionService`.

The contract under test (see ``src/repro/service.py``): N concurrent
single-seed clients must receive payloads **bit-identical** to N one-shot
``detect()`` calls, on both executors at workers ∈ {1, 2, 4}, while the
service coalesces the pending requests into strictly fewer
``detect_batch`` waves than requests.  Backpressure, deadlines, duplicate
fan-out and shutdown semantics are pinned alongside.
"""

from __future__ import annotations

import asyncio
import math
import threading

import pytest

from repro.api import RunConfig, detect, split_batched_report
from repro.exceptions import (
    AlgorithmError,
    BackendError,
    DeadlineExpiredError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.graphs import planted_partition_graph, ppm_expected_conductance
from repro.service import DetectionService
from repro.session import DetectionSession

WORKER_COUNTS = (1, 2, 4)
EXECUTORS = ("thread", "process")

#: The parts of a serialized report the run *computes* — required identical
#: between service replies and one-shot runs.  ``config`` / ``timings`` /
#: ``metadata`` describe the run (the service adds wave facts and a metrics
#: snapshot to ``metadata``).
PAYLOAD_KEYS = ("backend", "detection", "phase_costs", "total_cost", "artifacts", "params")


def payload(report) -> dict:
    data = report.to_dict()
    return {key: data[key] for key in PAYLOAD_KEYS}


@pytest.fixture(scope="module")
def ppm():
    """A small PPM instance plus its analytic conductance hint."""
    n = 256
    p = 3 * math.log(n) ** 2 / n
    q = 1.0 / n
    instance = planted_partition_graph(n, 2, p, q, seed=7)
    delta = ppm_expected_conductance(n, 2, p, q)
    return instance, delta


def submit_concurrently(service, seeds):
    """Submit one request per seed from one thread per seed, concurrently."""
    barrier = threading.Barrier(len(seeds))
    futures = {}

    def client(vertex):
        barrier.wait()
        futures[vertex] = service.submit(vertex)

    threads = [threading.Thread(target=client, args=(s,)) for s in seeds]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return futures


# ----------------------------------------------------------------------
# Bit-identity against the one-shot facade (satellite: service semantics)
# ----------------------------------------------------------------------
class TestConcurrentIdentity:
    SEEDS = (0, 17, 40, 77, 130, 171, 200, 233)

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_concurrent_clients_bit_identical(self, ppm, executor, workers):
        # start=False holds the dispatcher until every client thread has
        # submitted: genuinely concurrent admission, deterministic waves.
        instance, delta = ppm
        config = RunConfig(workers=workers, executor=executor)
        with DetectionService(
            instance.graph, config=config, delta_hint=delta, start=False
        ) as service:
            futures = submit_concurrently(service, self.SEEDS)
            service.start()
            replies = {s: futures[s].result(timeout=600) for s in self.SEEDS}
            metrics = service.metrics()
        # Coalescing counter: strictly fewer waves than requests.
        assert 1 <= metrics["waves"] < len(self.SEEDS)
        assert metrics["requests_served"] == len(self.SEEDS)
        assert metrics["coalescing_ratio"] > 1.0
        for vertex in self.SEEDS:
            one_shot = detect(
                instance.graph,
                "batched",
                config=config.with_overrides(seeds=(vertex,)),
                delta_hint=delta,
            )
            assert payload(replies[vertex]) == payload(one_shot)

    def test_live_dispatcher_identity(self, ppm):
        # Clients submit against a running dispatcher and block on their own
        # results — the service must coalesce whatever overlaps and never
        # change a payload.
        instance, delta = ppm
        config = RunConfig(workers=2)
        seeds = self.SEEDS
        replies = {}
        lock = threading.Lock()
        barrier = threading.Barrier(len(seeds))

        def client(service, vertex):
            barrier.wait()
            report = service.submit(vertex).result(timeout=600)
            with lock:
                replies[vertex] = report

        with DetectionService(
            instance.graph, config=config, delta_hint=delta
        ) as service:
            threads = [
                threading.Thread(target=client, args=(service, s)) for s in seeds
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            metrics = service.metrics()
        assert metrics["waves"] <= len(seeds)
        assert metrics["requests_served"] == len(seeds)
        for vertex in seeds:
            one_shot = detect(
                instance.graph,
                "batched",
                config=config.with_overrides(seeds=(vertex,)),
                delta_hint=delta,
            )
            assert payload(replies[vertex]) == payload(one_shot)

    def test_capture_distributions_rows_sliced_exactly(self, ppm):
        instance, delta = ppm
        config = RunConfig(workers=1, capture_distributions=True)
        with DetectionService(
            instance.graph, config=config, delta_hint=delta, start=False
        ) as service:
            futures = {s: service.submit(s) for s in (0, 130)}
            service.start()
            replies = {s: f.result(timeout=600) for s, f in futures.items()}
        for vertex, reply in replies.items():
            one_shot = detect(
                instance.graph,
                "batched",
                config=config.with_overrides(seeds=(vertex,)),
                delta_hint=delta,
            )
            assert payload(reply) == payload(one_shot)
            assert "final_distributions" in reply.artifacts


# ----------------------------------------------------------------------
# Wave formation and coalescing mechanics
# ----------------------------------------------------------------------
class TestWaveFormation:
    def test_paused_service_coalesces_up_to_max_wave(self, ppm):
        instance, delta = ppm
        with DetectionService(
            instance.graph,
            config=RunConfig(workers=1),
            delta_hint=delta,
            max_wave=4,
            start=False,
        ) as service:
            futures = [service.submit(s) for s in range(10)]
            service.start()
            for future in futures:
                future.result(timeout=600)
            metrics = service.metrics()
        assert metrics["waves"] == 3  # 4 + 4 + 2
        assert metrics["wave_sizes"] == {"2": 1, "4": 2}
        assert metrics["coalescing_ratio"] == pytest.approx(10 / 3)

    def test_duplicate_seeds_share_one_wave_slot(self, ppm):
        instance, delta = ppm
        with DetectionService(
            instance.graph, config=RunConfig(workers=1), delta_hint=delta, start=False
        ) as service:
            futures = [service.submit(5), service.submit(5), service.submit(5),
                       service.submit(9)]
            service.start()
            replies = [future.result(timeout=600) for future in futures]
            metrics = service.metrics()
        assert metrics["waves"] == 1
        assert metrics["wave_sizes"] == {"2": 1}  # seeds {5, 9}, one wave
        assert metrics["duplicate_requests_coalesced"] == 2
        assert payload(replies[0]) == payload(replies[1]) == payload(replies[2])
        assert replies[3].detection.communities[0].seed == 9

    def test_reply_metadata_carries_service_observability(self, ppm):
        instance, delta = ppm
        with DetectionService(
            instance.graph, config=RunConfig(workers=1), delta_hint=delta, start=False
        ) as service:
            futures = [service.submit(s) for s in (0, 40)]
            service.start()
            reply = futures[0].result(timeout=600)
            futures[1].result(timeout=600)
        assert reply.metadata["service_wave"] == 1
        assert reply.metadata["service_wave_size"] == 2
        assert reply.metadata["service_wave_requests"] == 2
        assert reply.metadata["service_coalesced"] is True
        snapshot = reply.metadata["service_metrics"]
        assert snapshot["wave_sizes"] == {"2": 1}
        assert snapshot["coalescing_ratio"] == 2.0
        assert snapshot["requests_rejected"] == 0
        assert snapshot["requests_expired"] == 0
        assert reply.timings["service_queue_wait_seconds"] >= 0.0
        assert reply.timings["service_wave_seconds"] > 0.0
        # The reply must survive the report's exact JSON round trip.
        from repro.api import RunReport

        assert RunReport.from_json(reply.to_json()) == reply


# ----------------------------------------------------------------------
# Backpressure (satellite: overload-rejection path)
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_overload_rejection_and_recovery(self, ppm):
        instance, delta = ppm
        with DetectionService(
            instance.graph,
            config=RunConfig(workers=1),
            delta_hint=delta,
            max_pending=2,
            start=False,
        ) as service:
            first = service.submit(0)
            second = service.submit(1)
            with pytest.raises(ServiceOverloadedError, match="admission queue is full"):
                service.submit(2)
            assert service.metrics()["requests_rejected"] == 1
            service.start()
            first.result(timeout=600)
            second.result(timeout=600)
            # Queue drained: admissions flow again.
            third = service.submit(2)
            assert third.result(timeout=600).detection.communities[0].seed == 2

    def test_rejection_does_not_fail_admitted_requests(self, ppm):
        instance, delta = ppm
        with DetectionService(
            instance.graph,
            config=RunConfig(workers=1),
            delta_hint=delta,
            max_pending=1,
            start=False,
        ) as service:
            admitted = service.submit(0)
            with pytest.raises(ServiceOverloadedError):
                service.submit(1)
            service.start()
            assert admitted.result(timeout=600).detection.num_communities == 1


# ----------------------------------------------------------------------
# Deadlines (satellite: deadline-expiry path)
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_request_fails_before_wave_formation(self, ppm):
        instance, delta = ppm
        with DetectionService(
            instance.graph, config=RunConfig(workers=1), delta_hint=delta, start=False
        ) as service:
            doomed = service.submit(0, deadline=0.0)
            healthy = service.submit(40)
            service.start()
            with pytest.raises(DeadlineExpiredError, match="expired in the admission queue"):
                doomed.result(timeout=600)
            report = healthy.result(timeout=600)
            metrics = service.metrics()
        assert metrics["requests_expired"] == 1
        assert metrics["requests_served"] == 1
        # The expired request never occupied a wave slot.
        assert report.metadata["service_wave_size"] == 1

    def test_generous_deadline_is_served(self, ppm):
        instance, delta = ppm
        with DetectionService(
            instance.graph, config=RunConfig(workers=1), delta_hint=delta
        ) as service:
            report = service.submit(0, deadline=600.0).result(timeout=600)
        assert report.detection.communities[0].seed == 0

    def test_cancelled_future_skips_the_wave(self, ppm):
        instance, delta = ppm
        with DetectionService(
            instance.graph, config=RunConfig(workers=1), delta_hint=delta, start=False
        ) as service:
            doomed = service.submit(0)
            healthy = service.submit(40)
            assert doomed.cancel()
            service.start()
            healthy.result(timeout=600)
            metrics = service.metrics()
        assert metrics["requests_cancelled"] == 1
        assert metrics["requests_served"] == 1


# ----------------------------------------------------------------------
# Async front end
# ----------------------------------------------------------------------
class TestAsyncFrontEnd:
    def test_async_detect_matches_one_shot(self, ppm):
        instance, delta = ppm
        config = RunConfig(workers=2)
        seeds = (0, 40, 130, 200)

        async def gather(service):
            return await asyncio.gather(*(service.detect(s) for s in seeds))

        with DetectionService(
            instance.graph, config=config, delta_hint=delta
        ) as service:
            replies = asyncio.run(gather(service))
            metrics = service.metrics()
        assert metrics["requests_served"] == len(seeds)
        for vertex, reply in zip(seeds, replies):
            one_shot = detect(
                instance.graph,
                "batched",
                config=config.with_overrides(seeds=(vertex,)),
                delta_hint=delta,
            )
            assert payload(reply) == payload(one_shot)

    def test_async_deadline_error_propagates(self, ppm):
        instance, delta = ppm

        async def scenario(service):
            task = asyncio.ensure_future(service.detect(0, deadline=0.0))
            await asyncio.sleep(0)  # let the submit land before starting
            service.start()
            with pytest.raises(DeadlineExpiredError):
                await task

        with DetectionService(
            instance.graph, config=RunConfig(workers=1), delta_hint=delta, start=False
        ) as service:
            asyncio.run(scenario(service))

    def test_async_typed_rejections_are_synchronous_errors(self, ppm):
        instance, delta = ppm

        async def scenario(service):
            with pytest.raises(AlgorithmError, match="is not a vertex"):
                await service.detect(instance.graph.num_vertices)

        with DetectionService(
            instance.graph, config=RunConfig(workers=1), delta_hint=delta
        ) as service:
            asyncio.run(scenario(service))


# ----------------------------------------------------------------------
# Admission validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_out_of_range_seed_rejected_synchronously(self, ppm):
        instance, delta = ppm
        with DetectionService(
            instance.graph, config=RunConfig(workers=1), delta_hint=delta
        ) as service:
            with pytest.raises(AlgorithmError, match="is not a vertex of"):
                service.submit(instance.graph.num_vertices)
            with pytest.raises(AlgorithmError, match="is not a vertex of"):
                service.submit(-1)
            assert service.metrics()["requests_admitted"] == 0

    def test_non_integer_seed_rejected(self, ppm):
        instance, delta = ppm
        with DetectionService(
            instance.graph, config=RunConfig(workers=1), delta_hint=delta
        ) as service:
            with pytest.raises(BackendError, match="must be an integer"):
                service.submit("zero")

    def test_constructor_needs_exactly_one_of_graph_or_session(self, ppm):
        instance, delta = ppm
        with pytest.raises(BackendError, match="exactly one of"):
            DetectionService()
        with DetectionSession(instance.graph, delta_hint=delta) as session:
            with pytest.raises(BackendError, match="exactly one of"):
                DetectionService(instance.graph, session=session)
            with pytest.raises(BackendError, match="belong to the session"):
                DetectionService(session=session, config=RunConfig())

    def test_bounds_validated(self, ppm):
        instance, _ = ppm
        with pytest.raises(BackendError, match="max_pending"):
            DetectionService(instance.graph, max_pending=0)
        with pytest.raises(BackendError, match="max_wave"):
            DetectionService(instance.graph, max_wave=0)


# ----------------------------------------------------------------------
# Shutdown semantics
# ----------------------------------------------------------------------
class TestShutdown:
    def test_close_drains_pending_requests(self, ppm):
        instance, delta = ppm
        service = DetectionService(
            instance.graph, config=RunConfig(workers=1), delta_hint=delta, start=False
        )
        futures = [service.submit(s) for s in (0, 40, 130)]
        service.close()  # drain=True default: every admitted request is served
        assert service.closed
        for vertex, future in zip((0, 40, 130), futures):
            assert future.result(timeout=1).detection.communities[0].seed == vertex
        with pytest.raises(ServiceClosedError):
            service.submit(200)

    def test_close_without_drain_abandons_pending(self, ppm):
        instance, delta = ppm
        service = DetectionService(
            instance.graph, config=RunConfig(workers=1), delta_hint=delta, start=False
        )
        futures = [service.submit(s) for s in (0, 40)]
        service.close(drain=False)
        for future in futures:
            with pytest.raises(ServiceClosedError, match="closed before this request"):
                future.result(timeout=1)
        assert service.metrics()["requests_abandoned"] == 2

    def test_owned_session_closed_with_service(self, ppm):
        instance, delta = ppm
        with DetectionService(instance.graph, delta_hint=delta) as service:
            session = service.session
            assert not session.closed
        assert session.closed

    def test_adopted_session_left_open(self, ppm):
        instance, delta = ppm
        with DetectionSession(instance.graph, delta_hint=delta) as session:
            with DetectionService(session=session) as service:
                service.submit(0).result(timeout=600)
            assert not session.closed
            # The session still works after the service is gone.
            session.detect(seeds=(40,))

    def test_start_after_close_raises(self, ppm):
        instance, delta = ppm
        service = DetectionService(instance.graph, delta_hint=delta, start=False)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.start()
        service.close()  # idempotent


# ----------------------------------------------------------------------
# Lock-discipline regressions (PR 10 — found by the REP2xx analyzer)
# ----------------------------------------------------------------------
class TestConcurrencyRegressions:
    def test_submit_close_race_strands_no_future(self, ppm):
        # submit() used to construct the reply future *before* the
        # closed/full checks (REP204): a rejection raised past a pending
        # future nobody could ever resolve.  Race submits against close()
        # and require a total outcome for every client — a served report
        # or a synchronous ServiceClosedError, never a forever-pending
        # future.
        instance, delta = ppm
        seeds = (0, 40, 130)
        for _ in range(3):
            service = DetectionService(
                instance.graph,
                config=RunConfig(workers=1),
                delta_hint=delta,
                start=False,
            )
            barrier = threading.Barrier(len(seeds) + 1)
            outcomes = {}

            def client(vertex, service=service, barrier=barrier, outcomes=outcomes):
                barrier.wait()
                try:
                    outcomes[vertex] = service.submit(vertex)
                except ServiceClosedError:
                    outcomes[vertex] = None

            threads = [threading.Thread(target=client, args=(v,)) for v in seeds]
            for thread in threads:
                thread.start()
            barrier.wait()
            service.close()  # drain=True: whatever won admission is served
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive()
            assert service.closed
            for vertex in seeds:
                future = outcomes[vertex]
                if future is not None:
                    report = future.result(timeout=600)
                    assert report.detection.communities[0].seed == vertex

    def test_closed_property_consistent_under_lock(self, ppm):
        instance, delta = ppm
        service = DetectionService(instance.graph, delta_hint=delta, start=False)
        assert not service.closed
        repr(service)  # state snapshot reads take the lock, must not hang
        service.close()
        assert service.closed
        assert "closed" in repr(service)


# ----------------------------------------------------------------------
# Wave-report slicing helper
# ----------------------------------------------------------------------
class TestSplitBatchedReport:
    def test_split_matches_single_seed_calls(self, ppm):
        instance, delta = ppm
        config = RunConfig(
            workers=1, seeds=(0, 40, 130), batch_size=3, capture_distributions=True
        )
        wave = detect(instance.graph, "batched", config=config, delta_hint=delta)
        singles = split_batched_report(wave)
        assert len(singles) == 3
        for vertex, single in zip((0, 40, 130), singles):
            one_shot = detect(
                instance.graph,
                "batched",
                config=config.with_overrides(seeds=(vertex,), batch_size=3),
                delta_hint=delta,
            )
            assert payload(single) == payload(one_shot)

    def test_split_rejects_pool_mode_reports(self, ppm):
        instance, delta = ppm
        report = detect(
            instance.graph,
            "batched",
            config=RunConfig(workers=1, max_seeds=2),
            delta_hint=delta,
        )
        with pytest.raises(BackendError, match="pool-mode"):
            split_batched_report(report)

    def test_split_rejects_costed_reports(self, ppm):
        instance, delta = ppm
        report = detect(
            instance.graph,
            "congest",
            config=RunConfig(max_seeds=1),
            delta_hint=delta,
        )
        with pytest.raises(BackendError, match="phase costs"):
            split_batched_report(report)
