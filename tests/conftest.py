"""Shared pytest fixtures: small deterministic graphs used across the test suite."""

from __future__ import annotations

import math

import pytest

from repro.graphs import Graph, gnp_random_graph, planted_partition_graph


@pytest.fixture(scope="session")
def triangle_graph() -> Graph:
    """A 3-cycle: the smallest connected non-bipartite graph."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture(scope="session")
def path_graph() -> Graph:
    """A 5-vertex path: tree structure with known distances."""
    return Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture(scope="session")
def two_cliques_graph() -> Graph:
    """Two 5-cliques joined by a single bridge edge: an obvious 2-community graph."""
    edges = []
    for offset in (0, 5):
        for i in range(5):
            for j in range(i + 1, 5):
                edges.append((offset + i, offset + j))
    edges.append((0, 5))
    return Graph(10, edges)


@pytest.fixture(scope="session")
def small_gnp_graph() -> Graph:
    """A 128-vertex G(n, p) graph above the connectivity threshold."""
    n = 128
    return gnp_random_graph(n, 3 * math.log(n) / n, seed=42)


@pytest.fixture(scope="session")
def small_ppm():
    """A 256-vertex, 2-block PPM instance with a clear community structure."""
    n = 256
    p = 3 * math.log(n) ** 2 / n
    q = 1.0 / n
    return planted_partition_graph(n, 2, p, q, seed=7)


@pytest.fixture(scope="session")
def medium_ppm():
    """A 512-vertex, 4-block PPM instance (denser, well separated)."""
    n = 512
    p = 2 * math.log(n) ** 2 / n
    q = p / (1.2 * math.log2(n) ** 2)
    return planted_partition_graph(n, 4, p, q, seed=13)
