"""End-to-end integration tests: the paper's headline claims on small instances.

These tests exercise the public API exactly the way the examples and
benchmarks do, and check the qualitative claims of the paper:

* a pure random graph is detected as one community (Figure 2),
* PPM blocks are recovered when ``q`` is far below ``p/(r log(n/r))``
  (Theorem 6 / Figure 3), and accuracy degrades as ``q`` approaches ``p``,
* the three execution models (centralized, CONGEST, k-machine) agree on the
  detected communities, and
* the measured distributed complexities behave as the analysis predicts.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    CDRWParameters,
    Partition,
    average_f_score,
    detect_communities,
    gnp_random_graph,
    planted_partition_graph,
)
from repro.congest import detect_community_congest
from repro.graphs import mixing_parameter, ppm_expected_conductance
from repro.kmachine import detect_community_kmachine
from repro.metrics import normalized_mutual_information


class TestHeadlineClaims:
    def test_random_graph_is_one_community(self):
        n = 512
        graph = gnp_random_graph(n, 2 * math.log(n) / n, seed=21)
        detection = detect_communities(graph, delta_hint=0.0, seed=21)
        f_score = average_f_score(detection, Partition.single_community(n))
        assert f_score > 0.95

    def test_well_separated_ppm_recovered(self):
        n, r = 512, 2
        p = 2 * math.log(n) ** 2 / n
        q = 0.6 / n
        ppm = planted_partition_graph(n, r, p, q, seed=8)
        delta = ppm_expected_conductance(n, r, p, q)
        detection = detect_communities(ppm.graph, delta_hint=delta, seed=8)
        assert average_f_score(detection, ppm.partition) > 0.9

    def test_accuracy_degrades_as_q_grows(self):
        n, r = 512, 2
        p = 2 * math.log(n) ** 2 / n
        scores = []
        for q in (0.1 / n, math.log(n) ** 2 / n):
            ppm = planted_partition_graph(n, r, p, q, seed=9)
            delta = ppm_expected_conductance(n, r, p, q)
            detection = detect_communities(ppm.graph, delta_hint=delta, seed=9)
            scores.append(average_f_score(detection, ppm.partition))
        assert scores[0] > scores[1]

    def test_theorem_regime_indicator(self):
        # q = o(p / (r log(n/r))) is the regime of Theorem 6: the per-step
        # escape probability is then o(1/log(n/r)).
        n, r = 2048, 4
        p = 2 * math.log(n) ** 2 / n
        q_good = p / (4 * r * math.log(n / r))
        q_bad = p / 2
        assert mixing_parameter(n, r, p, q_good) < 1.0 / math.log(n / r)
        assert mixing_parameter(n, r, p, q_bad) > 1.0 / math.log(n / r)


class TestExecutionModelAgreement:
    def test_centralized_congest_kmachine_agree(self, small_ppm):
        graph = small_ppm.graph
        delta = ppm_expected_conductance(
            graph.num_vertices, 2, small_ppm.intra_probability, small_ppm.inter_probability
        )
        seed_vertex = 17
        from repro.core import detect_community

        centralized = detect_community(graph, seed_vertex, delta_hint=delta)
        congest = detect_community_congest(graph, seed_vertex, delta_hint=delta)
        kmachine = detect_community_kmachine(
            graph, seed_vertex, 4, delta_hint=delta, partition_seed=0
        )
        assert congest.community.community == centralized.community
        assert kmachine.community.community == centralized.community

    def test_partitions_agree_between_runs(self, small_ppm):
        graph, truth = small_ppm.graph, small_ppm.partition
        delta = ppm_expected_conductance(
            graph.num_vertices, 2, small_ppm.intra_probability, small_ppm.inter_probability
        )
        detection = detect_communities(graph, delta_hint=delta, seed=30)
        partition = detection.to_partition()
        assert normalized_mutual_information(partition, truth) > 0.7


class TestParameterAblations:
    def test_linear_schedule_matches_geometric_accuracy(self, small_ppm):
        graph, truth = small_ppm.graph, small_ppm.partition
        delta = ppm_expected_conductance(
            graph.num_vertices, 2, small_ppm.intra_probability, small_ppm.inter_probability
        )
        geometric = detect_communities(
            graph, CDRWParameters(size_schedule="geometric"), delta_hint=delta, seed=4
        )
        linear = detect_communities(
            graph, CDRWParameters(size_schedule="linear"), delta_hint=delta, seed=4
        )
        assert abs(
            average_f_score(geometric, truth) - average_f_score(linear, truth)
        ) < 0.1

    def test_lazy_walk_variant_still_accurate(self, small_ppm):
        graph, truth = small_ppm.graph, small_ppm.partition
        delta = ppm_expected_conductance(
            graph.num_vertices, 2, small_ppm.intra_probability, small_ppm.inter_probability
        )
        detection = detect_communities(
            graph, CDRWParameters(lazy_walk=True, walk_length_factor=8), delta_hint=delta, seed=4
        )
        assert average_f_score(detection, truth) > 0.75

    def test_larger_delta_stops_earlier(self, small_ppm):
        graph = small_ppm.graph
        small_delta = detect_communities(
            graph, CDRWParameters(delta=0.02), seed=6, max_seeds=1
        )
        large_delta = detect_communities(
            graph, CDRWParameters(delta=5.0), seed=6, max_seeds=1
        )
        assert (
            large_delta.communities[0].walk_length
            <= small_delta.communities[0].walk_length
        )
