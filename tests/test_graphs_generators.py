"""Tests for the random graph generators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import GeneratorError
from repro.graphs import (
    connectivity_threshold,
    dense_intra_probability,
    gnp_random_graph,
    is_connected,
    planted_partition_graph,
    random_regular_graph,
    sparse_intra_probability,
    stochastic_block_model_graph,
)


class TestThresholds:
    def test_connectivity_threshold_value(self):
        assert connectivity_threshold(1024) == pytest.approx(math.log(1024) / 1024)

    def test_sparse_and_dense_probabilities(self):
        n = 2048
        assert sparse_intra_probability(n) == pytest.approx(2 * math.log(n) / n)
        assert dense_intra_probability(n) == pytest.approx(2 * math.log(n) ** 2 / n)

    def test_probabilities_clamped_to_one(self):
        assert dense_intra_probability(4, factor=100) == 1.0

    def test_small_n_rejected(self):
        with pytest.raises(GeneratorError):
            connectivity_threshold(1)


class TestGnp:
    def test_deterministic_with_seed(self):
        a = gnp_random_graph(100, 0.1, seed=3)
        b = gnp_random_graph(100, 0.1, seed=3)
        assert a == b

    def test_extreme_probabilities(self):
        empty = gnp_random_graph(20, 0.0, seed=1)
        complete = gnp_random_graph(20, 1.0, seed=1)
        assert empty.num_edges == 0
        assert complete.num_edges == 20 * 19 // 2

    def test_edge_count_near_expectation(self):
        n, p = 400, 0.05
        graph = gnp_random_graph(n, p, seed=5)
        expected = p * n * (n - 1) / 2
        assert abs(graph.num_edges - expected) < 5 * math.sqrt(expected)

    def test_connected_above_threshold(self):
        n = 256
        graph = gnp_random_graph(n, 3 * math.log(n) / n, seed=2)
        assert is_connected(graph)

    def test_invalid_probability(self):
        with pytest.raises(GeneratorError):
            gnp_random_graph(10, 1.5)

    def test_negative_size(self):
        with pytest.raises(GeneratorError):
            gnp_random_graph(-5, 0.1)


class TestPlantedPartition:
    def test_partition_shape(self):
        ppm = planted_partition_graph(120, 4, 0.4, 0.01, seed=1)
        assert ppm.num_blocks == 4
        assert ppm.partition.sizes() == [30, 30, 30, 30]
        assert ppm.graph.num_vertices == 120

    def test_blocks_are_contiguous_ranges(self):
        ppm = planted_partition_graph(40, 2, 0.5, 0.0, seed=1)
        assert ppm.partition.members(0) == frozenset(range(20))
        assert ppm.partition.members(1) == frozenset(range(20, 40))

    def test_zero_inter_probability_isolates_blocks(self):
        ppm = planted_partition_graph(60, 3, 0.8, 0.0, seed=4)
        for block in ppm.partition.communities():
            assert ppm.graph.cut_size(block) == 0

    def test_intra_denser_than_inter(self):
        ppm = planted_partition_graph(200, 2, 0.3, 0.01, seed=9)
        block = ppm.partition.members(0)
        intra = ppm.graph.induced_edge_count(block)
        inter = ppm.graph.cut_size(block)
        assert intra > inter

    def test_indivisible_size_rejected(self):
        with pytest.raises(GeneratorError):
            planted_partition_graph(10, 3, 0.5, 0.1)

    def test_reproducible(self):
        a = planted_partition_graph(80, 2, 0.3, 0.02, seed=6)
        b = planted_partition_graph(80, 2, 0.3, 0.02, seed=6)
        assert a.graph == b.graph

    def test_single_block_is_gnp(self):
        ppm = planted_partition_graph(50, 1, 0.2, 0.0, seed=3)
        assert ppm.num_blocks == 1
        assert ppm.partition.sizes() == [50]


class TestStochasticBlockModel:
    def test_general_matrix(self):
        sbm = stochastic_block_model_graph(
            [20, 30], [[0.5, 0.01], [0.01, 0.4]], seed=2
        )
        assert sbm.graph.num_vertices == 50
        assert sbm.partition.sizes() == [20, 30]
        assert sbm.intra_probability is None  # unequal diagonal
        assert sbm.inter_probability == pytest.approx(0.01)

    def test_symmetric_matrix_reports_probabilities(self):
        sbm = stochastic_block_model_graph(
            [25, 25], [[0.3, 0.02], [0.02, 0.3]], seed=2
        )
        assert sbm.intra_probability == pytest.approx(0.3)
        assert sbm.inter_probability == pytest.approx(0.02)

    def test_asymmetric_matrix_rejected(self):
        with pytest.raises(GeneratorError):
            stochastic_block_model_graph([10, 10], [[0.5, 0.1], [0.2, 0.5]])

    def test_bad_shape_rejected(self):
        with pytest.raises(GeneratorError):
            stochastic_block_model_graph([10, 10], [[0.5, 0.1]])

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(GeneratorError):
            stochastic_block_model_graph([10, 10], [[0.5, 1.2], [1.2, 0.5]])


class TestRandomRegular:
    def test_degrees_are_regular(self):
        graph = random_regular_graph(30, 4, seed=1)
        assert set(graph.degrees().tolist()) == {4}

    def test_zero_degree(self):
        graph = random_regular_graph(10, 0, seed=1)
        assert graph.num_edges == 0

    def test_odd_total_degree_rejected(self):
        with pytest.raises(GeneratorError):
            random_regular_graph(5, 3)

    def test_degree_too_large_rejected(self):
        with pytest.raises(GeneratorError):
            random_regular_graph(5, 5)
