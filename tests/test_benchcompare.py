"""Tests for the benchmark regression differ (``repro bench --compare``).

The key taxonomy is the contract CI leans on: ``*_s`` timings may drift
within the threshold, ``*_speedup`` ratios may not drop beyond it, and
everything else — identity gates, traffic counters — must match exactly.
Dropped keys are regressions; added keys are informational.
"""

from __future__ import annotations

import json

import pytest

from repro.benchcompare import (
    DEFAULT_THRESHOLD,
    compare_documents,
    compare_files,
    load_benchmark_document,
    render_comparison,
)
from repro.cli import main as cli_main
from repro.exceptions import ReproError


def doc(results: dict, benchmark: str = "graph_kernel") -> dict:
    return {"benchmark": benchmark, "results": results}


class TestKeyTaxonomy:
    def test_timing_within_threshold_is_ok(self):
        comparison = compare_documents(
            doc({"detect_s": 1.0}), doc({"detect_s": 1.15})
        )
        (delta,) = comparison.deltas
        assert delta.kind == "timing"
        assert delta.worsening == pytest.approx(0.15)
        assert not delta.regressed
        assert comparison.ok

    def test_timing_beyond_threshold_regresses(self):
        comparison = compare_documents(
            doc({"detect_s": 1.0}), doc({"detect_s": 1.5})
        )
        (delta,) = comparison.deltas
        assert delta.regressed
        assert not comparison.ok

    def test_timing_improvement_never_fatal(self):
        comparison = compare_documents(
            doc({"detect_s": 2.0}), doc({"detect_s": 0.5})
        )
        (delta,) = comparison.deltas
        assert delta.worsening == pytest.approx(-0.75)
        assert comparison.ok

    def test_speedup_drop_beyond_threshold_regresses(self):
        comparison = compare_documents(
            doc({"workers4_speedup": 3.0}), doc({"workers4_speedup": 2.0})
        )
        (delta,) = comparison.deltas
        assert delta.kind == "speedup"
        assert delta.worsening == pytest.approx(1.0 / 3.0)
        assert delta.regressed

    def test_speedup_gain_is_ok(self):
        comparison = compare_documents(
            doc({"workers4_speedup": 2.0}), doc({"workers4_speedup": 3.0})
        )
        assert comparison.ok

    def test_identity_any_change_regresses(self):
        comparison = compare_documents(
            doc({"batched_identical": 1.0}), doc({"batched_identical": 0.0})
        )
        (delta,) = comparison.deltas
        assert delta.kind == "identity"
        assert delta.worsening == float("inf")
        assert delta.regressed

    def test_identity_exact_match_is_ok(self):
        comparison = compare_documents(
            doc({"session_broadcasts": 3.0}), doc({"session_broadcasts": 3.0})
        )
        (delta,) = comparison.deltas
        assert delta.worsening == 0.0
        assert comparison.ok

    def test_identity_tolerates_no_epsilon(self):
        comparison = compare_documents(
            doc({"boundary_bytes": 100.0}), doc({"boundary_bytes": 100.001})
        )
        assert not comparison.ok

    def test_threshold_boundary_is_exclusive(self):
        # Worsening exactly at the threshold passes; only strictly beyond fails.
        at = compare_documents(
            doc({"detect_s": 1.0}), doc({"detect_s": 1.0 + DEFAULT_THRESHOLD})
        )
        assert at.ok
        beyond = compare_documents(
            doc({"detect_s": 1.0}),
            doc({"detect_s": 1.0 + DEFAULT_THRESHOLD + 1e-9}),
        )
        assert not beyond.ok

    def test_custom_threshold(self):
        old, new = doc({"detect_s": 1.0}), doc({"detect_s": 1.1})
        assert compare_documents(old, new, threshold=0.2).ok
        assert not compare_documents(old, new, threshold=0.05).ok

    def test_negative_threshold_rejected(self):
        with pytest.raises(ReproError):
            compare_documents(doc({}), doc({}), threshold=-0.1)


class TestKeySets:
    def test_dropped_key_is_regression(self):
        comparison = compare_documents(
            doc({"detect_s": 1.0, "batched_identical": 1.0}),
            doc({"detect_s": 1.0}),
        )
        assert comparison.missing_keys == ("batched_identical",)
        assert not comparison.ok

    def test_added_key_is_informational(self):
        comparison = compare_documents(
            doc({"detect_s": 1.0}),
            doc({"detect_s": 1.0, "sharded_workers2_s": 0.5}),
        )
        assert comparison.added_keys == ("sharded_workers2_s",)
        assert comparison.ok

    def test_non_numeric_values_skipped(self):
        comparison = compare_documents(
            doc({"detect_s": 1.0, "label": "fast"}),
            doc({"detect_s": 1.0, "label": "slow"}),
        )
        assert [delta.key for delta in comparison.deltas] == ["detect_s"]
        assert comparison.ok

    def test_deltas_sorted_by_key(self):
        results = {"z_s": 1.0, "a_s": 1.0, "m_identical": 1.0}
        comparison = compare_documents(doc(results), doc(results))
        assert [d.key for d in comparison.deltas] == ["a_s", "m_identical", "z_s"]


class TestLoading:
    def test_compare_files_round_trip(self, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(doc({"detect_s": 1.0})), encoding="utf-8")
        new.write_text(json.dumps(doc({"detect_s": 1.1})), encoding="utf-8")
        comparison = compare_files(old, new)
        assert comparison.ok
        assert comparison.benchmark == "graph_kernel"

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_benchmark_document(path)

    def test_document_without_results_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"benchmark": "x"}), encoding="utf-8")
        with pytest.raises(ReproError, match="results"):
            load_benchmark_document(path)

    def test_results_must_be_mapping(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text(json.dumps({"results": [1, 2]}), encoding="utf-8")
        with pytest.raises(ReproError):
            load_benchmark_document(path)


class TestRendering:
    def test_quiet_render_hides_ok_keys(self):
        comparison = compare_documents(
            doc({"detect_s": 1.0, "slow_s": 1.0}),
            doc({"detect_s": 1.0, "slow_s": 5.0}),
        )
        text = render_comparison(comparison)
        assert "slow_s" in text
        assert "REGRESSED" in text
        assert "detect_s" not in text

    def test_verbose_render_shows_everything(self):
        comparison = compare_documents(
            doc({"detect_s": 1.0}), doc({"detect_s": 1.0})
        )
        text = render_comparison(comparison, verbose=True)
        assert "detect_s" in text
        assert "no regressions" in text

    def test_dropped_keys_rendered(self):
        comparison = compare_documents(doc({"gone_s": 1.0}), doc({}))
        text = render_comparison(comparison)
        assert "gone_s" in text
        assert "dropped" in text
        assert "1 dropped key(s)" in text


class TestCli:
    def write_docs(self, tmp_path, old_results, new_results):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(doc(old_results)), encoding="utf-8")
        new.write_text(json.dumps(doc(new_results)), encoding="utf-8")
        return str(old), str(new)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        old, new = self.write_docs(tmp_path, {"detect_s": 1.0}, {"detect_s": 1.0})
        assert cli_main(["bench", "--compare", old, new]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        old, new = self.write_docs(
            tmp_path, {"batched_identical": 1.0}, {"batched_identical": 0.0}
        )
        assert cli_main(["bench", "--compare", old, new]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_exit_two_on_unreadable_input(self, tmp_path, capsys):
        missing = str(tmp_path / "missing.json")
        old, _ = self.write_docs(tmp_path, {}, {})
        assert cli_main(["bench", "--compare", old, missing]) == 2

    def test_threshold_flag(self, tmp_path):
        old, new = self.write_docs(tmp_path, {"detect_s": 1.0}, {"detect_s": 1.1})
        assert cli_main(["bench", "--compare", old, new]) == 0
        assert (
            cli_main(["bench", "--compare", old, new, "--threshold", "0.05"]) == 1
        )
